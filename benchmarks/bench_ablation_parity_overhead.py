"""Ablation: the cost of computed-copy redundancy (§6.1 future work, §7).

Paper §7: the penalties for Swift's redundancy are "one round trip time for
a short network message, and the cost of computing the parity code."  The
dominant running cost is the extra parity traffic: one additional unit per
stripe on the wire, plus read-modify-write pre-reads for partial-stripe
updates.
"""

from _common import archive

from repro.prototype import PrototypeTestbed

MB = 1 << 20
KB = 1 << 10


def bench_ablation_parity_overhead(benchmark):
    def run():
        results = {}
        # Large sequential writes at full network speed (no wait loop):
        # parity's extra units contend for the saturated cable.
        plain = PrototypeTestbed(agents_per_segment=3, seed=41,
                                 interpacket_gap_s=0.0)
        results["write plain"] = plain.measure_write("obj", 3 * MB)
        withp = PrototypeTestbed(agents_per_segment=4, parity=True, seed=41,
                                 interpacket_gap_s=0.0)
        results["write parity"] = withp.measure_write("obj", 3 * MB)

        # Small partial-stripe overwrites: parity pays a read-modify-write.
        def small_overwrites(parity):
            agents = 4 if parity else 3
            testbed = PrototypeTestbed(agents_per_segment=agents,
                                       parity=parity, seed=41,
                                       interpacket_gap_s=0.0)
            testbed.prepare_object("obj", 1 * MB)
            engine = testbed._make_engine("obj")
            env = testbed.env

            def workload():
                yield from engine.open()
                start = env.now
                for index in range(16):
                    yield from engine.write(index * 60_000, b"x" * 4096)
                elapsed = env.now - start
                yield from engine.close()
                return elapsed

            return testbed._run(workload())

        results["small plain (s)"] = small_overwrites(False)
        results["small parity (s)"] = small_overwrites(True)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    seq_overhead = 1 - results["write parity"] / results["write plain"]
    rmw_factor = results["small parity (s)"] / results["small plain (s)"]
    lines = [
        "Ablation — computed-copy redundancy overhead",
        "",
        f"sequential write, no redundancy : {results['write plain']:7.0f} KB/s",
        f"sequential write, parity        : {results['write parity']:7.0f} KB/s"
        f"  ({seq_overhead:.0%} slower)",
        f"16 partial-stripe overwrites    : plain "
        f"{results['small plain (s)']:.3f}s, parity "
        f"{results['small parity (s)']:.3f}s ({rmw_factor:.1f}x)",
        "",
        "paper: redundancy costs one short message round trip plus the "
        "parity computation; small writes pay read-modify-write",
    ]
    archive("ablation_parity_overhead", "\n".join(lines))

    # Parity must cost something on saturated sequential writes (extra
    # units on the wire), and partial-stripe updates must pay noticeably
    # more (the RMW pre-read).
    assert 0.02 < seq_overhead < 0.50
    assert rmw_factor > 1.5

    benchmark.extra_info["seq_overhead_pct"] = round(seq_overhead * 100)
    benchmark.extra_info["rmw_factor"] = round(rmw_factor, 2)

"""Extension: the measurement the paper could not take.

§4: "Measurements of synchronous write operations with the Swift prototype
have not been obtained at this time.  We encountered a problem with SunOS
that would not allow us to have the storage agents write synchronously to
disk due to insufficient buffer space."

Our agents have no such limitation: with write-through agents (each data
packet forced to disk on arrival), Swift's aggregate write rate barely
moves — each agent's share of the stream (~290 KB/s) stays under its
disk's 315 KB/s synchronous rate, so the disks hide behind the network.
This confirms the paper's §4 argument that "the way in which writes are
done in the Swift prototype is not the dominant performance factor."
"""

from _common import archive, scaled

from repro.baselines import NfsBaseline
from repro.prototype import PrototypeTestbed

MB = 1 << 20


def bench_extension_sync_writes(benchmark):
    size = 3 * MB
    samples = scaled(4, 2)

    def run():
        rates = {"async": [], "sync": [], "nfs": []}
        for sample in range(samples):
            seed = 90 + sample
            rates["async"].append(
                PrototypeTestbed(seed=seed).measure_write("obj", size))
            rates["sync"].append(
                PrototypeTestbed(seed=seed, synchronous_agent_writes=True)
                .measure_write("obj", size))
            rates["nfs"].append(NfsBaseline(seed=seed).measure_write("f", size))
        return {key: sum(values) / len(values)
                for key, values in rates.items()}

    rates = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Extension — Swift with synchronous (write-through) agents",
        "",
        f"Swift, async agent writes : {rates['async']:7.0f} KB/s "
        f"(the paper's Table 1 condition)",
        f"Swift, SYNC agent writes  : {rates['sync']:7.0f} KB/s "
        f"(the measurement SunOS prevented)",
        f"NFS (write-through)       : {rates['nfs']:7.0f} KB/s",
        "",
        "per-agent inflow (~290 KB/s) stays below the SCSI disk's 315 KB/s "
        "sync rate, so write-through costs Swift almost nothing — and the "
        "like-for-like sync-vs-sync comparison against NFS still shows "
        f"~{rates['sync'] / rates['nfs']:.0f}x.",
    ]
    archive("extension_sync_writes", "\n".join(lines))

    assert rates["sync"] > 0.95 * rates["async"]
    assert rates["sync"] > 6.0 * rates["nfs"]

    benchmark.extra_info.update(
        {key: round(value) for key, value in rates.items()})

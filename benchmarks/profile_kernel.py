"""Profile a Figure 5-shaped model run and archive the hot-spot table.

Not a benchmark — a diagnosis tool: ``make profile`` (or running this
file directly) cProfiles one fig5-shaped ``SwiftSimModel`` run in the
default callback mode, prints the top ``--top`` functions by cumulative
time, and saves two artifacts under ``benchmarks/results/``:

* ``PROFILE_kernel.pstats`` — the raw dump, loadable with
  ``python -m pstats`` or snakeviz for drill-down (CI uploads it from
  the bench-smoke job, so a regression flagged by the gate comes with
  the profile that explains it);
* ``PROFILE_kernel.txt`` — the printed table, for quick diffing.

``--mode generator`` profiles the reference path instead — diffing the
two tables is how the callback fast path's wins were found (and is the
first thing to reach for when the process-modes gate regresses).
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from _common import RESULTS_DIR, scaled  # noqa: E402

from repro.sim.model import SwiftSimModel  # noqa: E402
from repro.sim.workload import SimConfig  # noqa: E402

#: Figure 5 shape: the densest event stream the paper sweeps, so the
#: kernel dominates the profile instead of model setup.
FIG5_STYLE = SimConfig(num_requests=scaled(480, 240),
                       warmup_requests=scaled(48, 24),
                       arrival_rate=60.0,
                       transfer_unit=4096, request_size=1 << 16)


def profile_run(mode: str, top: int) -> tuple[Path, Path]:
    """Profile one run; returns (pstats path, text path)."""
    model = SwiftSimModel(FIG5_STYLE, process_mode=mode)
    profiler = cProfile.Profile()
    profiler.enable()
    result = model.run()
    profiler.disable()

    RESULTS_DIR.mkdir(exist_ok=True)
    dump = RESULTS_DIR / "PROFILE_kernel.pstats"
    profiler.dump_stats(dump)

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    table = buffer.getvalue()
    header = (f"fig5-shaped run, process_mode={mode}: "
              f"{result.completed} requests, "
              f"{model.env._eid} events, sim time {result.duration_s:.2f}s\n")
    text = RESULTS_DIR / "PROFILE_kernel.txt"
    text.write_text(header + table)
    print(header + table, end="")
    print(f"profile: raw dump -> {dump}\nprofile: table    -> {text}")
    return dump, text


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mode", choices=("callback", "generator"),
                        default="callback",
                        help="process execution mode to profile "
                             "(default: callback)")
    parser.add_argument("--top", type=int, default=20,
                        help="rows of the cumulative-time table "
                             "(default: 20)")
    options = parser.parse_args(argv)
    profile_run(options.mode, options.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())

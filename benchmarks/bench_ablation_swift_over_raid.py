"""Ablation (§6): Swift drives a *collection of RAIDs* past the
single-controller limit.

Paper: "The aggregation of data-rates proposed in the Swift architecture
generalizes that proposed by the Raid disk array system in its ability to
support data-rates beyond that of the single disk array controller.  In
fact, Swift can concurrently drive a collection of Raids as high speed
devices."

Setup: each storage agent's device is an 8-member RAID behind a 4 MB/s
controller, on the §5 gigabit token ring.  One agent = one RAID = the
centralized system; more agents = Swift striping over several RAIDs.
"""

from _common import archive, scaled

from repro.sim import SimConfig, find_max_sustainable
from repro.simdisk import RaidArray

KB = 1 << 10
MB = 1 << 20

CONTROLLER_RATE = 4 * MB


def _raid_factory(env, index, streams):
    return RaidArray(env, num_members=8, controller_rate=CONTROLLER_RATE,
                     stream=streams.stream(f"raid/{index}"))


def bench_ablation_swift_over_raid(benchmark):
    raid_counts = scaled((1, 2, 4, 8), (1, 4))
    num_requests = scaled(250, 150)

    def run():
        rates = {}
        for raids in raid_counts:
            config = SimConfig(
                num_disks=raids, transfer_unit=256 * KB,
                request_size=4 * MB, num_requests=num_requests,
                warmup_requests=num_requests // 10, seed=71)
            result = find_max_sustainable(config, iterations=7,
                                          storage_factory=_raid_factory)
            rates[raids] = result.client_data_rate
        return rates

    rates = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Ablation — Swift over a collection of RAIDs (§6)",
        "",
        f"each RAID: 8 members behind a {CONTROLLER_RATE / MB:.0f} MB/s "
        f"controller; 4 MB requests, 256 KB units",
        "",
    ]
    for raids, rate in sorted(rates.items()):
        note = "  <- the single-array (centralized) limit" if raids == 1 \
            else ""
        lines.append(f"{raids} RAID(s): {rate / MB:6.2f} MB/s "
                     f"sustained{note}")
    lines.append("")
    lines.append("a single array can never beat its controller; Swift "
                 "aggregates several arrays and sails past it")
    archive("ablation_swift_over_raid", "\n".join(lines))

    single = rates[min(raid_counts)]
    most = rates[max(raid_counts)]
    # One array is controller-capped...
    assert single <= CONTROLLER_RATE * 1.05
    # ...while Swift over N arrays scales well beyond one controller.
    assert most > 1.8 * CONTROLLER_RATE

    benchmark.extra_info.update(
        {f"{raids}_raids_MBps": round(rate / MB, 2)
         for raids, rate in rates.items()})

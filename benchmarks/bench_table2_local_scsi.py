"""Table 2: local SCSI disk data-rates (synchronous mode, cold cache).

Paper: read 654-682 KB/s, write 314-316 KB/s on the SLC's local disk.
"""

from _common import archive, scaled

from repro.prototype import (
    PAPER_TABLE2,
    format_comparison,
    format_table,
    run_scsi_table,
)


def bench_table2_local_scsi(benchmark):
    sizes = scaled((3, 6, 9), (3, 9))
    samples = scaled(8, 4)

    rows = benchmark.pedantic(
        lambda: run_scsi_table(sizes_mb=sizes, samples=samples),
        rounds=1, iterations=1)

    text = "\n\n".join([
        format_table("Table 2 — local SCSI (KB/s)", rows),
        format_comparison("Table 2 — measured vs paper", rows, PAPER_TABLE2),
    ])
    archive("table2_local_scsi", text)

    for label, samples_set in rows.items():
        ratio = samples_set.mean / PAPER_TABLE2[label]
        benchmark.extra_info[label] = round(samples_set.mean)
        assert 0.90 <= ratio <= 1.10, f"{label}: {ratio:.2f}x paper"

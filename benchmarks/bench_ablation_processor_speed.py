"""Ablation (§5 goal): how Swift exploits faster processors.

Paper: "The main goal of the simulation was to show how the architecture
could exploit network and processor advances" and "to locate the
components that will limit I/O performance."  Sweeping the hosts' MIPS
rating shows the regime change: slow processors make protocol processing
(1500 instructions + 1/byte) the bottleneck; past a knee the disks take
over and more MIPS buy nothing.
"""

from _common import archive, scaled

from repro.sim import SimConfig, find_max_sustainable

KB = 1 << 10
MB = 1 << 20


def bench_ablation_processor_speed(benchmark):
    mips_grid = scaled((5, 10, 25, 50, 100, 200, 400), (5, 25, 100, 400))
    num_requests = scaled(250, 150)

    def run():
        rates = {}
        for mips in mips_grid:
            config = SimConfig(
                num_disks=32, transfer_unit=32 * KB, request_size=1 * MB,
                host_mips=float(mips), num_requests=num_requests,
                warmup_requests=num_requests // 10, seed=81)
            result = find_max_sustainable(config, iterations=7)
            rates[mips] = result
        return rates

    rates = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Ablation — host processor speed (32 disks, 1 MB / 32 KB)",
        "",
        f"{'MIPS':>6}  {'sustained MB/s':>15}  {'disk util':>10}",
    ]
    for mips, result in sorted(rates.items()):
        lines.append(f"{mips:>6}  {result.client_data_rate / MB:>15.2f}  "
                     f"{result.mean_disk_utilization:>10.0%}")
    lines.append("")
    lines.append("protocol processing limits slow hosts; once the disks "
                 "saturate, extra MIPS buy nothing — the component-location "
                 "analysis §5 was built for")
    archive("ablation_processor_speed", "\n".join(lines))

    slowest = rates[min(mips_grid)].client_data_rate
    fastest = rates[max(mips_grid)].client_data_rate
    hundred = rates[100].client_data_rate if 100 in rates else fastest
    # Faster CPUs help a lot coming from 5 MIPS...
    assert hundred > 2.0 * slowest
    # ...but the curve flattens once the disks bind (100 -> 400 MIPS).
    assert fastest < 1.25 * hundred

    benchmark.extra_info.update(
        {f"{mips}mips_MBps": round(result.client_data_rate / MB, 2)
         for mips, result in rates.items()})

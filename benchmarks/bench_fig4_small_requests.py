"""Figure 4: 128 KB requests on a slower (1.5 MB/s) disk, 4 KB units.

Paper: with small transfer units seek time dominates; adding disks raises
the sustainable request rate almost linearly, and single-disk systems
saturate almost immediately.
"""

from _common import archive, bench_workers, format_series, scaled

from repro.sim import figure4_series


def bench_fig4_small_requests(benchmark):
    rates = scaled((1, 2.5, 5, 10, 15, 20, 25, 30, 35, 40), (2, 8, 16, 28))
    disk_counts = scaled((1, 2, 4, 8, 16, 32), (1, 4, 32))
    num_requests = scaled(400, 200)

    points = benchmark.pedantic(
        lambda: figure4_series(rates=rates, disk_counts=disk_counts,
                               num_requests=num_requests,
                               workers=bench_workers(1)),
        rounds=1, iterations=1)

    archive("fig4_small_requests", format_series(
        "Figure 4 — mean time to complete a 128 KB request (ms) vs req/s",
        points, "req/s", "ms"))

    def last_of(name):
        return max((p for p in points if p.series == name),
                   key=lambda p: p.x)

    def first_of(name):
        return min((p for p in points if p.series == name),
                   key=lambda p: p.x)

    # One disk saturates at once; 32 disks stay close to their zero-load
    # response across the plotted range.
    assert last_of("1 disk").y > 5 * last_of("32 disks").y
    assert last_of("32 disks").y < 4 * first_of("32 disks").y

    benchmark.extra_info["points"] = len(points)

"""Figure 5: maximum sustainable client data-rate, 128 KB / 4 KB units.

Paper: with 4 KB transfer units seek+rotation dominate; even 32 disks top
out around 2 MB/s, and faster-positioning drives (IBM 3380K) lead slower
ones (DEC RA82) at every disk count.
"""

from _common import archive, bench_workers, format_series, scaled

from repro.sim import figure5_series


def bench_fig5_sustainable_4k(benchmark):
    disk_counts = scaled((1, 2, 4, 8, 16, 32), (2, 8, 32))
    disk_names = scaled(
        ("IBM 3380K", "Fujitsu M2361A", "Fujitsu M2351A", "Wren V",
         "Fujitsu M2372K", "DEC RA82"),
        ("IBM 3380K", "Fujitsu M2372K", "DEC RA82"))
    num_requests = scaled(250, 120)
    iterations = scaled(8, 6)

    points = benchmark.pedantic(
        lambda: figure5_series(disk_counts=disk_counts,
                               disk_names=disk_names,
                               num_requests=num_requests,
                               iterations=iterations,
                               workers=bench_workers(1)),
        rounds=1, iterations=1)

    archive("fig5_sustainable_4k", format_series(
        "Figure 5 — max sustainable data-rate (MB/s), 128 KB req / 4 KB unit",
        points, "disks", "MB/s", y_scale=1e-6))

    by = {(p.series, p.x): p.y for p in points}
    top = max(disk_counts)

    # The paper's anchor: ~2 MB/s for 32 disks at 4 KB units.
    anchor = by[("Fujitsu M2372K", 32)] if ("Fujitsu M2372K", 32) in by \
        else by[("Fujitsu M2372K", top)]
    if top == 32:
        assert 1.2e6 < anchor < 2.8e6, f"32-disk anchor {anchor/1e6:.2f} MB/s"

    # Rate grows with disk count for every drive.
    for name in disk_names:
        series = sorted((p for p in points if p.series == name),
                        key=lambda p: p.x)
        values = [p.y for p in series]
        assert values == sorted(values), f"{name} not monotone"

    # Faster positioning wins: 3380K above RA82 everywhere.
    for disks in disk_counts:
        assert by[("IBM 3380K", disks)] > by[("DEC RA82", disks)]

    benchmark.extra_info["points"] = len(points)

"""A/B benchmark: callback-process fast path against the generator reference.

Not a paper result — this prices (and pins) the model's second process
execution mode.  ``SwiftSimModel(process_mode="callback")`` dispatches
the per-request hot loops as slotted state machines (direct method
calls, token resource grants, quiet releases, inline joins) and
span-coalesces the deterministic disk chains into single computed
completions; ``process_mode="generator"`` is the yield-based reference
path.  Every round runs both modes interleaved on Figure 3- and
Figure 5-shaped workloads so clock drift lands on both sides.

Two things are archived to ``BENCH_process_modes.json`` for
``check_regression.py``:

* ``bit_identical`` — every ``SimResult`` field equal between modes on
  every pair; false is an unconditional gate failure (a divergence is a
  correctness bug, never a performance trade);
* ``callback_speedup_ratio`` (min of the two shapes' medians) — the
  committed baseline must hold the issue's >= 1.5x floor, and fresh CI
  runs must stay within the regression tolerance of the committed
  speedup.

``fig5_callback_events_per_sec`` (model events per wall-clock second in
callback mode) is the headline rate docs/PERFORMANCE.md quotes.
"""

import time

from _common import archive_json, scaled

from repro.sim.model import SwiftSimModel
from repro.sim.workload import SimConfig

#: Figure 3 shape: 1 MiB requests over 8 disks, read-heavy.
FIG3_STYLE = SimConfig(num_requests=scaled(120, 40),
                       warmup_requests=scaled(12, 4),
                       arrival_rate=8.0)

#: Figure 5 shape: small transfer unit, small requests, higher rate —
#: the densest event stream, where generator resumption dominates.
FIG5_STYLE = SimConfig(num_requests=scaled(240, 80),
                       warmup_requests=scaled(24, 8),
                       arrival_rate=60.0,
                       transfer_unit=4096, request_size=1 << 16)


def _median(values):
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def _run(config: SimConfig, mode: str):
    """(SimResult, elapsed seconds, engine event count) for one run."""
    model = SwiftSimModel(config, process_mode=mode)
    start = time.perf_counter()
    result = model.run()
    return result, time.perf_counter() - start, model.env._eid


def bench_process_modes(benchmark):
    benchmark(lambda: _run(FIG5_STYLE, "callback"))

    rounds = scaled(9, 5)
    identical = True
    shapes = {}
    for name, config in (("fig3", FIG3_STYLE), ("fig5", FIG5_STYLE)):
        callback_times, generator_times = [], []
        events = ref_events = 0
        for _ in range(rounds):
            result, callback_s, events = _run(config, "callback")
            reference, generator_s, ref_events = _run(config, "generator")
            identical &= result == reference
            callback_times.append(callback_s)
            generator_times.append(generator_s)
        # Best-of-N on both sides: scheduler noise only ever inflates a
        # round, so the minima are the cleanest estimate of true cost
        # and the ratio of minima the least-noisy speedup.  The median
        # of per-round ratios is archived alongside for context.
        shapes[name] = {
            "speedup": min(generator_times) / min(callback_times),
            "round_median_speedup": _median(
                g / c for g, c in zip(generator_times, callback_times)),
            "callback_s": min(callback_times),
            "callback_events": events,
            "generator_events": ref_events,
        }

    assert identical, ("callback process mode diverged from the "
                       "generator reference")

    fig5 = shapes["fig5"]
    payload = {
        "workload": "fig3/fig5-style model runs, "
                    "process_mode callback vs generator",
        "bit_identical": identical,
        "callback_speedup_ratio": min(s["speedup"] for s in shapes.values()),
        "fig3_speedup_ratio": shapes["fig3"]["speedup"],
        "fig3_round_median_speedup": shapes["fig3"]["round_median_speedup"],
        "fig3_callback_s": shapes["fig3"]["callback_s"],
        "fig3_callback_events": shapes["fig3"]["callback_events"],
        "fig3_generator_events": shapes["fig3"]["generator_events"],
        "fig5_speedup_ratio": fig5["speedup"],
        "fig5_round_median_speedup": fig5["round_median_speedup"],
        "fig5_callback_s": fig5["callback_s"],
        "fig5_callback_events": fig5["callback_events"],
        "fig5_generator_events": fig5["generator_events"],
        "fig5_callback_events_per_sec":
            fig5["callback_events"] / fig5["callback_s"],
    }
    path = archive_json("BENCH_process_modes", payload)
    print(f"\nprocess modes: callback x{payload['callback_speedup_ratio']:.2f} "
          f"vs generator (fig3 x{payload['fig3_speedup_ratio']:.2f}, "
          f"fig5 x{payload['fig5_speedup_ratio']:.2f}; "
          f"fig5 events {fig5['generator_events']} -> "
          f"{fig5['callback_events']}); "
          f"bit-identical: {payload['bit_identical']} -> {path}")

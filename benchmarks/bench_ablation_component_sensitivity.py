"""Ablation: which component limits the prototype? (§4 / §5's question)

The paper asserts the Ethernet is the prototype's bottleneck and built
the §5 simulator "to locate the components that will limit I/O
performance".  Here we answer the question experimentally on the testbed:
speed each component up 2x in isolation and watch what the read and
write rates do.
"""

from _common import archive

from repro.prototype.sensitivity import COMPONENTS, sensitivity_table

MB = 1 << 20


def bench_ablation_component_sensitivity(benchmark):
    def run():
        return {
            "read": sensitivity_table("read", scale=2.0, seed=23),
            "write": sensitivity_table("write", scale=2.0, seed=23),
        }

    tables = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Ablation — component sensitivity (each component 2x faster, "
        "alone)",
        "",
        f"{'component':<12} {'read gain':>10} {'write gain':>11}",
    ]
    for component in COMPONENTS:
        lines.append(f"{component:<12} "
                     f"{tables['read'][component]:>9.2f}x "
                     f"{tables['write'][component]:>10.2f}x")
    lines.append("")
    lines.append(f"baselines: read {tables['read']['baseline']:.0f} KB/s, "
                 f"write {tables['write']['baseline']:.0f} KB/s")
    lines.append("the wire and the hosts' packet processing matter; the "
                 "disks do not (prefetch and asynchronous writes hide "
                 "them) — §4's bottleneck claim, located experimentally")
    archive("ablation_component_sensitivity", "\n".join(lines))

    read = tables["read"]
    write = tables["write"]
    # The §4 claims, as assertions.
    assert read["network"] > 1.2
    assert abs(read["agent_disk"] - 1.0) < 0.05
    assert abs(write["agent_disk"] - 1.0) < 0.05

    benchmark.extra_info.update(
        {f"read_{c}": round(read[c], 3) for c in COMPONENTS})

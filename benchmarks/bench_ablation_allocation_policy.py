"""Ablation (§6.1.1): resource allocation policies under concurrent load.

Future work: "With these mechanisms in place we plan to study different
resource allocation policies, with the goal of understanding how to handle
variable loads."  Here is one such study: three concurrent readers on a
gigabit ring (so the interconnect never binds) with their objects placed
either

* **isolated** — each session's object on its own agent (what the
  mediator's fewest-agents policy produces when a data-rate is declared), or
* **spread** — every object striped over all agents (the best-effort
  default).

Spreading maximises single-stream parallelism but makes every disk serve
every stream — the head shuttles between files and pays positioning on
each switch.  Isolation gives each stream one disk's full sequential rate.
"""

from _common import archive

from repro.core import DistributionAgent, StorageAgent, StorageMediator
from repro.des import Environment, StreamFactory
from repro.simdisk import make_scsi_filesystem
from repro.simnet import Network, mips_cost_model

KB = 1 << 10
MB = 1 << 20

NUM_AGENTS = 3
NUM_SESSIONS = 3
OBJECT_BYTES = 2 * MB


def build_ring(prefetch: bool, seed=77):
    env = Environment()
    streams = StreamFactory(seed)
    net = Network(env, streams)
    net.add_token_ring("ring")
    cost = mips_cost_model(100.0)
    names = []
    agents = []
    for index in range(NUM_AGENTS):
        name = f"agent{index}"
        names.append(name)
        net.add_host(name, send_cost=cost, recv_cost=cost)
        net.connect(name, "ring", tx_queue_packets=256)
        fs = make_scsi_filesystem(env, stream=streams.stream(f"disk/{name}"))
        agents.append(StorageAgent(env, net.host(name), fs,
                                   socket_buffer=256, prefetch=prefetch))
    return env, net, names, agents, cost


def measure_policy(isolated: bool, prefetch: bool) -> float:
    """Aggregate KB/s of NUM_SESSIONS concurrent whole-object reads."""
    env, net, names, agents, cost = build_ring(prefetch)
    mediator = StorageMediator(packet_size=32 * KB)
    for name in names:
        mediator.register_agent(name, bandwidth=680 * KB,
                                capacity_bytes=200 * MB)
    engines = []
    for index in range(NUM_SESSIONS):
        client = net.add_host(f"client{index}", send_cost=cost,
                              recv_cost=cost)
        net.connect(f"client{index}", "ring", tx_queue_packets=256)
        if isolated:
            # Declaring a rate makes the mediator pick the fewest agents;
            # successive sessions land on different (least-committed) ones.
            session = mediator.negotiate(f"obj{index}", OBJECT_BYTES,
                                         data_rate=600.0 * KB)
        else:
            session = mediator.negotiate(f"obj{index}", OBJECT_BYTES)
        plan = session.plan
        engine = DistributionAgent(
            env, client, list(plan.agent_hosts), plan.object_name,
            striping_unit=32 * KB, packet_size=32 * KB)
        engines.append(engine)

        def setup(engine=engine):
            yield from engine.open(create=True)
            yield from engine.write(0, b"\xEE" * OBJECT_BYTES)

        env.run(until=env.process(setup()))
    for agent in agents:
        agent.filesystem.flush_cache()

    start = env.now

    def reader(engine):
        data = yield from engine.read(0, OBJECT_BYTES)
        assert len(data) == OBJECT_BYTES

    processes = [env.process(reader(engine)) for engine in engines]
    env.run(until=env.all_of(processes))
    return NUM_SESSIONS * OBJECT_BYTES / KB / (env.now - start)


def bench_ablation_allocation_policy(benchmark):
    def run():
        return {
            (placement, prefetch): measure_policy(placement == "isolated",
                                                  prefetch == "readahead")
            for placement in ("isolated", "spread")
            for prefetch in ("readahead", "no-readahead")
        }

    rates = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Ablation — allocation policy x agent read-ahead "
        "(gigabit ring, 3 agents, 3 concurrent readers; KB/s aggregate)",
        "",
        f"{'':<12} {'read-ahead':>12} {'no read-ahead':>14}",
    ]
    for placement in ("isolated", "spread"):
        lines.append(
            f"{placement:<12} "
            f"{rates[(placement, 'readahead')]:>12.0f} "
            f"{rates[(placement, 'no-readahead')]:>14.0f}")
    raw_penalty = 1 - rates[("spread", "no-readahead")] \
        / rates[("isolated", "no-readahead")]
    clustered_penalty = 1 - rates[("spread", "readahead")] \
        / rates[("isolated", "readahead")]
    lines.append("")
    lines.append(
        "spreading every object over every agent makes the disks "
        f"interleave the streams: it costs {raw_penalty:.0%} without "
        f"read-ahead and still {clustered_penalty:.0%} with clustered "
        "read-ahead (which lengthens each file's runs at the spindle).  "
        "For many concurrent sessions, isolating each on few agents wins; "
        "a single stream still needs the spread for its parallelism — "
        "exactly the rate-dependent placement rule the §2 mediator "
        "implements and §6.1.1 wanted studied.")
    archive("ablation_allocation_policy", "\n".join(lines))

    # Placement matters a lot without read-ahead...
    assert rates[("isolated", "no-readahead")] > \
        1.2 * rates[("spread", "no-readahead")]
    # ...and clustered read-ahead recovers part of the penalty but not
    # all of it.
    assert rates[("spread", "readahead")] > \
        1.1 * rates[("spread", "no-readahead")]
    assert rates[("isolated", "readahead")] > \
        rates[("spread", "readahead")]

    benchmark.extra_info.update(
        {f"{placement}_{prefetch}": round(rate)
         for (placement, prefetch), rate in rates.items()})

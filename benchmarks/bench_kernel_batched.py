"""A/B microbenchmark: cohort dispatch against the one-heap reference.

Not a paper result — this prices (and pins) the engine's same-timestamp
cohort fast path.  Every workload runs twice per round, once on the
default batched scheduler and once with ``cohort_dispatch=False``
(every event through the heap), interleaved so clock drift lands on
both sides; the archived ratio is the median of the per-round speedups.

Two workload classes:

* the kernel ping-pong workload of ``bench_kernel_events`` (resource
  hand-offs, dense same-time cohorts — the best case for batching);
* §5 model runs shaped like Figure 3 (1 MiB requests) and Figure 5
  (4 KiB transfer units), where the cohort fast path competes with all
  the model's other Python-frame costs.

Bit-identity is asserted on every pair — the model runs must produce
equal ``SimResult``s field for field, and the kernel runs must agree on
final clock and event count — and recorded as ``bit_identical`` in
``BENCH_kernel_batched.json`` so ``check_regression.py`` fails the gate
if the schedulers ever diverge.
"""

import time

from _common import archive_json, scaled

from bench_kernel_events import _build
from repro.sim.model import SwiftSimModel
from repro.sim.workload import SimConfig

#: Figure 3 shape: 1 MiB requests over 8 disks.
FIG3_STYLE = SimConfig(num_requests=scaled(120, 40),
                       warmup_requests=scaled(12, 4),
                       arrival_rate=8.0)

#: Figure 5 shape: small transfer unit, small requests, higher rate.
FIG5_STYLE = SimConfig(num_requests=scaled(240, 80),
                       warmup_requests=scaled(24, 8),
                       arrival_rate=60.0,
                       transfer_unit=4096, request_size=1 << 16)


def _median(values):
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def _kernel_run(cohort: bool):
    """(events, elapsed, final clock) for one ping-pong run."""
    # The flag must be set at construction: flipping it on a built
    # environment spills any pending cohort into the heap with fresh
    # event ids, which skews the _eid comparison below.
    env = _build(cohort=cohort)
    start = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - start
    return env._eid, elapsed, env.now


def _model_run(config: SimConfig, cohort: bool):
    """(SimResult, elapsed) for one §5 model run."""
    model = SwiftSimModel(config, cohort_dispatch=cohort)
    start = time.perf_counter()
    result = model.run()
    return result, time.perf_counter() - start


def bench_kernel_batched(benchmark):
    benchmark(lambda: _kernel_run(True))

    rounds = scaled(9, 5)
    identical = True

    kernel_batched, kernel_ratios = [], []
    for _ in range(rounds):
        events, batched, clock = _kernel_run(True)
        ref_events, unbatched, ref_clock = _kernel_run(False)
        identical &= (events == ref_events and clock == ref_clock)
        kernel_batched.append(batched)
        kernel_ratios.append(unbatched / batched)

    model_ratios = {}
    for name, config in (("fig3", FIG3_STYLE), ("fig5", FIG5_STYLE)):
        ratios, batched_times = [], []
        for _ in range(scaled(5, 3)):
            result, batched = _model_run(config, True)
            reference, unbatched = _model_run(config, False)
            identical &= result == reference
            ratios.append(unbatched / batched)
            batched_times.append(batched)
        model_ratios[name] = (_median(ratios), min(batched_times))

    assert identical, ("cohort dispatch diverged from the one-heap "
                       "reference scheduler")

    events = _kernel_run(True)[0]
    best_batched = min(kernel_batched)
    payload = {
        "workload": "kernel ping-pong + fig3/fig5-style model runs, "
                    "batched vs cohort_dispatch=False",
        "bit_identical": identical,
        "events": events,
        "batched_events_per_sec": events / best_batched,
        "unbatched_events_per_sec":
            events / (best_batched * _median(kernel_ratios)),
        "cohort_speedup_ratio": _median(kernel_ratios),
        "fig3_speedup_ratio": model_ratios["fig3"][0],
        "fig3_batched_s": model_ratios["fig3"][1],
        "fig5_speedup_ratio": model_ratios["fig5"][0],
        "fig5_batched_s": model_ratios["fig5"][1],
    }
    path = archive_json("BENCH_kernel_batched", payload)
    print(f"\ncohort dispatch: {payload['batched_events_per_sec']:,.0f} "
          f"events/s, x{payload['cohort_speedup_ratio']:.2f} vs reference "
          f"(fig3 x{payload['fig3_speedup_ratio']:.2f}, "
          f"fig5 x{payload['fig5_speedup_ratio']:.2f}); "
          f"bit-identical: {payload['bit_identical']} -> {path}")

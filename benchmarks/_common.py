"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures, prints it
next to the published values, and archives the text under
``benchmarks/results/``.  Set ``REPRO_BENCH_FULL=1`` for the paper's full
sample counts and grids (slower); the default is a reduced but
shape-preserving configuration.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Full fidelity (paper-sized grids) when REPRO_BENCH_FULL=1.
FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"


def bench_workers(default: int = 4) -> int:
    """Worker-process count for parallel benchmarks.

    ``REPRO_BENCH_WORKERS`` overrides; the default is ``default`` workers
    regardless of core count so the archived numbers are comparable
    across machines (the JSON records ``cpu_count`` next to the timing,
    which is how to judge whether a speedup was physically possible).
    """
    value = os.environ.get("REPRO_BENCH_WORKERS", "")
    if value:
        workers = int(value)
        if workers < 1:
            raise ValueError("REPRO_BENCH_WORKERS must be >= 1")
        return workers
    return default


def scaled(full_value, quick_value):
    """Pick the full-fidelity or the quick value."""
    return full_value if FULL else quick_value


def archive(name: str, text: str) -> None:
    """Print a result block and save it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def _git_sha() -> str:
    """Abbreviated commit of the working tree, or "unknown" outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).parent, capture_output=True, text=True,
            timeout=10)
    except OSError:
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def provenance() -> dict:
    """Where a result came from: commit, interpreter, machine.

    Stamped into every archived JSON so a number found in an artifact
    or a committed baseline can always be traced to the code and the
    hardware class that produced it.
    """
    return {
        "git_sha": _git_sha(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def archive_json(name: str, payload: dict) -> Path:
    """Save a machine-readable result under benchmarks/results/.

    Written as ``<name>.json`` with sorted keys so reruns diff cleanly;
    returns the path for the caller to mention.  Every payload is
    stamped with :func:`provenance` (the benchmark's own keys win on
    collision, which none use).
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    stamped = dict(provenance())
    stamped.update(payload)
    path.write_text(json.dumps(stamped, indent=2, sort_keys=True) + "\n")
    return path


def format_series(title: str, points, x_label: str, y_label: str,
                  y_scale: float = 1.0) -> str:
    """Render FigurePoint lists as per-series tables."""
    lines = [title, ""]
    by_series: dict[str, list] = {}
    for point in points:
        by_series.setdefault(point.series, []).append(point)
    for series, series_points in by_series.items():
        lines.append(f"-- {series}")
        lines.append(f"   {x_label:>12}  {y_label:>14}")
        for point in sorted(series_points, key=lambda p: p.x):
            lines.append(f"   {point.x:>12.2f}  {point.y * y_scale:>14.2f}")
        lines.append("")
    return "\n".join(lines)

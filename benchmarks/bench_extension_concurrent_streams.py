"""Extension (§1/§7): how many DVI video streams can Swift sustain?

The paper's motivation is continuous media: DVI video needs 1.2 MB/s and
"systems capable of integrating continuous multimedia will soon emerge"
once gigabit networks arrive (§1).  On a 10 Mb/s Ethernet not even one
DVI stream fits (tested in test_streaming.py); on the §5-style gigabit
ring the disks are the limit, so the number of glitch-free streams should
scale with the number of storage agents — Swift's whole point.
"""

from _common import archive, scaled

from repro.core import DistributionAgent, StorageAgent
from repro.core.client import SwiftFile
from repro.core.streaming import PlaybackSession
from repro.des import Environment, StreamFactory
from repro.simdisk import make_scsi_filesystem
from repro.simnet import Network, mips_cost_model

KB = 1 << 10
MB = 1 << 20

DVI_RATE = 1.2 * MB
STREAM_BYTES = 6 * MB


def build_ring(num_agents, seed=67):
    env = Environment()
    streams = StreamFactory(seed)
    net = Network(env, streams)
    net.add_token_ring("ring")
    cost = mips_cost_model(100.0)
    names = []
    agents = []
    for index in range(num_agents):
        name = f"agent{index}"
        names.append(name)
        net.add_host(name, send_cost=cost, recv_cost=cost)
        net.connect(name, "ring", tx_queue_packets=256)
        fs = make_scsi_filesystem(env, stream=streams.stream(f"disk/{name}"))
        agents.append(StorageAgent(env, net.host(name), fs,
                                   socket_buffer=256))
    return env, net, names, agents, cost


def count_glitch_free_streams(num_agents, max_streams):
    """The largest K <= max_streams where K concurrent DVI playbacks all
    run glitch-free."""
    best = 0
    for k in range(1, max_streams + 1):
        env, net, names, agents, cost = build_ring(num_agents)
        sessions = []
        for stream_index in range(k):
            client = net.add_host(f"viewer{stream_index}",
                                  send_cost=cost, recv_cost=cost)
            net.connect(f"viewer{stream_index}", "ring",
                        tx_queue_packets=256)
            # The playback chunk must span the whole stripe so a chunk
            # fetch drives every agent in parallel.
            engine = DistributionAgent(
                env, client, names, f"movie{stream_index}",
                striping_unit=32 * KB, packet_size=32 * KB)

            def setup(engine=engine):
                yield from engine.open(create=True)
                yield from engine.write(0, b"\xCD" * STREAM_BYTES)

            env.run(until=env.process(setup()))
            sessions.append(SwiftFile(engine))
        # Cold caches: the streams must come off the platters.
        for agent in agents:
            agent.filesystem.flush_cache()
        reports = []

        chunk = num_agents * 2 * 32 * KB  # two stripes per chunk

        def player(handle):
            session = PlaybackSession(handle, rate=DVI_RATE,
                                      chunk_size=chunk,
                                      readahead_chunks=4)
            report = yield from session.play_p()
            reports.append(report)

        processes = [env.process(player(handle)) for handle in sessions]
        env.run(until=env.all_of(processes))
        if all(report.glitch_free for report in reports):
            best = k
        else:
            break
    return best


def bench_extension_concurrent_streams(benchmark):
    agent_counts = scaled((3, 6, 9, 12), (3, 9))
    max_streams = 8

    def run():
        return {agents: count_glitch_free_streams(agents, max_streams)
                for agents in agent_counts}

    capacity = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Extension — concurrent 1.2 MB/s DVI streams on a gigabit ring",
        "",
        "(agents use the prototype's calibrated ~670 KB/s SCSI disks; a "
        "10 Mb/s Ethernet cannot carry even one stream)",
        "",
    ]
    for agents, streams in sorted(capacity.items()):
        lines.append(f"{agents:>3} agents: {streams} glitch-free stream(s)")
    lines.append("")
    lines.append("stream capacity grows with the number of storage agents "
                 "— aggregation turning slow disks into a video server, "
                 "the paper's motivating scenario")
    archive("extension_concurrent_streams", "\n".join(lines))

    counts = [capacity[a] for a in sorted(capacity)]
    assert counts[0] >= 1
    assert counts[-1] > counts[0]  # more agents, more streams

    benchmark.extra_info.update(
        {f"{agents}_agents": streams
         for agents, streams in capacity.items()})

"""Ablation: the abandoned TCP prototype vs. the UDP prototype (§3).

Paper: "The data-rates of an earlier prototype using a data transfer
protocol built on the tcp network protocol proved to be unacceptable ...
never more than 45 % of the capacity of the Ethernet-based local-area
network"; the UDP rewrite reaches 77-80 %.
"""

from _common import archive

from repro.calibration import ETHERNET_MEASURED_CAPACITY
from repro.prototype import PrototypeTestbed

MB = 1 << 20


def bench_ablation_tcp_vs_udp(benchmark):
    def run():
        results = {}
        for label, tcp in [("udp", False), ("tcp", True)]:
            read_bed = PrototypeTestbed(seed=21, tcp_mode=tcp)
            read_bed.prepare_object("obj", 3 * MB)
            read = read_bed.measure_read("obj", 3 * MB)
            write = PrototypeTestbed(seed=21, tcp_mode=tcp) \
                .measure_write("obj", 3 * MB)
            results[label] = (read, write)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Ablation — TCP vs UDP transfer protocol (3 MB, 3 agents)", ""]
    for label, (read, write) in results.items():
        read_frac = read * 1024 / ETHERNET_MEASURED_CAPACITY
        write_frac = write * 1024 / ETHERNET_MEASURED_CAPACITY
        lines.append(f"{label:>4}: read {read:6.0f} KB/s ({read_frac:4.0%}) "
                     f" write {write:6.0f} KB/s ({write_frac:4.0%})")
    lines.append("")
    lines.append("paper: tcp never exceeded 45% of capacity; udp runs at "
                 "77-80%")
    archive("ablation_tcp_vs_udp", "\n".join(lines))

    for rate in results["tcp"]:
        assert rate * 1024 <= 0.46 * ETHERNET_MEASURED_CAPACITY
    for rate in results["udp"]:
        assert rate * 1024 >= 0.70 * ETHERNET_MEASURED_CAPACITY

    benchmark.extra_info.update(
        {f"{k}_{op}": round(v) for k, (r, w) in results.items()
         for op, v in [("read", r), ("write", w)]})

"""Ablation: the storage mediator's striping-unit policy (§2).

Paper: "If the required transfer rate is low, then the striping unit can be
large ... If the required data-rate is high, then the striping unit will be
chosen small enough to exploit all the parallelism needed."  On the
prototype's Ethernet the unit has a second effect: units below the packet
size fragment the pipeline, while very large units serialise the agents.
"""

from _common import archive

from repro.prototype import PrototypeTestbed

MB = 1 << 20
KB = 1 << 10


def bench_ablation_striping_unit(benchmark):
    units = (4 * KB, 8 * KB, 32 * KB, 128 * KB, 256 * KB)
    SMALL_OBJECT = 384 * KB

    def run():
        streaming = {}
        small = {}
        for unit in units:
            testbed = PrototypeTestbed(seed=51, striping_unit=unit)
            testbed.prepare_object("obj", 3 * MB)
            streaming[unit] = testbed.measure_read("obj", 3 * MB)
            bed2 = PrototypeTestbed(seed=51, striping_unit=unit)
            bed2.prepare_object("small", SMALL_OBJECT)
            small[unit] = bed2.measure_read("small", SMALL_OBJECT)
        return streaming, small

    streaming, small = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Ablation — read data-rate vs striping unit (3 agents)", "",
             f"{'unit':>8}  {'3 MB stream':>12}  {'384 KB object':>14}"]
    for unit in units:
        lines.append(f"{unit // KB:>6}KB  {streaming[unit]:>10.0f}  "
                     f"{small[unit]:>12.0f}   (KB/s)")
    lines.append("")
    lines.append("units below the packet size waste packets; units that "
                 "approach the object size serialise the agents — exactly "
                 "why the mediator sizes the unit from the required rate "
                 "(§2: high rates get units 'small enough to exploit all "
                 "the parallelism')")
    archive("ablation_striping_unit", "\n".join(lines))

    # Streaming: sub-packet units hurt; packet-sized and larger are flat.
    assert streaming[8 * KB] > 1.05 * streaming[4 * KB]
    # Small objects: a 256 KB unit leaves agents idle (384 KB spans only
    # two of three agents, unevenly), so modest units win clearly.
    assert small[8 * KB] > 1.3 * small[256 * KB]

    benchmark.extra_info.update(
        {f"{unit // KB}KB": round(rate) for unit, rate in streaming.items()})

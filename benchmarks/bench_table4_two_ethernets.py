"""Table 4: Swift with a second Ethernet segment added.

Paper: writes almost double (~1660 KB/s); reads improve only ~25 %
(~1120-1150 KB/s) because the client CPU saturates on the receive path
(§4.1) — "the Swift architecture can make immediate use of a faster
interconnection medium."
"""

from _common import archive, scaled

from repro.prototype import (
    PAPER_TABLE1,
    PAPER_TABLE4,
    format_comparison,
    format_table,
    run_swift_table,
)


def bench_table4_two_ethernets(benchmark):
    sizes = scaled((3, 6, 9), (3, 9))
    samples = scaled(8, 4)

    rows = benchmark.pedantic(
        lambda: run_swift_table(second_ethernet=True, sizes_mb=sizes,
                                samples=samples),
        rounds=1, iterations=1)

    text = "\n\n".join([
        format_table("Table 4 — Swift on two Ethernets (KB/s)", rows),
        format_comparison("Table 4 — measured vs paper", rows, PAPER_TABLE4),
    ])
    archive("table4_two_ethernets", text)

    for label, samples_set in rows.items():
        ratio = samples_set.mean / PAPER_TABLE4[label]
        benchmark.extra_info[label] = round(samples_set.mean)
        assert 0.90 <= ratio <= 1.10, f"{label}: {ratio:.2f}x paper"

    # The §4.1 asymmetry: writes ~2x Table 1, reads ~1.25x.
    for size in sizes:
        write_gain = rows[f"Write {size} MB"].mean / PAPER_TABLE1[f"Write {size} MB"]
        read_gain = rows[f"Read {size} MB"].mean / PAPER_TABLE1[f"Read {size} MB"]
        assert write_gain > 1.75, f"write gain {write_gain:.2f}"
        assert 1.1 < read_gain < 1.5, f"read gain {read_gain:.2f}"

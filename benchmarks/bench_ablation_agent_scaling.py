"""Ablation: data-rate vs. number of storage agents and segments (§4, §4.1).

Paper: "The data-rate of our prototype scales almost linearly in the number
of servers and the number of network segments.  Its performance is shown to
be limited by the speed of the Ethernet"; "Including a fourth storage agent
would only saturate the network while not significantly increasing
performance."
"""

from _common import archive

from repro.prototype import PrototypeTestbed

MB = 1 << 20


def bench_ablation_agent_scaling(benchmark):
    def run():
        rates = {}
        utils = {}
        for agents in (1, 2, 3, 4):
            testbed = PrototypeTestbed(agents_per_segment=agents, seed=31)
            testbed.prepare_object("obj", 3 * MB)
            rates[(agents, 1)] = testbed.measure_read("obj", 3 * MB)
            utils[(agents, 1)] = testbed.network_utilization()
        dual = PrototypeTestbed(agents_per_segment=3, second_ethernet=True,
                                seed=31)
        dual.prepare_object("obj", 3 * MB)
        rates[(3, 2)] = dual.measure_read("obj", 3 * MB)
        utils[(3, 2)] = dual.network_utilization()
        return rates, utils

    rates, utils = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Ablation — read data-rate vs agents and segments (3 MB)", ""]
    for (agents, segments), rate in sorted(rates.items()):
        per_agent = rate / agents / segments
        lines.append(f"{agents} agents x {segments} segment(s): "
                     f"{rate:6.0f} KB/s  (cable util {utils[(agents, segments)]:4.0%},"
                     f" {per_agent:4.0f} KB/s per agent)")
    lines.append("")
    lines.append("paper: near-linear growth until the Ethernet saturates; "
                 "\"including a fourth storage agent would only saturate "
                 "the network\" (our collision-free cable still yields some "
                 "gain at saturation; per-agent efficiency drops instead); "
                 "a 2nd segment lifts reads further")
    archive("ablation_agent_scaling", "\n".join(lines))

    # Strong growth 1->2->3 agents.
    assert rates[(2, 1)] > 1.35 * rates[(1, 1)]
    assert rates[(3, 1)] > 1.10 * rates[(2, 1)]
    # The 4th agent saturates the cable; per-agent efficiency declines
    # monotonically as the shared medium congests.
    assert utils[(4, 1)] > 0.90
    per_agent = [rates[(n, 1)] / n for n in (1, 2, 3, 4)]
    assert per_agent == sorted(per_agent, reverse=True)
    # A second segment un-saturates the interconnect.
    assert rates[(3, 2)] > 1.15 * rates[(3, 1)]

    benchmark.extra_info.update(
        {f"{a}x{s}": round(r) for (a, s), r in rates.items()})

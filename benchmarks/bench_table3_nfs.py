"""Table 3: NFS data-rates over the shared departmental Ethernet.

Paper: read 456-488 KB/s; write 109-112 KB/s (the server's write-through
policy makes writes ~4x slower than reads).
"""

from _common import archive, scaled

from repro.prototype import (
    PAPER_TABLE3,
    format_comparison,
    format_table,
    run_nfs_table,
)


def bench_table3_nfs(benchmark):
    sizes = scaled((3, 6, 9), (3, 9))
    samples = scaled(8, 4)

    rows = benchmark.pedantic(
        lambda: run_nfs_table(sizes_mb=sizes, samples=samples),
        rounds=1, iterations=1)

    text = "\n\n".join([
        format_table("Table 3 — NFS (KB/s)", rows),
        format_comparison("Table 3 — measured vs paper", rows, PAPER_TABLE3),
    ])
    archive("table3_nfs", text)

    for label, samples_set in rows.items():
        ratio = samples_set.mean / PAPER_TABLE3[label]
        benchmark.extra_info[label] = round(samples_set.mean)
        assert 0.85 <= ratio <= 1.15, f"{label}: {ratio:.2f}x paper"

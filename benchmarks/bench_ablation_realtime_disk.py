"""Ablation (§6.1.2 future work): real-time disk scheduling.

Paper: "We intend to extend the architecture with techniques for providing
data-rate guarantees for magnetic disk devices ... the problem of
scheduling real-time disk transfers has received considerably less
attention."  This bench implements the obvious candidate — earliest-
deadline-first ordering of each disk's queue — and compares deadline miss
rates against the paper's FIFO disks across load levels.
"""

from _common import archive, scaled

from repro.sim import SimConfig, run_once

KB = 1 << 10
MB = 1 << 20


def bench_ablation_realtime_disk(benchmark):
    rates = scaled((2.0, 2.6, 3.0, 3.4), (2.6, 3.4))
    num_requests = scaled(400, 250)
    deadline_s = 0.45

    def run():
        table = {}
        for scheduling in ("fifo", "edf"):
            for rate in rates:
                config = SimConfig(
                    num_disks=8, transfer_unit=32 * KB, request_size=1 * MB,
                    arrival_rate=float(rate), num_requests=num_requests,
                    warmup_requests=num_requests // 10, seed=61,
                    disk_scheduling=scheduling, deadline_s=deadline_s,
                    realtime_fraction=0.3)
                table[(scheduling, rate)] = run_once(config)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Ablation — real-time disk scheduling (§6.1.2 future work)",
        "",
        f"1 MB requests, 8 disks, 32 KB units; 30% of requests are "
        f"continuous-media transfers with a {deadline_s * 1000:.0f} ms "
        f"deadline",
        "",
        f"{'req/s':>6}  {'FIFO miss':>10}  {'EDF miss':>10}  "
        f"{'FIFO mean ms':>13}  {'EDF mean ms':>12}",
    ]
    for rate in rates:
        fifo = table[("fifo", rate)]
        edf = table[("edf", rate)]
        lines.append(
            f"{rate:>6}  {fifo.deadline_miss_rate:>10.1%}  "
            f"{edf.deadline_miss_rate:>10.1%}  "
            f"{fifo.mean_completion_s * 1000:>13.0f}  "
            f"{edf.mean_completion_s * 1000:>12.0f}")
    lines.append("")
    lines.append("EDF trades a little mean latency for fewer blown "
                 "deadlines as the disks congest — the guarantee the "
                 "paper's future work asks for")
    archive("ablation_realtime_disk", "\n".join(lines))

    # At the highest plotted load, EDF must beat FIFO on misses without
    # materially hurting the mean.
    top = max(rates)
    assert table[("edf", top)].deadline_miss_rate < \
        table[("fifo", top)].deadline_miss_rate
    assert table[("edf", top)].mean_completion_s < \
        1.10 * table[("fifo", top)].mean_completion_s

    benchmark.extra_info["fifo_miss_at_top"] = round(
        table[("fifo", top)].deadline_miss_rate, 3)
    benchmark.extra_info["edf_miss_at_top"] = round(
        table[("edf", top)].deadline_miss_rate, 3)

"""Ablation (§1): "easy expansion and load sharing".

Several clients share the same three storage agents over one Ethernet.
Two things must hold: the aggregate rises to the interconnect's limit
(one client alone cannot saturate it — its CPU is part of the Table 1
bottleneck), and the cable is divided fairly between the clients.
"""

from _common import archive, scaled

from repro.prototype import PrototypeTestbed

MB = 1 << 20


def bench_ablation_load_sharing(benchmark):
    client_counts = scaled((1, 2, 3, 4), (1, 2, 3))
    size = 3 * MB

    def run():
        results = {}
        for clients in client_counts:
            testbed = PrototypeTestbed(seed=13)
            results[clients] = testbed.measure_concurrent_reads(clients, size)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Ablation — load sharing: concurrent clients, 3 shared agents",
             ""]
    for clients, result in sorted(results.items()):
        rates = sorted(result["per_client"].values(), reverse=True)
        spread = (max(rates) / min(rates) - 1) if min(rates) else 0.0
        lines.append(
            f"{clients} client(s): aggregate {result['aggregate']:6.0f} KB/s"
            f"  per-client {', '.join(f'{r:.0f}' for r in rates)}"
            f"  (spread {spread:.0%})")
    lines.append("")
    lines.append("a second client pushes the shared cable to saturation "
                 "(the single-client rate was client-CPU-throttled); "
                 "beyond that the cable is divided almost evenly")
    archive("ablation_load_sharing", "\n".join(lines))

    single = results[1]["aggregate"]
    two = results[2]["aggregate"]
    assert two > 1.2 * single          # expansion works
    for clients, result in results.items():
        rates = list(result["per_client"].values())
        assert max(rates) < 1.15 * min(rates)  # fair sharing

    benchmark.extra_info.update(
        {f"{clients}_clients": round(result["aggregate"])
         for clients, result in results.items()})

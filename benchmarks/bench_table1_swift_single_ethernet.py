"""Table 1: Swift read/write data-rates on a single Ethernet.

Paper: ~860-897 KB/s for both operations across 3/6/9 MB — 77-80 % of the
Ethernet's measured 1.12 MB/s capacity — using one SPARCstation 2 client
and three SLC storage agents.
"""

from _common import archive, scaled

from repro.prototype import (
    PAPER_TABLE1,
    format_comparison,
    format_table,
    run_swift_table,
)


def bench_table1_swift_single_ethernet(benchmark):
    sizes = scaled((3, 6, 9), (3, 9))
    samples = scaled(8, 4)

    rows = benchmark.pedantic(
        lambda: run_swift_table(second_ethernet=False, sizes_mb=sizes,
                                samples=samples),
        rounds=1, iterations=1)

    text = "\n\n".join([
        format_table("Table 1 — Swift on one Ethernet (KB/s)", rows),
        format_comparison("Table 1 — measured vs paper", rows, PAPER_TABLE1),
    ])
    archive("table1_swift_single_ethernet", text)

    for label, samples_set in rows.items():
        published = PAPER_TABLE1[label]
        ratio = samples_set.mean / published
        benchmark.extra_info[label] = round(samples_set.mean)
        # The headline claim: we land within ~10 % of every published row.
        assert 0.90 <= ratio <= 1.10, f"{label}: {ratio:.2f}x paper"

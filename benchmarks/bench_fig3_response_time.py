"""Figure 3: average time to complete a 1 MB client request vs. load.

Paper (M2372K disks: seek 16 ms, rotation 8.3 ms, 2.5 MB/s): larger
transfer units and more disks cut the response time; 4-disk systems
saturate quickly; 32 disks sustain ~22 requests/second; response is
almost flat until the knee.
"""

from _common import archive, bench_workers, format_series, scaled

from repro.sim import figure3_series

KB = 1 << 10


def bench_fig3_response_time(benchmark):
    rates = scaled((1, 2.5, 5, 7.5, 10, 15, 20, 25, 30), (2, 6, 12, 20))
    disk_counts = scaled((4, 8, 16, 32), (4, 32))
    block_sizes = scaled((4 * KB, 16 * KB, 32 * KB), (4 * KB, 32 * KB))
    num_requests = scaled(400, 200)

    points = benchmark.pedantic(
        lambda: figure3_series(rates=rates, disk_counts=disk_counts,
                               block_sizes=block_sizes,
                               num_requests=num_requests,
                               workers=bench_workers(1)),
        rounds=1, iterations=1)

    archive("fig3_response_time", format_series(
        "Figure 3 — mean time to complete a 1 MB request (ms) vs req/s",
        points, "req/s", "ms"))

    def series_points(name):
        return sorted((p for p in points if p.series == name),
                      key=lambda p: p.x)

    # Larger transfer units beat smaller ones at every load (seek+rotation
    # amortisation, §5.2).
    small = series_points(f"{4}KB blocks, 32 disks")
    large = series_points(f"{32}KB blocks, 32 disks")
    for s, l in zip(small, large):
        assert l.y < s.y, "32KB blocks must finish 1 MB faster than 4KB"

    # 4 disks saturate quickly: their curve blows past 32 disks' early.
    few = series_points(f"{32}KB blocks, 4 disks")
    many = series_points(f"{32}KB blocks, 32 disks")
    assert few[-1].y > 3 * many[-1].y

    # Response near-flat for 32 disks until the knee (§5.2).
    assert many[1].y < 2.5 * many[0].y

    benchmark.extra_info["points"] = len(points)

"""Figure 6: maximum sustainable client data-rate, 1 MB / 32 KB units.

Paper: ~12 MB/s for 32 disks — "the increase in effective data-rate is
almost linear in the size of the transfer unit" (≈6x over Figure 5's 4 KB
units for the same disks).
"""

from _common import archive, bench_workers, format_series, scaled

from repro.sim import figure5_series, figure6_series


def bench_fig6_sustainable_32k(benchmark):
    disk_counts = scaled((1, 2, 4, 8, 16, 32), (2, 8, 32))
    disk_names = scaled(
        ("IBM 3380K", "Fujitsu M2361A", "Fujitsu M2351A", "Wren V",
         "Fujitsu M2372K", "DEC RA82"),
        ("IBM 3380K", "Fujitsu M2372K", "DEC RA82"))
    num_requests = scaled(250, 120)
    iterations = scaled(8, 6)

    points = benchmark.pedantic(
        lambda: figure6_series(disk_counts=disk_counts,
                               disk_names=disk_names,
                               num_requests=num_requests,
                               iterations=iterations,
                               workers=bench_workers(1)),
        rounds=1, iterations=1)

    archive("fig6_sustainable_32k", format_series(
        "Figure 6 — max sustainable data-rate (MB/s), 1 MB req / 32 KB unit",
        points, "disks", "MB/s", y_scale=1e-6))

    by = {(p.series, p.x): p.y for p in points}
    top = max(disk_counts)

    if top == 32:
        anchor = by[("Fujitsu M2372K", 32)]
        # Paper's eyeballed ~12 MB/s; we accept the 8-14 band.
        assert 8e6 < anchor < 14e6, f"32-disk anchor {anchor/1e6:.2f} MB/s"

    # Monotone in disks, 3380K above RA82 (as in Figure 5).
    for name in disk_names:
        series = sorted((p for p in points if p.series == name),
                        key=lambda p: p.x)
        values = [p.y for p in series]
        assert values == sorted(values), f"{name} not monotone"
    for disks in disk_counts:
        assert by[("IBM 3380K", disks)] > by[("DEC RA82", disks)]

    # The unit-scaling claim: 32 KB units deliver several times the 4 KB
    # rate on the same configuration.
    fig5_point = figure5_series(disk_counts=(8,),
                                disk_names=("Fujitsu M2372K",),
                                num_requests=num_requests,
                                iterations=iterations)[0]
    assert by[("Fujitsu M2372K", 8)] > 3.5 * fig5_point.y

    benchmark.extra_info["points"] = len(points)

"""Microbenchmark: DES kernel event throughput.

Not a paper result — this guards the substrate every experiment runs on.
Uses pytest-benchmark's statistics properly (multiple rounds) since the
workload is cheap and deterministic.
"""


from repro.des import Environment, Resource


def _pingpong_workload():
    env = Environment()
    resource = Resource(env, capacity=2)

    def worker(env):
        for _ in range(500):
            with resource.request() as req:
                yield req
                yield env.timeout(0.001)

    for _ in range(8):
        env.process(worker(env))
    env.run()
    return env.now


def bench_kernel_events(benchmark):
    result = benchmark(_pingpong_workload)
    # 8 workers x 500 holds of 1 ms through a capacity-2 resource: exactly
    # 4000 x 0.001 / 2 seconds of simulated time.
    assert abs(_pingpong_workload() - 2.0) < 1e-9

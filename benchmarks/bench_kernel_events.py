"""Microbenchmark: DES kernel event throughput.

Not a paper result — this guards the substrate every experiment runs on.
Uses pytest-benchmark's statistics properly (multiple rounds) since the
workload is cheap and deterministic.

Beyond the pytest-benchmark numbers, this archives a machine-readable
``BENCH_kernel_events.json`` with events/second, p50/p95 per-step
latency, and the throughput cost of installing the happens-before race
detector — so CI (and the next optimization PR) can diff kernel
performance without parsing console output.  The monitor hooks
themselves are lists tested for truthiness in the hot loop, so the
uninstalled cost is a single branch per event; the JSON records the
measured detector-on/off ratio.
"""

import time

from _common import archive_json, scaled

from repro.check import RaceDetector
from repro.des import Environment, Resource


def _build(num_workers=8, holds=500):
    env = Environment()
    resource = Resource(env, capacity=2)

    def worker(env):
        for _ in range(holds):
            with resource.request() as req:
                yield req
                yield env.timeout(0.001)

    for _ in range(num_workers):
        env.process(worker(env))
    return env


def _pingpong_workload():
    env = _build()
    env.run()
    return env.now


def _timed_run(detector: bool = False):
    """One full run; returns (events processed, elapsed seconds)."""
    env = _build()
    installed = None
    if detector:
        installed = RaceDetector(env, include_stacks=False)
        installed.install()
    start = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - start
    if installed is not None:
        installed.uninstall()
    return env._eid, elapsed


def _step_latencies():
    """Per-event step() latencies over one run, in seconds."""
    from repro.des.engine import EmptySchedule

    env = _build()
    samples = []
    while True:
        start = time.perf_counter()
        try:
            env.step()
        except EmptySchedule:
            break
        samples.append(time.perf_counter() - start)
    return sorted(samples)


def _quantile(ordered, fraction):
    index = min(len(ordered) - 1, max(0, round(fraction * len(ordered)) - 1))
    return ordered[index]


def bench_kernel_events(benchmark):
    benchmark(_pingpong_workload)
    # 8 workers x 500 holds of 1 ms through a capacity-2 resource: exactly
    # 4000 x 0.001 / 2 seconds of simulated time.
    assert abs(_pingpong_workload() - 2.0) < 1e-9

    rounds = scaled(5, 3)
    plain = [_timed_run() for _ in range(rounds)]
    events = plain[0][0]
    best_plain = min(elapsed for _, elapsed in plain)
    detected = min(_timed_run(detector=True)[1] for _ in range(rounds))
    latencies = _step_latencies()

    payload = {
        "workload": "8 workers x 500 holds, capacity-2 resource",
        "events": events,
        "events_per_sec": events / best_plain,
        "p50_step_latency_us": _quantile(latencies, 0.50) * 1e6,
        "p95_step_latency_us": _quantile(latencies, 0.95) * 1e6,
        "race_detector_events_per_sec": events / detected,
        "race_detector_overhead_ratio": detected / best_plain,
    }
    path = archive_json("BENCH_kernel_events", payload)
    print(f"\nkernel: {payload['events_per_sec']:,.0f} events/s "
          f"(p50 {payload['p50_step_latency_us']:.2f} us, "
          f"p95 {payload['p95_step_latency_us']:.2f} us); "
          f"race detector x{payload['race_detector_overhead_ratio']:.2f} "
          f"-> {path}")

"""Microbenchmark: DES kernel event throughput.

Not a paper result — this guards the substrate every experiment runs on.
Uses pytest-benchmark's statistics properly (multiple rounds) since the
workload is cheap and deterministic.

Beyond the pytest-benchmark numbers, this archives a machine-readable
``BENCH_kernel_events.json`` with events/second, p50/p95 per-step
latency, and the throughput cost of installing the happens-before race
detector — so CI (and the next optimization PR) can diff kernel
performance without parsing console output.  The monitor hooks
themselves are lists tested for truthiness in the hot loop, so the
uninstalled cost is a single branch per event; the JSON records the
measured detector-on/off ratio.

Overhead ratios are computed per interleaved round (plain and
instrumented runs back to back, ratio within the round) and reported as
the median across rounds, so runner clock drift cannot land on one side
of a ratio; absolute throughput keeps using the best round.
"""

import time

from _common import archive_json, scaled

from repro.check import AliasSanitizer, ConservationLedger, RaceDetector
from repro.core import build_local_swift
from repro.des import Environment, Resource


def _build(num_workers=8, holds=500, cohort=True):
    env = Environment(cohort_dispatch=cohort)
    resource = Resource(env, capacity=2)

    def worker(env):
        for _ in range(holds):
            with resource.request() as req:
                yield req
                yield env.timeout(0.001)

    for _ in range(num_workers):
        env.process(worker(env))
    return env


def _pingpong_workload():
    env = _build()
    env.run()
    return env.now


def _timed_run(detector: bool = False, aliasing: bool = False):
    """One full run; returns (events processed, elapsed seconds)."""
    env = _build()
    installed = None
    if detector:
        installed = RaceDetector(env, include_stacks=False)
        installed.install()
    elif aliasing:
        installed = AliasSanitizer(env)
        installed.install()
    start = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - start
    if installed is not None:
        installed.uninstall()
    return env._eid, elapsed


def _step_latencies():
    """Per-event step() latencies over one run, in seconds."""
    from repro.des.engine import EmptySchedule

    env = _build()
    samples = []
    while True:
        start = time.perf_counter()
        try:
            env.step()
        except EmptySchedule:
            break
        samples.append(time.perf_counter() - start)
    return sorted(samples)


def _swift_transfer_run(ledger: bool = False):
    """A striped write+read session; returns (kernel events, elapsed,
    ledger events observed).  Prices the byte-conservation sanitizer on
    the workload that actually emits transfer events."""
    deployment = build_local_swift(num_agents=4, parity=True)
    installed = None
    if ledger:
        installed = ConservationLedger(deployment.env).install()
    client = deployment.client()
    start = time.perf_counter()
    handle = client.open("obj", "w", parity=True, striping_unit=8192)
    handle.pwrite(0, b"\xa5" * (1 << 18))
    handle.pread(0, 1 << 18)
    handle.close()
    elapsed = time.perf_counter() - start
    observed = 0
    if installed is not None:
        installed.assert_clean()
        observed = installed.events_observed
        installed.uninstall()
    return deployment.env._eid, elapsed, observed


def _quantile(ordered, fraction):
    index = min(len(ordered) - 1, max(0, round(fraction * len(ordered)) - 1))
    return ordered[index]


def _median(values):
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def bench_kernel_events(benchmark):
    benchmark(_pingpong_workload)
    # 8 workers x 500 holds of 1 ms through a capacity-2 resource: exactly
    # 4000 x 0.001 / 2 seconds of simulated time.
    assert abs(_pingpong_workload() - 2.0) < 1e-9

    rounds = scaled(9, 5)
    # Every overhead ratio is measured per round — plain and instrumented
    # runs back to back, the ratio taken within the round — and the
    # archived figure is the MEDIAN of the per-round ratios.  Dividing
    # two minima taken minutes apart (the old scheme) let clock-speed
    # drift on shared runners land on one side only, which is how a
    # baseline once recorded the conservation ledger *speeding a run up*
    # (ratio 0.86).  Throughput figures still use the best round: the
    # minimum is the least-noise estimate of the kernel itself.
    plain_times, aliased_ratios, detector_ratios = [], [], []
    detector_times = []
    events = None
    for _ in range(rounds):
        events, base = _timed_run()
        aliased = _timed_run(aliasing=True)[1]
        detected = _timed_run(detector=True)[1]
        plain_times.append(base)
        aliased_ratios.append(aliased / base)
        detector_ratios.append(detected / base)
        detector_times.append(detected)
    best_plain = min(plain_times)
    latencies = _step_latencies()

    # The transfer workload is short (~a millisecond), so whichever side
    # runs second in a round sees warmer caches; alternate the order so
    # the median cancels that bias too.
    transfer_times, ledger_ratios = [], []
    transfer_events = ledger_events = None
    for index in range(rounds):
        if index % 2:
            _, ledgered_elapsed, ledger_events = \
                _swift_transfer_run(ledger=True)
            transfer_events, transfer_elapsed, _ = _swift_transfer_run()
        else:
            transfer_events, transfer_elapsed, _ = _swift_transfer_run()
            _, ledgered_elapsed, ledger_events = \
                _swift_transfer_run(ledger=True)
        transfer_times.append(transfer_elapsed)
        ledger_ratios.append(ledgered_elapsed / transfer_elapsed)
    best_transfer = min(transfer_times)
    ledger_ratio = _median(ledger_ratios)

    payload = {
        "workload": "8 workers x 500 holds, capacity-2 resource",
        "events": events,
        "events_per_sec": events / best_plain,
        "p50_step_latency_us": _quantile(latencies, 0.50) * 1e6,
        "p95_step_latency_us": _quantile(latencies, 0.95) * 1e6,
        "race_detector_events_per_sec": events / min(detector_times),
        "race_detector_overhead_ratio": _median(detector_ratios),
        "aliasing_sanitizer_events_per_sec":
            events / (_median(aliased_ratios) * best_plain),
        "aliasing_sanitizer_overhead_ratio": _median(aliased_ratios),
        "transfer_workload": "256 KiB parity write + read over 3+1 agents",
        "transfer_kernel_events": transfer_events,
        "conservation_ledger_events": ledger_events,
        "conservation_ledger_events_per_sec":
            transfer_events / (ledger_ratio * best_transfer),
        "conservation_ledger_overhead_ratio": ledger_ratio,
    }
    path = archive_json("BENCH_kernel_events", payload)
    print(f"\nkernel: {payload['events_per_sec']:,.0f} events/s "
          f"(p50 {payload['p50_step_latency_us']:.2f} us, "
          f"p95 {payload['p95_step_latency_us']:.2f} us); "
          f"race detector x{payload['race_detector_overhead_ratio']:.2f}; "
          f"aliasing sanitizer "
          f"x{payload['aliasing_sanitizer_overhead_ratio']:.2f}; "
          f"conservation ledger "
          f"x{payload['conservation_ledger_overhead_ratio']:.2f} "
          f"-> {path}")

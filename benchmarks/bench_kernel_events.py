"""Microbenchmark: DES kernel event throughput.

Not a paper result — this guards the substrate every experiment runs on.
Uses pytest-benchmark's statistics properly (multiple rounds) since the
workload is cheap and deterministic.

Beyond the pytest-benchmark numbers, this archives a machine-readable
``BENCH_kernel_events.json`` with events/second, p50/p95 per-step
latency, and the throughput cost of installing the happens-before race
detector — so CI (and the next optimization PR) can diff kernel
performance without parsing console output.  The monitor hooks
themselves are lists tested for truthiness in the hot loop, so the
uninstalled cost is a single branch per event; the JSON records the
measured detector-on/off ratio.
"""

import time

from _common import archive_json, scaled

from repro.check import AliasSanitizer, ConservationLedger, RaceDetector
from repro.core import build_local_swift
from repro.des import Environment, Resource


def _build(num_workers=8, holds=500):
    env = Environment()
    resource = Resource(env, capacity=2)

    def worker(env):
        for _ in range(holds):
            with resource.request() as req:
                yield req
                yield env.timeout(0.001)

    for _ in range(num_workers):
        env.process(worker(env))
    return env


def _pingpong_workload():
    env = _build()
    env.run()
    return env.now


def _timed_run(detector: bool = False, aliasing: bool = False):
    """One full run; returns (events processed, elapsed seconds)."""
    env = _build()
    installed = None
    if detector:
        installed = RaceDetector(env, include_stacks=False)
        installed.install()
    elif aliasing:
        installed = AliasSanitizer(env)
        installed.install()
    start = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - start
    if installed is not None:
        installed.uninstall()
    return env._eid, elapsed


def _step_latencies():
    """Per-event step() latencies over one run, in seconds."""
    from repro.des.engine import EmptySchedule

    env = _build()
    samples = []
    while True:
        start = time.perf_counter()
        try:
            env.step()
        except EmptySchedule:
            break
        samples.append(time.perf_counter() - start)
    return sorted(samples)


def _swift_transfer_run(ledger: bool = False):
    """A striped write+read session; returns (kernel events, elapsed,
    ledger events observed).  Prices the byte-conservation sanitizer on
    the workload that actually emits transfer events."""
    deployment = build_local_swift(num_agents=4, parity=True)
    installed = None
    if ledger:
        installed = ConservationLedger(deployment.env).install()
    client = deployment.client()
    start = time.perf_counter()
    handle = client.open("obj", "w", parity=True, striping_unit=8192)
    handle.pwrite(0, b"\xa5" * (1 << 18))
    handle.pread(0, 1 << 18)
    handle.close()
    elapsed = time.perf_counter() - start
    observed = 0
    if installed is not None:
        installed.assert_clean()
        observed = installed.events_observed
        installed.uninstall()
    return deployment.env._eid, elapsed, observed


def _quantile(ordered, fraction):
    index = min(len(ordered) - 1, max(0, round(fraction * len(ordered)) - 1))
    return ordered[index]


def bench_kernel_events(benchmark):
    benchmark(_pingpong_workload)
    # 8 workers x 500 holds of 1 ms through a capacity-2 resource: exactly
    # 4000 x 0.001 / 2 seconds of simulated time.
    assert abs(_pingpong_workload() - 2.0) < 1e-9

    rounds = scaled(5, 3)
    # Plain and sanitized rounds are interleaved so clock-speed drift on
    # shared runners lands on both sides of the overhead ratio, and the
    # pair count is higher than the other measurements because the
    # gated ratio divides two noisy minima (each run is ~15 ms, so the
    # extra pairs are cheap).
    plain, aliased_times = [], []
    for _ in range(scaled(9, 5)):
        plain.append(_timed_run())
        aliased_times.append(_timed_run(aliasing=True)[1])
    events = plain[0][0]
    best_plain = min(elapsed for _, elapsed in plain)
    aliased = min(aliased_times)
    detected = min(_timed_run(detector=True)[1] for _ in range(rounds))
    latencies = _step_latencies()

    transfers = [_swift_transfer_run() for _ in range(rounds)]
    transfer_events = transfers[0][0]
    best_transfer = min(elapsed for _, elapsed, _ in transfers)
    ledgered = [_swift_transfer_run(ledger=True) for _ in range(rounds)]
    best_ledgered = min(elapsed for _, elapsed, _ in ledgered)
    ledger_events = ledgered[0][2]

    payload = {
        "workload": "8 workers x 500 holds, capacity-2 resource",
        "events": events,
        "events_per_sec": events / best_plain,
        "p50_step_latency_us": _quantile(latencies, 0.50) * 1e6,
        "p95_step_latency_us": _quantile(latencies, 0.95) * 1e6,
        "race_detector_events_per_sec": events / detected,
        "race_detector_overhead_ratio": detected / best_plain,
        "aliasing_sanitizer_events_per_sec": events / aliased,
        "aliasing_sanitizer_overhead_ratio": aliased / best_plain,
        "transfer_workload": "256 KiB parity write + read over 3+1 agents",
        "transfer_kernel_events": transfer_events,
        "conservation_ledger_events": ledger_events,
        "conservation_ledger_events_per_sec": transfer_events / best_ledgered,
        "conservation_ledger_overhead_ratio": best_ledgered / best_transfer,
    }
    path = archive_json("BENCH_kernel_events", payload)
    print(f"\nkernel: {payload['events_per_sec']:,.0f} events/s "
          f"(p50 {payload['p50_step_latency_us']:.2f} us, "
          f"p95 {payload['p95_step_latency_us']:.2f} us); "
          f"race detector x{payload['race_detector_overhead_ratio']:.2f}; "
          f"aliasing sanitizer "
          f"x{payload['aliasing_sanitizer_overhead_ratio']:.2f}; "
          f"conservation ledger "
          f"x{payload['conservation_ledger_overhead_ratio']:.2f} "
          f"-> {path}")

"""Benchmark: parallel sweep runner and result cache vs. the serial loop.

Not a paper result — this guards the sweep infrastructure the figure
benchmarks run on.  Three measurements over the same Figure 3-shaped
load-sweep grid:

* **serial** — the plain one-process ``load_sweep`` loop;
* **parallel** — the same grid fanned out over worker processes
  (``REPRO_BENCH_WORKERS``, default 4), asserted bit-identical to the
  serial results;
* **cached** — the same grid resolved entirely from a warm
  :class:`~repro.sim.ResultCache`;
* **hermetic cached** — the warm-cache rebuild again, inside
  :func:`~repro.check.hermetic_sanitize`, to price the runtime
  hermeticity traps.  The ``hermeticity_sanitizer_overhead_ratio``
  (hermetic / plain cached wall-clock) is gated by
  ``check_regression.py``.

The archived ``BENCH_sweep_parallel.json`` records ``cpu_count`` next to
the wall-clock numbers: on a single-core container the parallel speedup
is bounded by 1.0x (plus pool overhead), and the honest figure of merit
there is the cached rebuild, which replaces simulation with JSON loads.
"""

import multiprocessing
import shutil
import tempfile
import time
from pathlib import Path

from _common import archive_json, bench_workers, scaled

from repro.check import hermetic_sanitize
from repro.sim import ResultCache, SimConfig, load_sweep

KB = 1 << 10


def _grid():
    """A reduced Figure 3 cell: one base config by a rate grid."""
    rates = scaled((1.0, 2.5, 5.0, 7.5, 10.0, 15.0), (2.0, 6.0, 12.0, 20.0))
    base = SimConfig(
        num_disks=scaled(8, 4),
        transfer_unit=32 * KB,
        request_size=1 << 20,
        num_requests=scaled(400, 120),
        warmup_requests=scaled(40, 12),
        seed=0,
    )
    return base, rates


def bench_sweep_parallel(benchmark):
    base, rates = _grid()
    workers = bench_workers()

    start = time.perf_counter()
    serial = load_sweep(base, rates)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = load_sweep(base, rates, workers=workers)
    parallel_s = time.perf_counter() - start

    # The contract everything rests on: fan-out changes wall-clock only.
    assert parallel == serial, "parallel sweep diverged from serial results"

    cache_dir = Path(tempfile.mkdtemp(prefix="repro-bench-cache-"))
    try:
        cache = ResultCache(cache_dir)
        load_sweep(base, rates, workers=workers, cache=cache)  # warm it
        assert cache.misses == len(rates) and cache.hits == 0

        start = time.perf_counter()
        cached = load_sweep(base, rates, cache=cache)
        cached_s = time.perf_counter() - start
        assert cached == serial, "cached sweep diverged from serial results"
        assert cache.hits == len(rates), "warm cache still missed"
        cache_hits, cache_misses = cache.hits, cache.misses

        # The same warm rebuild under the runtime hermeticity traps: a
        # cache-served sweep must be clean under every trap, and the
        # traps must stay cheap enough to leave on in CI.  Both sides
        # repeat the rebuild so the one-time install/snapshot/diff cost
        # is amortised the way real usage amortises it — one hermetic
        # block around a whole sweep session, not one per sweep.
        repeats = 25
        start = time.perf_counter()
        for _ in range(repeats):
            plain = load_sweep(base, rates, cache=cache)
        plain_repeat_s = time.perf_counter() - start
        start = time.perf_counter()
        with hermetic_sanitize():
            for _ in range(repeats):
                hermetic = load_sweep(base, rates, cache=cache)
        hermetic_repeat_s = time.perf_counter() - start
        assert plain == serial and hermetic == serial, \
            "hermetic sweep diverged from serial"
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    # pytest-benchmark wants a measured callable; use the cheap cached
    # path so `make bench` totals stay dominated by the real measurements
    # above.
    benchmark.pedantic(lambda: load_sweep(base, rates[:1]),
                       rounds=1, iterations=1)

    payload = {
        "grid": f"{len(rates)} arrival rates x "
                f"{base.num_requests} requests, {base.num_disks} disks",
        "cpu_count": multiprocessing.cpu_count(),
        "workers": workers,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "parallel_speedup": serial_s / parallel_s,
        "cached_s": cached_s,
        "cached_speedup": serial_s / cached_s,
        "cache_hits": cache_hits,
        "cache_misses": cache_misses,
        "plain_cached_session_s": plain_repeat_s,
        "hermetic_cached_session_s": hermetic_repeat_s,
        "hermeticity_sanitizer_overhead_ratio":
            hermetic_repeat_s / plain_repeat_s,
        "bit_identical": True,  # asserted above; recorded for the archive
    }
    path = archive_json("BENCH_sweep_parallel", payload)
    print(f"\nsweep: serial {serial_s:.2f}s, "
          f"parallel({workers}w/{payload['cpu_count']}cpu) {parallel_s:.2f}s "
          f"(x{payload['parallel_speedup']:.2f}), "
          f"cached {cached_s:.3f}s (x{payload['cached_speedup']:.1f}), "
          f"hermetic x{payload['hermeticity_sanitizer_overhead_ratio']:.2f} "
          f"-> {path}")

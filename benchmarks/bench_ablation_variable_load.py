"""Ablation (§6.1.1 future work): variable loads.

The paper's future work plans to "study different resource allocation
policies, with the goal of understanding how to handle variable loads."
This bench quantifies the problem those policies would solve: at identical
*mean* arrival rates, bursty (ON/OFF) traffic inflates the tail of the
completion-time distribution far more than the mean — the case for
admission control and preallocation (§2) rather than best-effort service.
"""

from _common import archive, scaled

from repro.sim import (
    SimConfig,
    run_once,
    synthesize_bursty_trace,
    synthesize_poisson_trace,
)

KB = 1 << 10
MB = 1 << 20


def bench_ablation_variable_load(benchmark):
    rates = scaled((4.0, 6.0, 8.0, 10.0), (6.0, 10.0))
    num_requests = scaled(400, 250)

    def run():
        table = {}
        for rate in rates:
            config = SimConfig(
                num_disks=16, transfer_unit=32 * KB, request_size=1 * MB,
                arrival_rate=rate, num_requests=num_requests,
                warmup_requests=num_requests // 10, seed=55)
            count = num_requests + num_requests // 10 + 50
            smooth = synthesize_poisson_trace(rate, count, seed=55)
            bursty = synthesize_bursty_trace(rate, count, burstiness=3.5,
                                             seed=55)
            table[(rate, "poisson")] = run_once(config, trace=smooth)
            table[(rate, "bursty")] = run_once(config, trace=bursty)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Ablation — variable loads (same mean rate, ON/OFF bursts 3.5x)",
        "",
        f"{'req/s':>6}  {'poisson mean':>13} {'p99':>8}  "
        f"{'bursty mean':>12} {'p99':>8}   (ms)",
    ]
    for rate in rates:
        smooth = table[(rate, "poisson")]
        spiky = table[(rate, "bursty")]
        lines.append(
            f"{rate:>6}  {smooth.mean_completion_s * 1e3:>13.0f} "
            f"{smooth.p99_completion_s * 1e3:>8.0f}  "
            f"{spiky.mean_completion_s * 1e3:>12.0f} "
            f"{spiky.p99_completion_s * 1e3:>8.0f}")
    lines.append("")
    lines.append("burstiness wrecks the tail long before it moves the "
                 "mean — why Swift's session-oriented preallocation (§2) "
                 "matters for continuous media")
    archive("ablation_variable_load", "\n".join(lines))

    top = max(rates)
    smooth = table[(top, "poisson")]
    spiky = table[(top, "bursty")]
    assert spiky.p99_completion_s > 1.5 * smooth.p99_completion_s

    benchmark.extra_info["p99_inflation_at_top"] = round(
        spiky.p99_completion_s / smooth.p99_completion_s, 2)

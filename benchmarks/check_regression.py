"""Kernel-throughput regression gate for CI.

Compares the freshly archived ``benchmarks/results/BENCH_kernel_events.json``
against the committed reference in ``benchmarks/baselines/`` and exits
nonzero if events/second dropped by more than the threshold (default
20 % — far outside shared-runner noise, well inside any accidental
de-optimisation of the kernel fast paths; see docs/PERFORMANCE.md).

Faster-than-baseline results pass silently: the gate is one-sided, and
re-baselining is a deliberate act (copy the fresh JSON into
``benchmarks/baselines/`` in the same commit as the speedup).

The fresh JSON is additionally self-gated: the aliasing sanitizer's
measured overhead ratio must stay under ``--sanitizer-threshold``
(default 1.5x of the uninstrumented kernel).  That bound is absolute,
not baseline-relative — it holds the instrumented pools cheap enough
that sanitized CI runs stay practical.  Baselines archived before the
sanitizer existed simply lack the key and are not penalised.

The hermeticity sanitizer is gated the same way: a fresh
``BENCH_sweep_parallel.json`` carries
``hermeticity_sanitizer_overhead_ratio`` (hermetic warm-cache sweep /
plain warm-cache sweep), and it must stay under
``--hermeticity-threshold`` (default 1.5x).  Runs that never archived
the sweep benchmark skip this gate.

The happens-before race detector gets an absolute ceiling too: the
fresh run's ``race_detector_overhead_ratio`` must stay under
``--hb-threshold`` (default 6.0x of the uninstrumented kernel — the
vector-clock stamps are copy-on-write, so the per-event cost is a
tuple build, not a dict copy).

Cohort dispatch is gated through ``BENCH_kernel_batched.json`` when a
fresh one exists: ``bit_identical`` false is an unconditional failure
(the batched scheduler diverged from the one-heap reference), and
``batched_events_per_sec`` obeys the same one-sided throughput floor
against ``baselines/BENCH_kernel_batched.json``.

The callback process mode is gated through ``BENCH_process_modes.json``
when a fresh one exists: ``bit_identical`` false is an unconditional
failure (the callback state machines diverged from the generator
reference — a correctness bug, never re-baseline it away), the
*committed baseline's* ``callback_speedup_ratio`` must hold the
``process_modes_speedup_floor`` (1.5x — the floor is a property of the
committed code, so a noisy CI runner cannot flake it), and the fresh
speedup obeys the ordinary one-sided tolerance against that baseline.

Thresholds live in ``benchmarks/baselines/thresholds.json`` — committed
next to the baselines they guard, so tolerance changes are reviewed
like re-baselines.  Command-line flags override individual values.

Usage::

    python benchmarks/check_regression.py [--threshold 0.20]
        [--sanitizer-threshold 1.5] [--hermeticity-threshold 1.5]
        [--hb-threshold 6.0] [--process-modes-floor 1.5]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).parent
BASELINE = BENCH_DIR / "baselines" / "BENCH_kernel_events.json"
FRESH = BENCH_DIR / "results" / "BENCH_kernel_events.json"
SWEEP_FRESH = BENCH_DIR / "results" / "BENCH_sweep_parallel.json"
BATCHED_BASELINE = BENCH_DIR / "baselines" / "BENCH_kernel_batched.json"
BATCHED_FRESH = BENCH_DIR / "results" / "BENCH_kernel_batched.json"
MODES_BASELINE = BENCH_DIR / "baselines" / "BENCH_process_modes.json"
MODES_FRESH = BENCH_DIR / "results" / "BENCH_process_modes.json"
THRESHOLDS = BENCH_DIR / "baselines" / "thresholds.json"

#: Built-in fallbacks, used only if thresholds.json is absent.
DEFAULT_THRESHOLDS = {
    "threshold": 0.20,
    "sanitizer_threshold": 1.5,
    "hermeticity_threshold": 1.5,
    "hb_threshold": 6.0,
    "process_modes_speedup_floor": 1.5,
}

#: Metrics gated, with direction: events/sec must not drop.
GATED_METRIC = "events_per_sec"

#: Fresh-run-only gate: sanitized/plain throughput ratio must stay low.
SANITIZER_METRIC = "aliasing_sanitizer_overhead_ratio"

#: Fresh-run-only gate on the sweep benchmark: hermetic/plain warm-cache
#: wall-clock ratio must stay low.
HERMETICITY_METRIC = "hermeticity_sanitizer_overhead_ratio"

#: Fresh-run-only gate: race-detector/plain throughput ratio ceiling.
HB_METRIC = "race_detector_overhead_ratio"

#: Cohort-dispatch gate on the batched benchmark.
BATCHED_METRIC = "batched_events_per_sec"

#: Callback-mode gate on the process-modes benchmark.
MODES_METRIC = "callback_speedup_ratio"


def load_thresholds(path: Path) -> dict:
    """Committed default thresholds, falling back to the built-ins."""
    defaults = dict(DEFAULT_THRESHOLDS)
    if path.exists():
        committed = json.loads(path.read_text())
        defaults.update(
            (key, value) for key, value in committed.items()
            if key in DEFAULT_THRESHOLDS)
    return defaults


def main(argv=None) -> int:
    # Flags default to None so "the user said nothing" is
    # distinguishable from "the user repeated the committed value";
    # unset flags take the thresholds.json defaults below.
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--threshold", type=float, default=None,
                        help="maximum tolerated fractional drop "
                             "(default from thresholds.json: 0.20 = 20%%)")
    parser.add_argument("--sanitizer-threshold", type=float, default=None,
                        help="maximum tolerated aliasing-sanitizer "
                             "overhead ratio in the fresh run "
                             "(default from thresholds.json: 1.5x)")
    parser.add_argument("--hermeticity-threshold", type=float, default=None,
                        help="maximum tolerated hermeticity-sanitizer "
                             "overhead ratio in the fresh sweep "
                             "benchmark (default from thresholds.json: 1.5x)")
    parser.add_argument("--hb-threshold", type=float, default=None,
                        help="maximum tolerated race-detector overhead "
                             "ratio in the fresh run "
                             "(default from thresholds.json: 6.0x)")
    parser.add_argument("--process-modes-floor", type=float, default=None,
                        help="minimum callback-mode speedup the committed "
                             "BENCH_process_modes.json baseline must hold "
                             "(default from thresholds.json: 1.5x)")
    parser.add_argument("--thresholds", type=Path, default=THRESHOLDS,
                        help="committed threshold defaults "
                             "(benchmarks/baselines/thresholds.json)")
    parser.add_argument("--baseline", type=Path, default=BASELINE)
    parser.add_argument("--fresh", type=Path, default=FRESH)
    parser.add_argument("--sweep-fresh", type=Path, default=SWEEP_FRESH)
    parser.add_argument("--batched-baseline", type=Path,
                        default=BATCHED_BASELINE)
    parser.add_argument("--batched-fresh", type=Path, default=BATCHED_FRESH)
    parser.add_argument("--modes-baseline", type=Path,
                        default=MODES_BASELINE)
    parser.add_argument("--modes-fresh", type=Path, default=MODES_FRESH)
    options = parser.parse_args(argv)

    committed = load_thresholds(options.thresholds)
    if options.threshold is None:
        options.threshold = committed["threshold"]
    if options.sanitizer_threshold is None:
        options.sanitizer_threshold = committed["sanitizer_threshold"]
    if options.hermeticity_threshold is None:
        options.hermeticity_threshold = committed["hermeticity_threshold"]
    if options.hb_threshold is None:
        options.hb_threshold = committed["hb_threshold"]
    if options.process_modes_floor is None:
        options.process_modes_floor = committed["process_modes_speedup_floor"]

    if not options.baseline.exists():
        print(f"regression gate: no baseline at {options.baseline}; "
              "nothing to compare (commit one to enable the gate)")
        return 0
    if not options.fresh.exists():
        print(f"regression gate: {options.fresh} missing — run "
              "`pytest benchmarks/bench_kernel_events.py --benchmark-only` "
              "first", file=sys.stderr)
        return 2

    baseline = json.loads(options.baseline.read_text())
    fresh = json.loads(options.fresh.read_text())
    reference = baseline[GATED_METRIC]
    measured = fresh[GATED_METRIC]
    ratio = measured / reference
    floor = 1.0 - options.threshold

    print(f"regression gate: {GATED_METRIC} baseline {reference:,.0f}, "
          f"measured {measured:,.0f} ({ratio:.2f}x of baseline, "
          f"floor {floor:.2f}x)")
    if ratio < floor:
        print(f"regression gate: FAIL — kernel throughput dropped "
              f"{(1.0 - ratio) * 100.0:.1f}% (> {options.threshold * 100:.0f}% "
              "allowed).  If the slowdown is intentional, re-baseline by "
              "copying the fresh JSON into benchmarks/baselines/.",
              file=sys.stderr)
        return 1

    overhead = fresh.get(SANITIZER_METRIC)
    if overhead is not None:
        print(f"regression gate: {SANITIZER_METRIC} measured "
              f"{overhead:.2f}x (ceiling "
              f"{options.sanitizer_threshold:.2f}x)")
        if overhead > options.sanitizer_threshold:
            print(f"regression gate: FAIL — the aliasing sanitizer costs "
                  f"{overhead:.2f}x the bare kernel "
                  f"(> {options.sanitizer_threshold:.2f}x allowed).  Keep "
                  "the instrumented-pool hot path branch-cheap; see "
                  "docs/CHECKING.md.", file=sys.stderr)
            return 1

    hb_overhead = fresh.get(HB_METRIC)
    if hb_overhead is not None:
        print(f"regression gate: {HB_METRIC} measured {hb_overhead:.2f}x "
              f"(ceiling {options.hb_threshold:.2f}x)")
        if hb_overhead > options.hb_threshold:
            print(f"regression gate: FAIL — the race detector costs "
                  f"{hb_overhead:.2f}x the bare kernel "
                  f"(> {options.hb_threshold:.2f}x allowed).  Keep the "
                  "vector-clock stamps copy-on-write (no per-event dict "
                  "copies); see docs/CHECKING.md.", file=sys.stderr)
            return 1

    if options.batched_fresh.exists():
        batched = json.loads(options.batched_fresh.read_text())
        if not batched.get("bit_identical", True):
            print("regression gate: FAIL — cohort dispatch is no longer "
                  "bit-identical to the one-heap reference scheduler "
                  "(BENCH_kernel_batched.json: bit_identical false).  "
                  "This is a correctness bug, not a performance "
                  "regression; do not re-baseline.", file=sys.stderr)
            return 1
        if options.batched_baseline.exists():
            batched_reference = \
                json.loads(options.batched_baseline.read_text())
            reference = batched_reference[BATCHED_METRIC]
            measured = batched[BATCHED_METRIC]
            ratio = measured / reference
            print(f"regression gate: {BATCHED_METRIC} baseline "
                  f"{reference:,.0f}, measured {measured:,.0f} "
                  f"({ratio:.2f}x of baseline, floor {floor:.2f}x)")
            if ratio < floor:
                print(f"regression gate: FAIL — cohort-dispatch throughput "
                      f"dropped {(1.0 - ratio) * 100.0:.1f}% "
                      f"(> {options.threshold * 100:.0f}% allowed).  If "
                      "intentional, re-baseline benchmarks/baselines/"
                      "BENCH_kernel_batched.json.", file=sys.stderr)
                return 1

    if options.modes_fresh.exists():
        modes = json.loads(options.modes_fresh.read_text())
        if not modes.get("bit_identical", True):
            print("regression gate: FAIL — the callback process mode is no "
                  "longer bit-identical to the generator reference "
                  "(BENCH_process_modes.json: bit_identical false).  This "
                  "is a correctness bug, not a performance regression; do "
                  "not re-baseline.", file=sys.stderr)
            return 1
        if options.modes_baseline.exists():
            modes_reference = json.loads(options.modes_baseline.read_text())
            reference = modes_reference[MODES_METRIC]
            # The >=1.5x floor binds the *committed* baseline: it pins
            # what the committed code achieved on a quiet machine, so a
            # noisy CI runner cannot flake it, and a de-optimisation
            # cannot be laundered in by re-baselining below the floor.
            print(f"regression gate: {MODES_METRIC} committed baseline "
                  f"x{reference:.2f} (floor "
                  f"x{options.process_modes_floor:.2f})")
            if reference < options.process_modes_floor:
                print(f"regression gate: FAIL — the committed callback-mode "
                      f"baseline speedup x{reference:.2f} is below the "
                      f"x{options.process_modes_floor:.2f} floor.  Restore "
                      "the fast path (or re-baseline only with a speedup "
                      "that holds the floor).", file=sys.stderr)
                return 1
            measured = modes[MODES_METRIC]
            ratio = measured / reference
            print(f"regression gate: {MODES_METRIC} fresh x{measured:.2f} "
                  f"({ratio:.2f}x of baseline, floor {floor:.2f}x)")
            if ratio < floor:
                print(f"regression gate: FAIL — the callback-mode speedup "
                      f"dropped {(1.0 - ratio) * 100.0:.1f}% below the "
                      f"committed baseline "
                      f"(> {options.threshold * 100:.0f}% allowed).  If "
                      "intentional, re-baseline benchmarks/baselines/"
                      "BENCH_process_modes.json (the committed speedup "
                      "must still hold the floor).", file=sys.stderr)
                return 1

    if options.sweep_fresh.exists():
        sweep = json.loads(options.sweep_fresh.read_text())
        hermeticity = sweep.get(HERMETICITY_METRIC)
        if hermeticity is not None:
            print(f"regression gate: {HERMETICITY_METRIC} measured "
                  f"{hermeticity:.2f}x (ceiling "
                  f"{options.hermeticity_threshold:.2f}x)")
            if hermeticity > options.hermeticity_threshold:
                print(f"regression gate: FAIL — the hermeticity sanitizer "
                      f"costs {hermeticity:.2f}x the plain warm-cache sweep "
                      f"(> {options.hermeticity_threshold:.2f}x allowed).  "
                      "Keep the trap installers and the snapshot/diff pass "
                      "out of per-result work; see docs/CHECKING.md.",
                      file=sys.stderr)
                return 1

    print("regression gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

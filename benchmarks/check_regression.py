"""Kernel-throughput regression gate for CI.

Compares the freshly archived ``benchmarks/results/BENCH_kernel_events.json``
against the committed reference in ``benchmarks/baselines/`` and exits
nonzero if events/second dropped by more than the threshold (default
20 % — far outside shared-runner noise, well inside any accidental
de-optimisation of the kernel fast paths; see docs/PERFORMANCE.md).

Faster-than-baseline results pass silently: the gate is one-sided, and
re-baselining is a deliberate act (copy the fresh JSON into
``benchmarks/baselines/`` in the same commit as the speedup).

The fresh JSON is additionally self-gated: the aliasing sanitizer's
measured overhead ratio must stay under ``--sanitizer-threshold``
(default 1.5x of the uninstrumented kernel).  That bound is absolute,
not baseline-relative — it holds the instrumented pools cheap enough
that sanitized CI runs stay practical.  Baselines archived before the
sanitizer existed simply lack the key and are not penalised.

The hermeticity sanitizer is gated the same way: a fresh
``BENCH_sweep_parallel.json`` carries
``hermeticity_sanitizer_overhead_ratio`` (hermetic warm-cache sweep /
plain warm-cache sweep), and it must stay under
``--hermeticity-threshold`` (default 1.5x).  Runs that never archived
the sweep benchmark skip this gate.

Usage::

    python benchmarks/check_regression.py [--threshold 0.20]
        [--sanitizer-threshold 1.5] [--hermeticity-threshold 1.5]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).parent
BASELINE = BENCH_DIR / "baselines" / "BENCH_kernel_events.json"
FRESH = BENCH_DIR / "results" / "BENCH_kernel_events.json"
SWEEP_FRESH = BENCH_DIR / "results" / "BENCH_sweep_parallel.json"

#: Metrics gated, with direction: events/sec must not drop.
GATED_METRIC = "events_per_sec"

#: Fresh-run-only gate: sanitized/plain throughput ratio must stay low.
SANITIZER_METRIC = "aliasing_sanitizer_overhead_ratio"

#: Fresh-run-only gate on the sweep benchmark: hermetic/plain warm-cache
#: wall-clock ratio must stay low.
HERMETICITY_METRIC = "hermeticity_sanitizer_overhead_ratio"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="maximum tolerated fractional drop "
                             "(default 0.20 = 20%%)")
    parser.add_argument("--sanitizer-threshold", type=float, default=1.5,
                        help="maximum tolerated aliasing-sanitizer "
                             "overhead ratio in the fresh run "
                             "(default 1.5x)")
    parser.add_argument("--hermeticity-threshold", type=float, default=1.5,
                        help="maximum tolerated hermeticity-sanitizer "
                             "overhead ratio in the fresh sweep "
                             "benchmark (default 1.5x)")
    parser.add_argument("--baseline", type=Path, default=BASELINE)
    parser.add_argument("--fresh", type=Path, default=FRESH)
    parser.add_argument("--sweep-fresh", type=Path, default=SWEEP_FRESH)
    options = parser.parse_args(argv)

    if not options.baseline.exists():
        print(f"regression gate: no baseline at {options.baseline}; "
              "nothing to compare (commit one to enable the gate)")
        return 0
    if not options.fresh.exists():
        print(f"regression gate: {options.fresh} missing — run "
              "`pytest benchmarks/bench_kernel_events.py --benchmark-only` "
              "first", file=sys.stderr)
        return 2

    baseline = json.loads(options.baseline.read_text())
    fresh = json.loads(options.fresh.read_text())
    reference = baseline[GATED_METRIC]
    measured = fresh[GATED_METRIC]
    ratio = measured / reference
    floor = 1.0 - options.threshold

    print(f"regression gate: {GATED_METRIC} baseline {reference:,.0f}, "
          f"measured {measured:,.0f} ({ratio:.2f}x of baseline, "
          f"floor {floor:.2f}x)")
    if ratio < floor:
        print(f"regression gate: FAIL — kernel throughput dropped "
              f"{(1.0 - ratio) * 100.0:.1f}% (> {options.threshold * 100:.0f}% "
              "allowed).  If the slowdown is intentional, re-baseline by "
              "copying the fresh JSON into benchmarks/baselines/.",
              file=sys.stderr)
        return 1

    overhead = fresh.get(SANITIZER_METRIC)
    if overhead is not None:
        print(f"regression gate: {SANITIZER_METRIC} measured "
              f"{overhead:.2f}x (ceiling "
              f"{options.sanitizer_threshold:.2f}x)")
        if overhead > options.sanitizer_threshold:
            print(f"regression gate: FAIL — the aliasing sanitizer costs "
                  f"{overhead:.2f}x the bare kernel "
                  f"(> {options.sanitizer_threshold:.2f}x allowed).  Keep "
                  "the instrumented-pool hot path branch-cheap; see "
                  "docs/CHECKING.md.", file=sys.stderr)
            return 1

    if options.sweep_fresh.exists():
        sweep = json.loads(options.sweep_fresh.read_text())
        hermeticity = sweep.get(HERMETICITY_METRIC)
        if hermeticity is not None:
            print(f"regression gate: {HERMETICITY_METRIC} measured "
                  f"{hermeticity:.2f}x (ceiling "
                  f"{options.hermeticity_threshold:.2f}x)")
            if hermeticity > options.hermeticity_threshold:
                print(f"regression gate: FAIL — the hermeticity sanitizer "
                      f"costs {hermeticity:.2f}x the plain warm-cache sweep "
                      f"(> {options.hermeticity_threshold:.2f}x allowed).  "
                      "Keep the trap installers and the snapshot/diff pass "
                      "out of per-result work; see docs/CHECKING.md.",
                      file=sys.stderr)
                return 1

    print("regression gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Kernel-throughput regression gate for CI.

Compares the freshly archived ``benchmarks/results/BENCH_kernel_events.json``
against the committed reference in ``benchmarks/baselines/`` and exits
nonzero if events/second dropped by more than the threshold (default
20 % — far outside shared-runner noise, well inside any accidental
de-optimisation of the kernel fast paths; see docs/PERFORMANCE.md).

Faster-than-baseline results pass silently: the gate is one-sided, and
re-baselining is a deliberate act (copy the fresh JSON into
``benchmarks/baselines/`` in the same commit as the speedup).

The fresh JSON is additionally self-gated: the aliasing sanitizer's
measured overhead ratio must stay under ``--sanitizer-threshold``
(default 1.5x of the uninstrumented kernel).  That bound is absolute,
not baseline-relative — it holds the instrumented pools cheap enough
that sanitized CI runs stay practical.  Baselines archived before the
sanitizer existed simply lack the key and are not penalised.

The hermeticity sanitizer is gated the same way: a fresh
``BENCH_sweep_parallel.json`` carries
``hermeticity_sanitizer_overhead_ratio`` (hermetic warm-cache sweep /
plain warm-cache sweep), and it must stay under
``--hermeticity-threshold`` (default 1.5x).  Runs that never archived
the sweep benchmark skip this gate.

The happens-before race detector gets an absolute ceiling too: the
fresh run's ``race_detector_overhead_ratio`` must stay under
``--hb-threshold`` (default 6.0x of the uninstrumented kernel — the
vector-clock stamps are copy-on-write, so the per-event cost is a
tuple build, not a dict copy).

Cohort dispatch is gated through ``BENCH_kernel_batched.json`` when a
fresh one exists: ``bit_identical`` false is an unconditional failure
(the batched scheduler diverged from the one-heap reference), and
``batched_events_per_sec`` obeys the same one-sided throughput floor
against ``baselines/BENCH_kernel_batched.json``.

Usage::

    python benchmarks/check_regression.py [--threshold 0.20]
        [--sanitizer-threshold 1.5] [--hermeticity-threshold 1.5]
        [--hb-threshold 6.0]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).parent
BASELINE = BENCH_DIR / "baselines" / "BENCH_kernel_events.json"
FRESH = BENCH_DIR / "results" / "BENCH_kernel_events.json"
SWEEP_FRESH = BENCH_DIR / "results" / "BENCH_sweep_parallel.json"
BATCHED_BASELINE = BENCH_DIR / "baselines" / "BENCH_kernel_batched.json"
BATCHED_FRESH = BENCH_DIR / "results" / "BENCH_kernel_batched.json"

#: Metrics gated, with direction: events/sec must not drop.
GATED_METRIC = "events_per_sec"

#: Fresh-run-only gate: sanitized/plain throughput ratio must stay low.
SANITIZER_METRIC = "aliasing_sanitizer_overhead_ratio"

#: Fresh-run-only gate on the sweep benchmark: hermetic/plain warm-cache
#: wall-clock ratio must stay low.
HERMETICITY_METRIC = "hermeticity_sanitizer_overhead_ratio"

#: Fresh-run-only gate: race-detector/plain throughput ratio ceiling.
HB_METRIC = "race_detector_overhead_ratio"

#: Cohort-dispatch gate on the batched benchmark.
BATCHED_METRIC = "batched_events_per_sec"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="maximum tolerated fractional drop "
                             "(default 0.20 = 20%%)")
    parser.add_argument("--sanitizer-threshold", type=float, default=1.5,
                        help="maximum tolerated aliasing-sanitizer "
                             "overhead ratio in the fresh run "
                             "(default 1.5x)")
    parser.add_argument("--hermeticity-threshold", type=float, default=1.5,
                        help="maximum tolerated hermeticity-sanitizer "
                             "overhead ratio in the fresh sweep "
                             "benchmark (default 1.5x)")
    parser.add_argument("--hb-threshold", type=float, default=6.0,
                        help="maximum tolerated race-detector overhead "
                             "ratio in the fresh run (default 6.0x)")
    parser.add_argument("--baseline", type=Path, default=BASELINE)
    parser.add_argument("--fresh", type=Path, default=FRESH)
    parser.add_argument("--sweep-fresh", type=Path, default=SWEEP_FRESH)
    parser.add_argument("--batched-baseline", type=Path,
                        default=BATCHED_BASELINE)
    parser.add_argument("--batched-fresh", type=Path, default=BATCHED_FRESH)
    options = parser.parse_args(argv)

    if not options.baseline.exists():
        print(f"regression gate: no baseline at {options.baseline}; "
              "nothing to compare (commit one to enable the gate)")
        return 0
    if not options.fresh.exists():
        print(f"regression gate: {options.fresh} missing — run "
              "`pytest benchmarks/bench_kernel_events.py --benchmark-only` "
              "first", file=sys.stderr)
        return 2

    baseline = json.loads(options.baseline.read_text())
    fresh = json.loads(options.fresh.read_text())
    reference = baseline[GATED_METRIC]
    measured = fresh[GATED_METRIC]
    ratio = measured / reference
    floor = 1.0 - options.threshold

    print(f"regression gate: {GATED_METRIC} baseline {reference:,.0f}, "
          f"measured {measured:,.0f} ({ratio:.2f}x of baseline, "
          f"floor {floor:.2f}x)")
    if ratio < floor:
        print(f"regression gate: FAIL — kernel throughput dropped "
              f"{(1.0 - ratio) * 100.0:.1f}% (> {options.threshold * 100:.0f}% "
              "allowed).  If the slowdown is intentional, re-baseline by "
              "copying the fresh JSON into benchmarks/baselines/.",
              file=sys.stderr)
        return 1

    overhead = fresh.get(SANITIZER_METRIC)
    if overhead is not None:
        print(f"regression gate: {SANITIZER_METRIC} measured "
              f"{overhead:.2f}x (ceiling "
              f"{options.sanitizer_threshold:.2f}x)")
        if overhead > options.sanitizer_threshold:
            print(f"regression gate: FAIL — the aliasing sanitizer costs "
                  f"{overhead:.2f}x the bare kernel "
                  f"(> {options.sanitizer_threshold:.2f}x allowed).  Keep "
                  "the instrumented-pool hot path branch-cheap; see "
                  "docs/CHECKING.md.", file=sys.stderr)
            return 1

    hb_overhead = fresh.get(HB_METRIC)
    if hb_overhead is not None:
        print(f"regression gate: {HB_METRIC} measured {hb_overhead:.2f}x "
              f"(ceiling {options.hb_threshold:.2f}x)")
        if hb_overhead > options.hb_threshold:
            print(f"regression gate: FAIL — the race detector costs "
                  f"{hb_overhead:.2f}x the bare kernel "
                  f"(> {options.hb_threshold:.2f}x allowed).  Keep the "
                  "vector-clock stamps copy-on-write (no per-event dict "
                  "copies); see docs/CHECKING.md.", file=sys.stderr)
            return 1

    if options.batched_fresh.exists():
        batched = json.loads(options.batched_fresh.read_text())
        if not batched.get("bit_identical", True):
            print("regression gate: FAIL — cohort dispatch is no longer "
                  "bit-identical to the one-heap reference scheduler "
                  "(BENCH_kernel_batched.json: bit_identical false).  "
                  "This is a correctness bug, not a performance "
                  "regression; do not re-baseline.", file=sys.stderr)
            return 1
        if options.batched_baseline.exists():
            batched_reference = \
                json.loads(options.batched_baseline.read_text())
            reference = batched_reference[BATCHED_METRIC]
            measured = batched[BATCHED_METRIC]
            ratio = measured / reference
            print(f"regression gate: {BATCHED_METRIC} baseline "
                  f"{reference:,.0f}, measured {measured:,.0f} "
                  f"({ratio:.2f}x of baseline, floor {floor:.2f}x)")
            if ratio < floor:
                print(f"regression gate: FAIL — cohort-dispatch throughput "
                      f"dropped {(1.0 - ratio) * 100.0:.1f}% "
                      f"(> {options.threshold * 100:.0f}% allowed).  If "
                      "intentional, re-baseline benchmarks/baselines/"
                      "BENCH_kernel_batched.json.", file=sys.stderr)
                return 1

    if options.sweep_fresh.exists():
        sweep = json.loads(options.sweep_fresh.read_text())
        hermeticity = sweep.get(HERMETICITY_METRIC)
        if hermeticity is not None:
            print(f"regression gate: {HERMETICITY_METRIC} measured "
                  f"{hermeticity:.2f}x (ceiling "
                  f"{options.hermeticity_threshold:.2f}x)")
            if hermeticity > options.hermeticity_threshold:
                print(f"regression gate: FAIL — the hermeticity sanitizer "
                      f"costs {hermeticity:.2f}x the plain warm-cache sweep "
                      f"(> {options.hermeticity_threshold:.2f}x allowed).  "
                      "Keep the trap installers and the snapshot/diff pass "
                      "out of per-result work; see docs/CHECKING.md.",
                      file=sys.stderr)
                return 1

    print("regression gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

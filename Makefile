# Reproduction driver targets.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: install test lint check-aliasing check-effects check-model check-model-full bench bench-full bench-smoke profile tables figures examples clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

# One merged run of every static/model pass (determinism, races, units,
# aliasing, protocol model, effects) with per-pass timing and one exit code.
lint:
	$(PYTHON) -m repro check --all --retransmits 1 --json
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping style pass"; \
	fi

# Zero-copy safety pass: memoryview-escape / hidden-copy / pool-leak rules
# over the package, failing on any finding (see docs/CHECKING.md).
check-aliasing:
	$(PYTHON) -m repro check --aliasing src/ --fail-on error

# Effect/purity pass: call-graph cache-soundness, worker-hermeticity and
# bench-determinism contracts over the package (see docs/CHECKING.md).
check-effects:
	$(PYTHON) -m repro check --effects src/ --fail-on error

# Bounded protocol model-checking smoke (~7 s, ~240k states): the CI gate.
check-model:
	$(PYTHON) -m repro check --model --retransmits 1

# Full default bounds (~25 s, ~750k states): the nightly/manual target.
check-model-full:
	$(PYTHON) -m repro check --model

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_BENCH_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

# CI perf gate: kernel events/sec, the batched-vs-unbatched cohort A/B
# and the callback-vs-generator process-mode A/B (bit-identity asserted
# on both), and a 2-worker mini-sweep; then fail on a >20% throughput
# regression vs benchmarks/baselines/, a detector or sanitizer overhead
# ceiling, a bit-identity mismatch, or a committed process-mode speedup
# below its 1.5x floor (thresholds in benchmarks/baselines/thresholds.json).
bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_kernel_events.py --benchmark-only
	$(PYTHON) -m pytest benchmarks/bench_kernel_batched.py --benchmark-only
	$(PYTHON) -m pytest benchmarks/bench_process_modes.py --benchmark-only
	REPRO_BENCH_WORKERS=2 $(PYTHON) -m pytest benchmarks/bench_sweep_parallel.py --benchmark-only
	$(PYTHON) benchmarks/check_regression.py
	$(PYTHON) benchmarks/profile_kernel.py

# cProfile a fig5-shaped callback-mode run: top-20 cumulative hot spots
# on stdout, raw dump in benchmarks/results/PROFILE_kernel.pstats
# (try `$(PYTHON) benchmarks/profile_kernel.py --mode generator` to diff
# the reference path).
profile:
	$(PYTHON) benchmarks/profile_kernel.py

tables:
	$(PYTHON) -m repro table1
	$(PYTHON) -m repro table2
	$(PYTHON) -m repro table3
	$(PYTHON) -m repro table4

figures:
	$(PYTHON) -m repro fig3
	$(PYTHON) -m repro fig4
	$(PYTHON) -m repro fig5
	$(PYTHON) -m repro fig6

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/video_server.py
	$(PYTHON) examples/failure_recovery.py
	$(PYTHON) examples/record_store.py
	$(PYTHON) examples/tape_archive.py
	$(PYTHON) examples/scaling_study.py

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +

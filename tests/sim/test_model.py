"""The §5 token-ring simulation model."""

import dataclasses

import pytest

from repro.sim import SimConfig, SwiftSimModel, run_once
from repro.simdisk import DISK_CATALOG

KB = 1 << 10
MB = 1 << 20


def quick_config(**overrides):
    defaults = dict(num_disks=8, transfer_unit=32 * KB, request_size=1 * MB,
                    arrival_rate=4.0, num_requests=120, warmup_requests=12,
                    seed=2)
    defaults.update(overrides)
    return SimConfig(**defaults)


def test_config_validation():
    with pytest.raises(ValueError):
        quick_config(num_disks=0)
    with pytest.raises(ValueError):
        quick_config(arrival_rate=0)
    with pytest.raises(ValueError):
        quick_config(read_fraction=1.5)
    with pytest.raises(ValueError):
        quick_config(num_requests=5, warmup_requests=5)


def test_total_blocks_ceiling():
    config = quick_config(request_size=100 * KB, transfer_unit=32 * KB)
    assert config.total_blocks == 4


def test_blocks_per_agent_balanced():
    config = quick_config(num_disks=8, request_size=1 * MB,
                          transfer_unit=32 * KB)
    counts = config.blocks_per_agent()
    assert sum(counts) == 32
    assert max(counts) - min(counts) <= 1


def test_blocks_per_agent_rotation():
    config = quick_config(num_disks=8, request_size=64 * KB,
                          transfer_unit=32 * KB)
    assert config.blocks_per_agent(0) == [1, 1, 0, 0, 0, 0, 0, 0]
    assert config.blocks_per_agent(6) == [0, 0, 0, 0, 0, 0, 1, 1]
    assert config.blocks_per_agent(7) == [1, 0, 0, 0, 0, 0, 0, 1]


def test_run_completes_requested_measurements():
    result = run_once(quick_config())
    assert result.completed >= 120
    assert result.mean_completion_s > 0
    assert result.duration_s > 0


def test_same_seed_reproducible():
    a = run_once(quick_config())
    b = run_once(quick_config())
    assert a.mean_completion_s == b.mean_completion_s
    assert a.client_data_rate == b.client_data_rate


def test_different_seed_differs():
    a = run_once(quick_config(seed=2))
    b = run_once(quick_config(seed=3))
    assert a.mean_completion_s != b.mean_completion_s


def test_32kb_block_needs_about_37ms():
    # §5.2: "transferring 32 kilobytes required about 37 milliseconds on
    # the average" — so an unloaded 32-disk system completes a 1 MB
    # request in roughly one block time plus network.
    result = run_once(quick_config(num_disks=32, arrival_rate=0.5))
    assert 0.037 < result.mean_completion_s < 0.10


def test_completion_time_rises_with_load():
    light = run_once(quick_config(arrival_rate=2.0))
    heavy = run_once(quick_config(arrival_rate=12.0))
    assert heavy.mean_completion_s > light.mean_completion_s


def test_more_disks_cut_completion_time():
    few = run_once(quick_config(num_disks=4, arrival_rate=2.0))
    many = run_once(quick_config(num_disks=16, arrival_rate=2.0))
    assert many.mean_completion_s < few.mean_completion_s


def test_larger_unit_faster_transfer():
    # §5.2: "the data-rate is almost linearly related ... to the size of
    # the transfer unit" because seek+rotation dominate small blocks.
    small = run_once(quick_config(transfer_unit=4 * KB, arrival_rate=1.0))
    large = run_once(quick_config(transfer_unit=32 * KB, arrival_rate=1.0))
    assert large.mean_completion_s < small.mean_completion_s / 3


def test_ring_never_the_bottleneck():
    # §5: "no more than 22% of the network capacity was ever used."
    result = run_once(quick_config(num_disks=32, arrival_rate=20.0))
    assert result.ring_utilization < 0.25


def test_saturated_run_terminates():
    result = run_once(quick_config(num_disks=1, transfer_unit=4 * KB,
                                   arrival_rate=50.0, num_requests=60,
                                   warmup_requests=6))
    assert result.duration_s > 0
    assert not result.sustainable


def test_write_only_marks_disk_busy():
    config = quick_config(read_fraction=0.0, num_requests=40,
                          warmup_requests=4)
    result = run_once(config)
    assert result.mean_disk_utilization > 0


def test_figure4_disk_uses_slower_transfer():
    assert DISK_CATALOG["Fujitsu M2372K (1.5MB/s)"].transfer_rate == 1.5e6

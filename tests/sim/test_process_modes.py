"""Process execution modes: the callback fast path is an execution
detail, not a model change.

``SwiftSimModel(process_mode="callback")`` (the default) runs the
per-request hot loops as slotted state machines with quiet releases,
inline joins, pooled timeouts and — when no monitor forbids it —
event-span coalescing of the deterministic disk chains.
``process_mode="generator"`` is the yield-based reference.  These tests
pin the two contracts docs/ARCHITECTURE.md states:

* **bit identity** — every SimResult field is equal between modes, for
  read-heavy, write-heavy, real-time and reference-scheduler shapes;
* **monitor-gated fallback** — with any monitor attached (HB detector,
  sanitizers, conservation ledger, schedule tracing) the coalesced
  paths expand to the full reference event sequence, the monitors stay
  green, and the result is *still* bit-identical.
"""

import dataclasses

import pytest

from repro.check import (
    alias_sanitize,
    assert_schedule_invariant,
    conserve,
    detect_races,
    sanitize,
)
from repro.sim.model import SwiftSimModel
from repro.sim.workload import SimConfig

# Small fig3/fig5-shaped runs: the paper's read-heavy baseline and the
# write-dominated small-transfer shape that stresses the span-coalesced
# write path.
FIG3_SHAPE = SimConfig(num_requests=60, warmup_requests=6,
                       arrival_rate=8.0)
FIG5_SHAPE = SimConfig(num_requests=80, warmup_requests=8,
                       arrival_rate=60.0, read_fraction=0.2,
                       transfer_unit=4096, request_size=1 << 16)
REALTIME_SHAPE = dataclasses.replace(
    FIG3_SHAPE, disk_scheduling="edf", deadline_s=0.5,
    realtime_fraction=0.25)

SHAPES = [FIG3_SHAPE, FIG5_SHAPE, REALTIME_SHAPE]
SHAPE_IDS = ["fig3", "fig5", "realtime"]


def _run(config, process_mode, cohort_dispatch=True):
    return SwiftSimModel(config, cohort_dispatch=cohort_dispatch,
                         process_mode=process_mode).run()


@pytest.fixture(params=list(zip(SHAPES, SHAPE_IDS)), ids=SHAPE_IDS)
def shape(request):
    return request.param[0]


def test_mode_must_be_known():
    with pytest.raises(ValueError, match="process_mode"):
        SwiftSimModel(FIG3_SHAPE, process_mode="threads")


def test_callback_matches_generator_bit_identical(shape):
    assert _run(shape, "callback") == _run(shape, "generator")


def test_callback_identical_under_reference_scheduler(shape):
    # cohort_dispatch=False forces the one-heap reference scheduler and
    # (with it) disables span coalescing; the callback machines must
    # expand their chains and still land on the reference result.
    reference = _run(shape, "generator")
    assert _run(shape, "callback", cohort_dispatch=False) == reference


def test_span_coalescing_expands_under_transfer_monitor():
    # A transfer monitor (the conservation ledger's hook) flips
    # span_coalescing off while leaving pooling on: the write path must
    # schedule every per-block event, and nothing else may move.
    reference = _run(FIG5_SHAPE, "generator")
    model = SwiftSimModel(FIG5_SHAPE, process_mode="callback")
    records = []
    model.env.add_transfer_monitor(lambda kind, **info:
                                   records.append(kind))
    assert not model.env.span_coalescing
    assert model.run() == reference


def test_callback_expands_more_events_when_monitored():
    # The coalesced run condenses each deterministic k-block chain into
    # one calendar entry; a monitored run must expand them all again.
    plain = SwiftSimModel(FIG5_SHAPE, process_mode="callback")
    plain_result = plain.run()
    monitored = SwiftSimModel(FIG5_SHAPE, process_mode="callback")
    steps = []
    monitored.env.add_step_monitor(lambda when, event: steps.append(when))
    assert monitored.run() == plain_result
    assert len(steps) > plain.env._eid


def test_hb_detector_green_on_callback_run():
    model = SwiftSimModel(FIG3_SHAPE, process_mode="callback")
    with detect_races(model.env) as detector:
        result = model.run()
    assert detector.races == []
    assert result == _run(FIG3_SHAPE, "generator")


def test_hb_detector_sees_callback_processes():
    # The detector must key segments by the state machines themselves:
    # a callback deployment's accesses may not all collapse into the
    # anonymous "<callback phase>" bucket.
    model = SwiftSimModel(FIG3_SHAPE, process_mode="callback")
    with detect_races(model.env) as detector:
        model.run()
    labels = set(detector._owner_labels.values())
    assert any("Op" in label or "Agent" in label for label in labels), labels


def test_sanitizers_green_on_callback_run():
    model = SwiftSimModel(FIG3_SHAPE, process_mode="callback")
    with sanitize(model.env, model.streams):
        with alias_sanitize(model.env):
            result = model.run()
    assert result == _run(FIG3_SHAPE, "generator")


def test_conservation_ledger_green_on_callback_run():
    model = SwiftSimModel(FIG5_SHAPE, process_mode="callback")
    with conserve(model.env) as ledger:
        result = model.run()
    assert ledger.errors == []
    assert result == _run(FIG5_SHAPE, "generator")


@pytest.mark.parametrize("mode", ["callback", "generator"])
def test_modes_are_schedule_invariant(mode):
    # Tie-break shuffles (which also force span expansion) must not
    # move a single metric in either mode — the perturbation harness is
    # what licenses the fast path's same-timestamp micro-reorderings.
    def scenario(tie_break_seed, trace):
        config = dataclasses.replace(FIG3_SHAPE, num_requests=30,
                                     warmup_requests=3,
                                     tie_break_seed=tie_break_seed)
        model = SwiftSimModel(config, process_mode=mode)
        trace.attach(model.env)
        metrics = dataclasses.asdict(model.run())
        metrics.pop("config")
        return metrics

    report = assert_schedule_invariant(scenario, permutations=4)
    assert report.invariant

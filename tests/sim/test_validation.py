"""The simulator must agree with closed-form arithmetic at light load."""

import dataclasses

import pytest

from repro.sim import SimConfig, run_once
from repro.sim.validation import (
    disk_utilization_estimate,
    mean_block_service_s,
    offered_load_fraction,
    zero_load_read_response_s,
)

KB = 1 << 10
MB = 1 << 20


def base_config(**overrides):
    defaults = dict(num_disks=32, transfer_unit=32 * KB, request_size=1 * MB,
                    arrival_rate=0.5, num_requests=150, warmup_requests=15,
                    read_fraction=1.0, seed=12)
    defaults.update(overrides)
    return SimConfig(**defaults)


def test_mean_block_service_is_caption_arithmetic():
    # "transferring 32 kilobytes required about 37 milliseconds"
    config = base_config()
    assert mean_block_service_s(config) == pytest.approx(0.0374, abs=0.0005)


def test_zero_load_response_matches_simulation():
    config = base_config()
    predicted = zero_load_read_response_s(config)
    measured = run_once(config).mean_completion_s
    assert measured == pytest.approx(predicted, rel=0.25)


def test_zero_load_response_scales_with_blocks_per_disk():
    few_disks = base_config(num_disks=4)
    many_disks = base_config(num_disks=32)
    # 1 MB / 32 KB = 32 blocks: 8 per disk vs 1 per disk.
    ratio = (zero_load_read_response_s(few_disks)
             / zero_load_read_response_s(many_disks))
    assert 4 < ratio < 8.5


def test_disk_utilization_matches_flow_balance():
    config = base_config(arrival_rate=8.0, read_fraction=1.0,
                         num_requests=300, warmup_requests=30)
    predicted = disk_utilization_estimate(config)
    measured = run_once(config).mean_disk_utilization
    assert 0.1 < predicted < 0.7  # below saturation: the estimate is valid
    assert measured == pytest.approx(predicted, rel=0.25)


def test_overload_detected_by_flow_balance():
    config = base_config(num_disks=4, arrival_rate=10.0)
    assert disk_utilization_estimate(config) > 1.0
    result = run_once(config)
    assert not result.sustainable


def test_offered_ring_load_matches_paper_claim():
    # §5: "no more than 22% of the network capacity was ever used."
    config = base_config(arrival_rate=22.0)
    predicted = offered_load_fraction(config)
    assert predicted < 0.22
    result = run_once(dataclasses.replace(config, arrival_rate=15.0,
                                          read_fraction=0.8))
    assert result.ring_utilization < 0.22

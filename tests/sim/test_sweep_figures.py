"""Sweeps and figure series (reduced sizes for test speed)."""

import pytest

from repro.sim import (
    SimConfig,
    figure3_series,
    figure4_series,
    figure5_series,
    find_max_sustainable,
    load_sweep,
)

KB = 1 << 10
MB = 1 << 20


def small_config(**overrides):
    defaults = dict(num_disks=8, transfer_unit=32 * KB, request_size=1 * MB,
                    num_requests=100, warmup_requests=10, seed=4)
    defaults.update(overrides)
    return SimConfig(**defaults)


def test_load_sweep_monotone_response():
    results = load_sweep(small_config(), [2.0, 6.0, 10.0])
    times = [r.mean_completion_s for r in results]
    assert times[0] < times[-1]


def test_find_max_sustainable_is_sustainable():
    result = find_max_sustainable(small_config(), iterations=6)
    assert result.sustainable
    assert result.client_data_rate > 0


def test_find_max_sustainable_validation():
    with pytest.raises(ValueError):
        find_max_sustainable(small_config(), rate_low=0)
    with pytest.raises(ValueError):
        find_max_sustainable(small_config(), rate_low=5, rate_high=5)


def test_max_sustainable_grows_with_disks():
    few = find_max_sustainable(small_config(num_disks=4), iterations=6)
    many = find_max_sustainable(small_config(num_disks=16), iterations=6)
    # §5.2: "the rate of requests that are serviceable increased almost
    # linearly in the number of disks."
    assert many.client_data_rate > 2.5 * few.client_data_rate


def test_max_sustainable_grows_with_unit():
    small = find_max_sustainable(small_config(transfer_unit=4 * KB),
                                 iterations=6)
    large = find_max_sustainable(small_config(transfer_unit=32 * KB),
                                 iterations=6)
    # §5.2: "The increase in effective data-rate is almost linear in the
    # size of the transfer unit" (4 KB -> 32 KB is ~6x in the paper).
    assert large.client_data_rate > 3 * small.client_data_rate


def test_figure3_series_structure():
    points = figure3_series(rates=(2.0, 6.0), disk_counts=(4, 8),
                            block_sizes=(32 * KB,), num_requests=60)
    assert len(points) == 4
    series = {p.series for p in points}
    assert series == {"32KB blocks, 4 disks", "32KB blocks, 8 disks"}
    for point in points:
        assert point.y > 0  # milliseconds


def test_figure4_series_structure():
    points = figure4_series(rates=(2.0,), disk_counts=(2, 8),
                            num_requests=60)
    assert {p.series for p in points} == {"2 disks", "8 disks"}
    two = next(p for p in points if p.series == "2 disks")
    eight = next(p for p in points if p.series == "8 disks")
    assert eight.y < two.y


def test_figure5_series_small():
    points = figure5_series(disk_counts=(2, 8),
                            disk_names=("Fujitsu M2372K",),
                            num_requests=80, iterations=5)
    assert len(points) == 2
    assert points[1].y > points[0].y  # more disks, more data-rate

"""Warm-started sweeps must reproduce cold-built runs byte for byte.

``SwiftSimModel.warm_reset`` rewinds a built deployment in place —
engine calendar, resource queues, utilization windows, random streams,
counters — instead of re-constructing the object graph for every grid
point.  These tests pin the contract: a warm-started run is
indistinguishable from a cold one, for every field of the result, even
after a saturated run that hit the horizon guard and left suspended
processes behind (the case that forces warm_reset to finalize orphaned
generators deterministically).
"""

import dataclasses

import pytest

from repro.sim.cache import RUN_ONLY_FIELDS, deployment_key
from repro.sim.model import SwiftSimModel
from repro.sim.sweep import find_max_sustainable, load_sweep
from repro.sim.trace import TraceRecord
from repro.sim.workload import SimConfig

BASE = SimConfig(num_requests=24, warmup_requests=4)


def test_warm_sweep_matches_cold_sweep():
    rates = [2.0, 4.0, 8.0, 16.0]
    cold = load_sweep(BASE, rates)
    warm = load_sweep(BASE, rates, warm_start=True)
    assert warm == cold


def test_warm_find_max_matches_cold():
    cold = find_max_sustainable(BASE, iterations=3)
    warm = find_max_sustainable(BASE, iterations=3, warm_start=True)
    assert warm == cold


def test_saturated_then_light_matches_cold():
    # A rate of 500/s saturates the fleet, so the first run stops at the
    # horizon guard with requests still in flight; the light run that
    # follows reuses the same components.  Regression pin for the
    # orphaned-generator finalization in warm_reset: without it, the
    # leftover processes' ``finally`` clauses fire mid-next-run at
    # GC-determined moments and skew the utilization accounting.
    rates = [500.0, 2.0]
    cold = load_sweep(BASE, rates)
    warm = load_sweep(BASE, rates, warm_start=True)
    assert warm == cold


def test_repeated_warm_resets_stay_identical():
    config = dataclasses.replace(BASE, arrival_rate=6.0)
    reference = SwiftSimModel(config).run()
    model = SwiftSimModel(config)
    for _ in range(3):
        assert model.run() == reference
        model.warm_reset(config)
    assert model.run() == reference


def test_warm_callback_deployment_matches_cold_and_generator():
    # Callback-mode state machines hold pooled timeouts and token grants
    # at horizon stop; warm_reset must rewind all of it.  The warm rerun
    # has to match both its own cold build and the generator reference.
    config = dataclasses.replace(BASE, arrival_rate=6.0)
    reference = SwiftSimModel(config, process_mode="generator").run()
    cold = SwiftSimModel(config, process_mode="callback").run()
    assert cold == reference
    model = SwiftSimModel(config, process_mode="callback")
    for _ in range(3):
        assert model.run() == reference
        model.warm_reset(config)
    assert model.run() == reference


def test_warm_saturated_callback_sweep_matches_cold():
    # The orphaned-process case under the callback fast path: a
    # saturated run stops at the horizon guard with state machines still
    # holding spindles/CPUs (token grants, no request objects), then a
    # light run reuses the same deployment.
    rates = [500.0, 2.0]
    def sweep(warm):
        results = []
        model = None
        for rate in rates:
            config = dataclasses.replace(BASE, arrival_rate=rate)
            if warm and model is not None:
                model.warm_reset(config)
            else:
                model = SwiftSimModel(config, process_mode="callback")
            results.append(model.run())
        return results
    assert sweep(warm=True) == sweep(warm=False)


def test_warm_reset_returns_same_object():
    model = SwiftSimModel(BASE)
    model.run()
    assert model.warm_reset(BASE) is model


def test_deployment_key_ignores_run_only_fields():
    key = deployment_key(BASE, version="v")
    for field, value in [("arrival_rate", 99.0), ("read_fraction", 0.5),
                        ("num_requests", 1000), ("warmup_requests", 10),
                        ("transfer_unit", 4096), ("request_size", 1 << 16),
                        ("tie_break_seed", 7), ("disk_scheduling", "edf"),
                        ("deadline_s", 1.0), ("realtime_fraction", 0.25)]:
        changed = dataclasses.replace(BASE, **{field: value})
        assert deployment_key(changed, version="v") == key, field


def test_deployment_key_tracks_deployment_fields():
    key = deployment_key(BASE, version="v")
    for field, value in [("num_disks", 4), ("seed", 1), ("num_clients", 2),
                        ("ring_bits_per_second", 1e8), ("host_mips", 25.0)]:
        changed = dataclasses.replace(BASE, **{field: value})
        assert deployment_key(changed, version="v") != key, field


def test_run_only_fields_are_real_config_fields():
    names = {f.name for f in dataclasses.fields(SimConfig)}
    assert RUN_ONLY_FIELDS <= names


def test_warm_reset_rejects_trace_replays():
    trace = [TraceRecord(time_s=0.0, is_read=True)]
    model = SwiftSimModel(BASE, trace=trace)
    with pytest.raises(RuntimeError, match="trace"):
        model.warm_reset(BASE)


def test_warm_reset_reapplies_tie_break_seed():
    model = SwiftSimModel(BASE)
    model.run()
    perturbed = dataclasses.replace(BASE, tie_break_seed=3)
    model.warm_reset(perturbed)
    assert model.env.tie_break_seed == 3
    model.warm_reset(BASE)
    assert model.env.tie_break_seed is None


def test_host_reset_refuses_live_interfaces():
    # Transmitter processes die with the old engine run, so a Host wired
    # to a Medium cannot be warm-started; the §5 model keeps its hosts
    # interface-free and drives the ring through explicit sends.
    from repro.des import Environment
    from repro.simnet.host import Host
    from repro.simnet.medium import Medium

    env = Environment()
    host = Host(env, "h")
    host.attach(Medium(env, "wire"))
    with pytest.raises(RuntimeError, match="interface"):
        host.reset()


def test_cohort_dispatch_off_is_bit_identical():
    # The engine's one-heap reference scheduler and the cohort fast path
    # must agree on every result field (the bench_kernel_batched A/B).
    cold = SwiftSimModel(BASE).run()
    reference = SwiftSimModel(BASE, cohort_dispatch=False).run()
    assert cold == reference

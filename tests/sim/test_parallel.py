"""The parallel sweep runner and result cache.

Two contracts:

* **bit-identity** — fanning runs out over worker processes (or replaying
  them from the cache) yields results equal, field for field, to the
  serial loop; and
* **key discipline** — cache keys are stable across processes for the
  same (config, code) and change whenever either input changes.
"""

import dataclasses

import pytest

from repro.sim import (
    ResultCache,
    SimConfig,
    config_key,
    find_max_sustainable,
    find_max_sustainable_many,
    load_sweep,
    parallel_load_sweep,
    run_many,
)
from repro.sim.cache import result_from_jsonable, result_to_jsonable


def _small(seed=0, **overrides):
    parameters = dict(num_disks=2, num_requests=30, warmup_requests=3,
                      request_size=64 * 1024, transfer_unit=32 * 1024,
                      num_clients=2, seed=seed)
    parameters.update(overrides)
    return SimConfig(**parameters)


RATES = (2.0, 5.0, 9.0)


# -- bit-identity -----------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 42])
def test_parallel_sweep_bit_identical_to_serial(seed):
    base = _small(seed=seed)
    serial = load_sweep(base, RATES)
    parallel = load_sweep(base, RATES, workers=2)
    assert parallel == serial  # frozen dataclasses: field-for-field equality


def test_run_many_preserves_input_order():
    configs = [_small(seed=s, arrival_rate=r)
               for s in (0, 1) for r in (3.0, 6.0)]
    results = run_many(configs, workers=2)
    assert [r.config for r in results] == configs


def test_parallel_load_sweep_sets_rates_in_order():
    results = parallel_load_sweep(_small(), RATES, workers=2)
    assert [r.config.arrival_rate for r in results] == list(RATES)


def test_find_max_sustainable_many_matches_sequential():
    bases = [_small(seed=0), _small(seed=1)]
    fanned = find_max_sustainable_many(bases, iterations=3, workers=2)
    sequential = [find_max_sustainable(base, iterations=3)
                  for base in bases]
    assert fanned == sequential


# -- cache round-trip ---------------------------------------------------------------


def test_cache_roundtrip_is_bit_identical(tmp_path):
    base = _small()
    cache = ResultCache(tmp_path)
    first = load_sweep(base, RATES, cache=cache)
    assert cache.misses == len(RATES) and cache.hits == 0
    second = load_sweep(base, RATES, cache=cache)
    assert cache.hits == len(RATES)
    assert first == second == load_sweep(base, RATES)


def test_result_json_roundtrip_exact():
    result = load_sweep(_small(), [4.0])[0]
    assert result_from_jsonable(result_to_jsonable(result)) == result


def test_cached_bisection_replays_probes(tmp_path):
    base = _small()
    cache = ResultCache(tmp_path)
    cold = find_max_sustainable(base, iterations=3, cache=cache)
    probes = cache.misses
    warm = find_max_sustainable(base, iterations=3, cache=cache)
    assert warm == cold
    assert cache.hits == probes, "warm bisection should replay every probe"


def test_corrupt_cache_entry_is_a_miss_not_an_error(tmp_path):
    base = _small()
    cache = ResultCache(tmp_path)
    result = load_sweep(base, [4.0], cache=cache)[0]
    entry = next(tmp_path.glob("*.json"))
    entry.write_text("{ torn")
    again = load_sweep(base, [4.0], cache=ResultCache(tmp_path))[0]
    assert again == result


# -- key discipline -----------------------------------------------------------------


def test_config_key_is_stable():
    key = config_key(_small(), version="v")
    assert key == config_key(_small(), version="v")
    assert len(key) == 64 and int(key, 16) >= 0  # hex sha256


def test_config_key_covers_every_field():
    base_key = config_key(_small(), version="v")
    for overrides in (dict(seed=1), dict(arrival_rate=9.0),
                      dict(num_disks=4), dict(tie_break_seed=3),
                      dict(read_fraction=0.5),
                      dict(disk_scheduling="edf")):
        assert config_key(_small(**overrides), version="v") != base_key, \
            f"key must change under {overrides}"


def test_config_key_invalidated_by_code_version():
    config = _small()
    assert config_key(config, version="a") != config_key(config, version="b")


def test_default_code_version_is_memoised_and_hexadecimal():
    from repro.sim import code_version
    first = code_version()
    assert first == code_version()
    assert len(first) == 64 and int(first, 16) >= 0


def test_storage_factory_bypasses_cache(tmp_path):
    """A storage_factory changes the model invisibly to the key, so the
    cached path must not serve (or store) such runs."""
    from repro.simdisk import Disk

    base = _small()
    cache = ResultCache(tmp_path)
    load_sweep(base, [4.0], cache=cache)
    assert len(cache) == 1

    def factory(env, index, streams):
        return Disk(env, base.disk, stream=streams.stream(f"disk/{index}"))

    load_sweep(base, [4.0], storage_factory=factory, cache=cache)
    assert len(cache) == 1, "factory runs must never be cached"

"""§6.1.2 extension: EDF disk scheduling for data-rate guarantees."""

import pytest

from repro.sim import SimConfig, run_once

KB = 1 << 10
MB = 1 << 20


def rt_config(scheduling, **overrides):
    defaults = dict(num_disks=8, transfer_unit=32 * KB, request_size=1 * MB,
                    arrival_rate=3.0, num_requests=250, warmup_requests=25,
                    seed=6, disk_scheduling=scheduling, deadline_s=0.45,
                    realtime_fraction=0.3)
    defaults.update(overrides)
    return SimConfig(**defaults)


def test_scheduling_validation():
    with pytest.raises(ValueError):
        rt_config("lifo")
    with pytest.raises(ValueError):
        rt_config("edf", deadline_s=0.0)


def test_miss_rate_zero_without_deadline():
    result = run_once(rt_config("fifo", deadline_s=None))
    assert result.deadline_miss_rate == 0.0
    assert result.deadline_total == 0


def test_deadlines_counted_for_realtime_class_only():
    result = run_once(rt_config("fifo"))
    # ~30% of measured requests are the real-time class.
    assert 0 < result.deadline_total < result.completed
    assert 0.0 <= result.deadline_miss_rate <= 1.0


def test_all_requests_realtime_when_fraction_one():
    result = run_once(rt_config("fifo", realtime_fraction=1.0))
    assert result.deadline_total == result.completed


def test_class_mix_validation():
    with pytest.raises(ValueError):
        rt_config("edf", realtime_fraction=1.5)
    with pytest.raises(ValueError):
        rt_config("edf", background_deadline_factor=0.5)


def test_light_load_meets_deadlines_either_way():
    for scheduling in ("fifo", "edf"):
        result = run_once(rt_config(scheduling, arrival_rate=1.0,
                                    num_requests=100, warmup_requests=10))
        assert result.deadline_miss_rate < 0.05


def test_edf_does_not_hurt_mean_completion_much():
    fifo = run_once(rt_config("fifo"))
    edf = run_once(rt_config("edf"))
    assert edf.mean_completion_s < 1.5 * fifo.mean_completion_s


def test_edf_reduces_misses_under_stress():
    # Near the sustainable limit, deadline-aware ordering must protect the
    # real-time class much better than FIFO.
    fifo = run_once(rt_config("fifo", arrival_rate=3.4))
    edf = run_once(rt_config("edf", arrival_rate=3.4))
    assert fifo.deadline_miss_rate > 0.05  # the stress is real
    assert edf.deadline_miss_rate < 0.6 * fifo.deadline_miss_rate


def test_uniform_deadlines_make_edf_like_fifo():
    # With one class, EDF degenerates to arrival order — practically FIFO
    # (not bitwise: FIFO orders by queue-join time, EDF by arrival time,
    # which can differ when network/CPU stages reorder requests slightly).
    fifo = run_once(rt_config("fifo", realtime_fraction=1.0))
    edf = run_once(rt_config("edf", realtime_fraction=1.0))
    assert edf.mean_completion_s == pytest.approx(fifo.mean_completion_s,
                                                  rel=0.10)
    assert edf.deadline_miss_rate == pytest.approx(fifo.deadline_miss_rate,
                                                   abs=0.05)

"""Trace-driven workloads: synthesis and replay (§6.1.1 variable loads)."""

import pytest

from repro.sim import (
    SimConfig,
    TraceRecord,
    run_once,
    synthesize_bursty_trace,
    synthesize_poisson_trace,
    trace_mean_rate,
)

KB = 1 << 10
MB = 1 << 20


def test_record_validation():
    with pytest.raises(ValueError):
        TraceRecord(time_s=-1.0, is_read=True)


def test_poisson_trace_rate_and_mix():
    trace = synthesize_poisson_trace(rate=10.0, count=5000, seed=2)
    assert trace_mean_rate(trace) == pytest.approx(10.0, rel=0.1)
    reads = sum(1 for r in trace if r.is_read)
    assert reads / len(trace) == pytest.approx(0.8, abs=0.05)


def test_poisson_trace_times_monotone():
    trace = synthesize_poisson_trace(rate=5.0, count=100, seed=3)
    times = [r.time_s for r in trace]
    assert times == sorted(times)


def test_bursty_trace_keeps_mean_rate():
    trace = synthesize_bursty_trace(mean_rate=10.0, count=6000,
                                    burstiness=3.5, seed=4)
    assert trace_mean_rate(trace) == pytest.approx(10.0, rel=0.15)


def test_bursty_trace_is_actually_bursty():
    """Interarrival variability must exceed Poisson's (CV > 1)."""
    import statistics

    def squared_cv(trace):
        gaps = [b.time_s - a.time_s for a, b in zip(trace, trace[1:])]
        return statistics.pvariance(gaps) / statistics.fmean(gaps) ** 2

    poisson = synthesize_poisson_trace(rate=10.0, count=6000, seed=5)
    bursty = synthesize_bursty_trace(mean_rate=10.0, count=6000,
                                     burstiness=3.5, seed=5)
    assert squared_cv(poisson) == pytest.approx(1.0, rel=0.2)
    assert squared_cv(bursty) > 1.5 * squared_cv(poisson)


def test_synthesis_validation():
    with pytest.raises(ValueError):
        synthesize_poisson_trace(rate=0, count=10)
    with pytest.raises(ValueError):
        synthesize_bursty_trace(mean_rate=1.0, count=0)
    with pytest.raises(ValueError):
        synthesize_bursty_trace(mean_rate=1.0, count=10, burstiness=0.5)
    with pytest.raises(ValueError):
        synthesize_bursty_trace(mean_rate=1.0, count=10, busy_fraction=0.0)
    with pytest.raises(ValueError):
        trace_mean_rate([TraceRecord(0.0, True)])


def sim_config(**overrides):
    defaults = dict(num_disks=16, transfer_unit=32 * KB, request_size=1 * MB,
                    arrival_rate=5.0, num_requests=200, warmup_requests=20,
                    seed=6)
    defaults.update(overrides)
    return SimConfig(**defaults)


def test_trace_replay_runs_to_completion():
    trace = synthesize_poisson_trace(rate=5.0, count=300, seed=7)
    result = run_once(sim_config(), trace=trace)
    assert result.completed >= 200
    assert result.p99_completion_s >= result.mean_completion_s


def test_trace_replay_matches_internal_poisson_roughly():
    internal = run_once(sim_config(seed=8))
    trace = synthesize_poisson_trace(rate=5.0, count=300, seed=8)
    replayed = run_once(sim_config(seed=8), trace=trace)
    assert replayed.mean_completion_s == pytest.approx(
        internal.mean_completion_s, rel=0.3)


def test_bursty_load_hurts_tail_latency():
    """§6.1.1's concern, demonstrated: same mean load, worse service."""
    poisson = synthesize_poisson_trace(rate=8.0, count=400, seed=9)
    bursty = synthesize_bursty_trace(mean_rate=8.0, count=400,
                                     burstiness=3.5, seed=9)
    smooth = run_once(sim_config(arrival_rate=8.0, num_requests=300,
                                 warmup_requests=30), trace=poisson)
    spiky = run_once(sim_config(arrival_rate=8.0, num_requests=300,
                                warmup_requests=30), trace=bursty)
    assert spiky.mean_completion_s > smooth.mean_completion_s
    assert spiky.p99_completion_s > 1.5 * smooth.p99_completion_s

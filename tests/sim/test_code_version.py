"""The code digest that keys the result cache.

``code_version`` is the soundness anchor of the cache: if any tracked
source byte can change without changing the digest, stale results
survive a model change.  These tests pin the three properties the cache
contract needs — sensitivity to every byte, independence from
enumeration order and checkout path, and per-process memo repopulation
in spawned workers (the blessed global write).
"""

import multiprocessing
from pathlib import Path

from repro.sim import cache as cache_module
from repro.sim.cache import (
    _digest_sources,
    cache_schema,
    code_version,
    config_key,
)
from repro.sim.workload import SimConfig


def _scratch_tree(root: Path, files: dict) -> Path:
    tree = root / "pkg"
    for name, text in files.items():
        path = tree / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return tree

FILES = {
    "model.py": "RATE = 1.0\n",
    "des/engine.py": "def step():\n    return 1\n",
    "des/__init__.py": "",
}


# -- byte sensitivity ---------------------------------------------------------


def test_digest_changes_when_any_byte_changes(tmp_path):
    base = code_version(root=_scratch_tree(tmp_path / "a", FILES))
    for name in FILES:
        mutated = dict(FILES)
        mutated[name] += "#x\n"
        changed = code_version(root=_scratch_tree(tmp_path / name, mutated))
        assert changed != base, f"edit to {name} must invalidate the digest"


def test_digest_changes_when_a_file_is_added_or_removed(tmp_path):
    base = code_version(root=_scratch_tree(tmp_path / "a", FILES))
    grown = dict(FILES, **{"extra.py": ""})
    assert code_version(root=_scratch_tree(tmp_path / "b", grown)) != base
    shrunk = {k: v for k, v in FILES.items() if k != "model.py"}
    assert code_version(root=_scratch_tree(tmp_path / "c", shrunk)) != base


def test_digest_sees_renames_not_just_contents(tmp_path):
    # Same bytes under a different relative name is a different tree.
    base = code_version(root=_scratch_tree(tmp_path / "a", FILES))
    renamed = {("model2.py" if k == "model.py" else k): v
               for k, v in FILES.items()}
    assert code_version(root=_scratch_tree(tmp_path / "b", renamed)) != base


# -- order and path independence ----------------------------------------------


def test_digest_is_independent_of_creation_order(tmp_path):
    forward = _scratch_tree(tmp_path / "fwd", FILES)
    reversed_tree = _scratch_tree(
        tmp_path / "rev", dict(reversed(list(FILES.items()))))
    assert code_version(root=forward) == code_version(root=reversed_tree)


def test_digest_is_independent_of_checkout_path(tmp_path):
    shallow = _scratch_tree(tmp_path / "a", FILES)
    deep = _scratch_tree(tmp_path / "some" / "other" / "prefix", FILES)
    assert code_version(root=shallow) == code_version(root=deep)


def test_digest_sources_is_order_sensitive_so_callers_must_sort(tmp_path):
    # The helper hashes in the order given; the order-independence of
    # code_version comes from its sorted() call, not from the digest.
    tree = _scratch_tree(tmp_path, FILES)
    sources = sorted(tree.rglob("*.py"))
    assert (_digest_sources(tree, sources)
            != _digest_sources(tree, list(reversed(sources))))


def test_package_digest_is_memoised_and_stable():
    cache_module._code_version_cache.clear()
    first = code_version()
    assert cache_module._code_version_cache["digest"] == first
    assert code_version() == first
    assert len(first) == 64  # sha256 hex


def test_root_override_does_not_touch_the_memo(tmp_path):
    cache_module._code_version_cache.clear()
    code_version(root=_scratch_tree(tmp_path, FILES))
    assert cache_module._code_version_cache == {}


# -- spawned workers -----------------------------------------------------------


def _spawn_probe(_):
    """Worker body: report whether the memo started empty, then the
    digest it computed.  Must be module-level so spawn can pickle it."""
    started_empty = not cache_module._code_version_cache
    return started_empty, code_version()


def test_memo_repopulates_identically_in_spawned_workers():
    # The declared exception to worker hermeticity: every spawned process
    # starts with an empty memo and recomputes the *identical* digest, so
    # the global write cannot change any result.
    parent = code_version()
    context = multiprocessing.get_context("spawn")
    with context.Pool(2) as pool:
        reports = pool.map(_spawn_probe, range(2))
    for started_empty, digest in reports:
        assert started_empty, "spawned worker must not inherit the memo"
        assert digest == parent


# -- the key folds schema and format ------------------------------------------


def test_config_key_changes_with_cache_schema(monkeypatch):
    config = SimConfig(num_disks=1, seed=3)
    base = config_key(config, version="v")
    widened = cache_schema()
    widened["result"] = widened["result"] + ["new_metric"]
    monkeypatch.setattr(cache_module, "cache_schema", lambda: widened)
    assert config_key(config, version="v") != base


def test_config_key_changes_with_cache_format(monkeypatch):
    config = SimConfig(num_disks=1, seed=3)
    base = config_key(config, version="v")
    monkeypatch.setattr(cache_module, "CACHE_FORMAT",
                        cache_module.CACHE_FORMAT + 1)
    assert config_key(config, version="v") != base

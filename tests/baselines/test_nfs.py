"""Table 3 baseline: NFS rates and write-through behaviour."""

import pytest

from repro.baselines import NfsBaseline

MB = 1 << 20


def test_read_band():
    baseline = NfsBaseline(seed=5)
    baseline.prepare_file("f", 3 * MB)
    rate = baseline.measure_read("f", 3 * MB)
    assert 430 <= rate <= 510  # paper: 456-488


def test_write_band():
    baseline = NfsBaseline(seed=5)
    rate = baseline.measure_write("f", 3 * MB)
    assert 100 <= rate <= 120  # paper: 109-112


def test_write_through_hits_server_disk():
    baseline = NfsBaseline(seed=5)
    disk = baseline.server.filesystem.disk
    baseline.measure_write("f", MB)
    # Every 8 KB block forces at least data + metadata disk operations.
    blocks = MB // 8192
    assert disk.blocks_served >= blocks * 3


def test_reads_do_not_write_disk():
    baseline = NfsBaseline(seed=5)
    baseline.prepare_file("f", MB)
    disk = baseline.server.filesystem.disk
    before = disk.blocks_served
    baseline.measure_read("f", MB)
    served = disk.blocks_served - before
    # Reads hit the disk (cold cache) but only about once per block.
    assert MB // 8192 <= served <= MB // 8192 * 2


def test_write_data_lands_exactly():
    baseline = NfsBaseline(seed=5)
    baseline.measure_write("f", 100_000)
    fs = baseline.server.filesystem
    assert fs.file_size("f") == 100_000


def test_nfs_write_much_slower_than_read():
    # The paper's headline asymmetry: write-through makes NFS writes ~4x
    # slower than NFS reads.
    baseline = NfsBaseline(seed=5)
    baseline.prepare_file("f", 3 * MB)
    read_rate = baseline.measure_read("f", 3 * MB)
    writer = NfsBaseline(seed=5)
    write_rate = writer.measure_write("f", 3 * MB)
    assert read_rate > 3.5 * write_rate

"""Table 2 baseline: local SCSI rates must land in the paper's bands."""

import pytest

from repro.baselines import LocalScsiBaseline
from repro.simdisk import ScsiMode

MB = 1 << 20


def test_sync_read_band():
    baseline = LocalScsiBaseline(seed=3)
    baseline.prepare_file("f", 3 * MB)
    rate = baseline.measure_read("f", 3 * MB)
    assert 630 <= rate <= 700  # paper: 654-682


def test_sync_write_band():
    baseline = LocalScsiBaseline(seed=3)
    rate = baseline.measure_write("f", 3 * MB)
    assert 300 <= rate <= 330  # paper: 314-316


def test_async_mode_read_half_speed():
    sync = LocalScsiBaseline(seed=3)
    sync.prepare_file("f", 3 * MB)
    sync_rate = sync.measure_read("f", 3 * MB)
    async_ = LocalScsiBaseline(seed=3, mode=ScsiMode.ASYNCHRONOUS)
    async_.prepare_file("f", 3 * MB)
    async_rate = async_.measure_read("f", 3 * MB)
    assert async_rate == pytest.approx(sync_rate / 2, rel=0.15)


def test_warm_cache_reads_are_much_faster():
    baseline = LocalScsiBaseline(seed=3)
    baseline.prepare_file("f", MB)
    cold = baseline.measure_read("f", MB)
    # No flush this time: everything hits the cache.
    start = baseline.env.now

    def workload():
        yield from baseline.filesystem.read("f", 0, MB)

    baseline._run(workload())
    warm_elapsed = baseline.env.now - start
    assert warm_elapsed * 20 < MB / 1024 / cold


def test_rates_flat_across_sizes():
    r3 = LocalScsiBaseline(seed=3)
    r3.prepare_file("f", 3 * MB)
    r9 = LocalScsiBaseline(seed=3)
    r9.prepare_file("f", 9 * MB)
    assert r9.measure_read("f", 9 * MB) == pytest.approx(
        r3.measure_read("f", 3 * MB), rel=0.05)

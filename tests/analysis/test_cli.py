"""The command-line interface."""

import pytest

from repro.cli import main


def test_demo_roundtrips(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "OK" in out


def test_table_command(capsys, tmp_path):
    csv_path = tmp_path / "t2.csv"
    code = main(["table2", "--samples", "2", "--sizes", "3",
                 "--csv", str(csv_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "vs paper" in out
    assert csv_path.exists()
    assert "operation,mean" in csv_path.read_text()


def test_figure_command(capsys):
    code = main(["fig4", "--requests", "40"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out
    assert "disks" in out


def test_bad_sizes_rejected():
    with pytest.raises(SystemExit):
        main(["table1", "--sizes", "zero"])
    with pytest.raises(SystemExit):
        main(["table1", "--sizes", "0"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["tableX"])


def test_no_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_sensitivity_command(capsys):
    assert main(["sensitivity", "--scale", "1.5"]) == 0
    out = capsys.readouterr().out
    assert "network" in out
    assert "baseline" in out

"""CSV export."""

import csv
import io

from repro.analysis import figure_points_to_csv, table_to_csv, write_csv
from repro.des import SampleSet


def test_table_to_csv_columns():
    rows = {"Read 3 MB": SampleSet([100.0, 102.0, 98.0])}
    text = table_to_csv(rows)
    parsed = list(csv.reader(io.StringIO(text)))
    assert parsed[0] == ["operation", "mean", "stdev", "min", "max",
                        "ci_low", "ci_high", "samples"]
    assert parsed[1][0] == "Read 3 MB"
    assert float(parsed[1][1]) == 100.0
    assert parsed[1][7] == "3"


def test_figure_points_to_csv():
    from repro.sim import SimConfig, run_once, figure4_series
    points = figure4_series(rates=(2.0,), disk_counts=(4,), num_requests=60)
    text = figure_points_to_csv(points)
    parsed = list(csv.reader(io.StringIO(text)))
    assert parsed[0][0] == "series"
    assert parsed[1][0] == "4 disks"
    assert float(parsed[1][2]) > 0


def test_write_csv(tmp_path):
    path = tmp_path / "out.csv"
    write_csv(path, "a,b\n1,2\n")
    assert path.read_text() == "a,b\n1,2\n"

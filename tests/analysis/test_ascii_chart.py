"""ASCII chart rendering."""

import pytest

from repro.analysis import render_chart


def test_render_basic_chart():
    chart = render_chart(
        {"up": [(0, 0), (5, 50), (10, 100)],
         "flat": [(0, 20), (10, 20)]},
        title="demo", x_label="load", y_label="ms")
    assert "demo" in chart
    assert "o = up" in chart
    assert "* = flat" in chart
    assert "load" in chart and "ms" in chart


def test_marks_appear_in_grid():
    chart = render_chart({"s": [(0, 0), (1, 1)]})
    assert "o" in chart


def test_y_max_clips_and_marks():
    chart = render_chart(
        {"s": [(0, 10), (1, 10_000)]},
        y_max=100.0)
    assert "^" in chart  # the clipped point
    assert "100" in chart


def test_empty_series_rejected():
    with pytest.raises(ValueError):
        render_chart({})
    with pytest.raises(ValueError):
        render_chart({"s": []})


def test_tiny_chart_rejected():
    with pytest.raises(ValueError):
        render_chart({"s": [(0, 1)]}, width=4)


def test_degenerate_ranges_handled():
    # Single point: both axes collapse; must not divide by zero.
    chart = render_chart({"s": [(5, 5)]})
    assert "o" in chart


def test_number_formatting_scales():
    chart = render_chart({"s": [(0, 0), (1, 12_000_000)]})
    assert "12M" in chart or "1.2" in chart


def test_many_series_cycle_marks():
    series = {f"s{i}": [(0, i), (1, i + 1)] for i in range(10)}
    chart = render_chart(series)
    for mark in "o*x+":
        assert f"{mark} = " in chart

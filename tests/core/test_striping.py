"""Stripe layout arithmetic, including property-based inverses."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import StripeLayout


def test_constructor_validation():
    with pytest.raises(ValueError):
        StripeLayout(0, 8192)
    with pytest.raises(ValueError):
        StripeLayout(3, 0)


def test_stripe_width():
    assert StripeLayout(3, 8192).stripe_width == 24576


def test_locate_first_stripe():
    layout = StripeLayout(3, 100)
    assert layout.locate(0) == (0, 0)
    assert layout.locate(99) == (0, 99)
    assert layout.locate(100) == (1, 0)
    assert layout.locate(250) == (2, 50)


def test_locate_second_stripe():
    layout = StripeLayout(3, 100)
    assert layout.locate(300) == (0, 100)
    assert layout.locate(499) == (1, 199)


def test_chunks_cover_request_exactly():
    layout = StripeLayout(3, 100)
    chunks = list(layout.chunks(50, 400))
    assert sum(c.length for c in chunks) == 400
    assert chunks[0].logical_offset == 50
    # Consecutive in logical space.
    for before, after in zip(chunks, chunks[1:]):
        assert after.logical_offset == before.logical_offset + before.length


def test_chunks_respect_unit_boundaries():
    layout = StripeLayout(3, 100)
    for chunk in layout.chunks(50, 1000):
        start_unit = chunk.agent_offset // 100
        end_unit = (chunk.agent_offset + chunk.length - 1) // 100
        assert start_unit == end_unit


def test_chunks_zero_length():
    layout = StripeLayout(3, 100)
    assert list(layout.chunks(10, 0)) == []


def test_agent_segments_grouping():
    layout = StripeLayout(3, 100)
    segments = layout.agent_segments(0, 600)
    assert set(segments) == {0, 1, 2}
    for agent, chunks in segments.items():
        assert all(c.agent == agent for c in chunks)
        offsets = [c.agent_offset for c in chunks]
        assert offsets == sorted(offsets)


def test_agent_region_is_contiguous():
    # Each agent's share of one contiguous logical request is contiguous
    # in its local file — the distribution agent relies on this.
    layout = StripeLayout(4, 64)
    for offset in [0, 10, 64, 100, 250]:
        for length in [1, 63, 64, 65, 500, 1024]:
            for chunks in layout.agent_segments(offset, length).values():
                expected = chunks[0].agent_offset
                for chunk in chunks:
                    assert chunk.agent_offset == expected
                    expected += chunk.length


def test_inverse_mapping():
    layout = StripeLayout(3, 100)
    assert layout.logical_offset(0, 0) == 0
    assert layout.logical_offset(1, 0) == 100
    assert layout.logical_offset(2, 50) == 250
    assert layout.logical_offset(0, 100) == 300


def test_inverse_validation():
    layout = StripeLayout(3, 100)
    with pytest.raises(ValueError):
        layout.logical_offset(3, 0)
    with pytest.raises(ValueError):
        layout.logical_offset(0, -1)


def test_agent_lengths_exact_stripes():
    layout = StripeLayout(3, 100)
    assert layout.agent_lengths(600) == [200, 200, 200]


def test_agent_lengths_partial_stripe():
    layout = StripeLayout(3, 100)
    assert layout.agent_lengths(0) == [0, 0, 0]
    assert layout.agent_lengths(50) == [50, 0, 0]
    assert layout.agent_lengths(150) == [100, 50, 0]
    assert layout.agent_lengths(350) == [150, 100, 100]


def test_logical_size_roundtrip():
    layout = StripeLayout(3, 100)
    for total in [0, 1, 99, 100, 101, 299, 300, 301, 12345]:
        assert layout.logical_size(layout.agent_lengths(total)) == total


def test_logical_size_validation():
    layout = StripeLayout(3, 100)
    with pytest.raises(ValueError):
        layout.logical_size([0, 0])
    with pytest.raises(ValueError):
        layout.logical_size([-1, 0, 0])


def test_stripe_and_unit_bounds():
    layout = StripeLayout(3, 100)
    assert layout.stripe_bounds(0) == (0, 300)
    assert layout.stripe_bounds(2) == (600, 900)
    assert layout.unit_bounds(1, 2) == (500, 600)
    assert layout.agent_unit_offset(4) == 400


def test_single_agent_degenerates_to_identity():
    layout = StripeLayout(1, 4096)
    assert layout.locate(123456) == (0, 123456)
    assert layout.logical_offset(0, 123456) == 123456


layouts = st.builds(
    StripeLayout,
    st.integers(min_value=1, max_value=16),
    st.integers(min_value=1, max_value=512),
)


@given(layouts, st.integers(min_value=0, max_value=100_000))
def test_locate_inverse_roundtrip(layout, offset):
    agent, agent_offset = layout.locate(offset)
    assert layout.logical_offset(agent, agent_offset) == offset


@given(layouts, st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=0, max_value=5_000))
@settings(max_examples=60)
def test_chunks_partition_property(layout, offset, length):
    chunks = list(layout.chunks(offset, length))
    assert sum(c.length for c in chunks) == length
    position = offset
    for chunk in chunks:
        assert chunk.logical_offset == position
        agent, agent_offset = layout.locate(position)
        assert (chunk.agent, chunk.agent_offset) == (agent, agent_offset)
        assert chunk.stripe == layout.stripe_of(position)
        position += chunk.length


@given(layouts, st.integers(min_value=0, max_value=200_000))
def test_agent_lengths_sum_property(layout, total):
    lengths = layout.agent_lengths(total)
    assert sum(lengths) == total
    assert layout.logical_size(lengths) == total
    # No agent holds more than one unit over any other.
    assert max(lengths) - min(lengths) <= layout.striping_unit


@given(layouts, st.integers(min_value=0, max_value=50_000),
       st.integers(min_value=1, max_value=5_000))
@settings(max_examples=60)
def test_no_two_chunks_share_agent_bytes(layout, offset, length):
    seen: set[tuple[int, int]] = set()
    for chunk in layout.chunks(offset, length):
        for byte_offset in range(chunk.agent_offset,
                                 chunk.agent_offset + chunk.length):
            key = (chunk.agent, byte_offset)
            assert key not in seen
            seen.add(key)

"""Distribution-agent unit behaviour not covered by the end-to-end tests."""

import pytest

from repro.core import DistributionAgent, build_local_swift
from repro.core.client import SwiftClient
from repro.core.distribution import SwiftUsageError


@pytest.fixture()
def deployment():
    return build_local_swift(num_agents=3)


def make_engine(deployment, **kwargs):
    options = dict(striping_unit=4096, packet_size=4096)
    options.update(kwargs)
    return DistributionAgent(
        deployment.env, deployment.network.host("client"),
        ["agent0", "agent1", "agent2"], "obj", **options)


def run(deployment, gen):
    env = deployment.env
    return env.run(until=env.process(gen))


def test_constructor_validation(deployment):
    host = deployment.network.host("client")
    with pytest.raises(ValueError):
        DistributionAgent(deployment.env, host, [], "obj")
    with pytest.raises(ValueError):
        DistributionAgent(deployment.env, host, ["a", "b"], "obj",
                          parity=True)
    with pytest.raises(ValueError):
        DistributionAgent(deployment.env, host, ["a"], "obj", packet_size=0)


def test_io_before_open_rejected(deployment):
    engine = make_engine(deployment)
    with pytest.raises(SwiftUsageError):
        run(deployment, engine.read(0, 10))
    with pytest.raises(SwiftUsageError):
        run(deployment, engine.write(0, b"x"))


def test_negative_offsets_rejected(deployment):
    engine = make_engine(deployment)
    run(deployment, engine.open(create=True))
    with pytest.raises(ValueError):
        run(deployment, engine.read(-1, 10))
    with pytest.raises(ValueError):
        run(deployment, engine.write(-1, b"x"))


def test_empty_write_is_noop(deployment):
    engine = make_engine(deployment)
    run(deployment, engine.open(create=True))
    assert run(deployment, engine.write(0, b"")) == 0
    assert engine.size == 0


def test_zero_read_returns_empty(deployment):
    engine = make_engine(deployment)
    run(deployment, engine.open(create=True))
    run(deployment, engine.write(0, b"data"))
    assert run(deployment, engine.read(2, 0)) == b""


def test_packets_counted(deployment):
    engine = make_engine(deployment)
    run(deployment, engine.open(create=True))
    run(deployment, engine.write(0, b"z" * 20_000))
    sent_after_write = engine.stats.packets_sent
    # 3 opens + (per agent: WriteRequest + data packets).
    assert sent_after_write >= 3 + 3 + 5
    run(deployment, engine.read(0, 20_000))
    assert engine.stats.packets_received > 0


def test_write_smaller_than_one_unit_hits_one_agent(deployment):
    engine = make_engine(deployment, striping_unit=8192)
    run(deployment, engine.open(create=True))
    run(deployment, engine.write(0, b"small"))
    sizes = [deployment.agent(ch.agent_host).filesystem.file_size("obj")
             if deployment.agent(ch.agent_host).filesystem.exists("obj")
             else 0
             for ch in engine.data_channels]
    assert sizes[0] == 5
    assert sizes[1] == sizes[2] == 0


def test_interpacket_gap_slows_simulated_writes(deployment):
    engine = make_engine(deployment, interpacket_gap_s=0.01)
    env = deployment.env
    run(deployment, engine.open(create=True))
    before = env.now
    run(deployment, engine.write(0, b"q" * 40_960))  # 10 packets
    elapsed = env.now - before
    # Writers run in parallel; the busiest agent gets 4 packets, each
    # followed by the configured gap.
    assert elapsed >= 0.01 * 4 - 1e-9


def test_engine_options_passthrough(deployment):
    client = SwiftClient(deployment.env,
                         deployment.network.host("client"),
                         mediator=deployment.mediator,
                         max_retries=3, read_timeout_s=0.123)
    handle = client.open("obj", "w")
    assert handle.engine.max_retries == 3
    assert handle.engine.read_timeout_s == 0.123
    handle.close()


def test_rebuild_wrong_conditions(deployment):
    engine = make_engine(deployment)
    run(deployment, engine.open(create=True))
    run(deployment, engine.write(0, b"x" * 100))
    from repro.core import AgentFailure
    with pytest.raises(AgentFailure):
        run(deployment, engine.rebuild_agent(0))  # no parity configured

"""Agent-side operation counters."""

import pytest

from repro.core import build_local_swift


@pytest.fixture()
def deployment():
    return build_local_swift(num_agents=3)


def agent_stats(deployment):
    return {name: agent.stats for name, agent in deployment.agents.items()}


def test_opens_counted(deployment):
    client = deployment.client()
    with client.open("a", "w") as f:
        f.write(b"x")
    with client.open("a", "r"):
        pass
    total_opens = sum(s.opens for s in agent_stats(deployment).values())
    assert total_opens == 6  # 3 agents x 2 opens


def test_write_bytes_accounted(deployment):
    client = deployment.client()
    with client.open("obj", "w", striping_unit=4096) as f:
        f.write(b"w" * 30_000)
    stats = agent_stats(deployment)
    assert sum(s.bytes_written for s in stats.values()) == 30_000
    assert sum(s.write_ops_completed for s in stats.values()) == 3


def test_read_bytes_accounted(deployment):
    client = deployment.client()
    with client.open("obj", "w", striping_unit=4096) as f:
        f.write(b"r" * 30_000)
        f.seek(0)
        f.read(30_000)
    stats = agent_stats(deployment)
    assert sum(s.bytes_read for s in stats.values()) == 30_000
    assert sum(s.reads_served for s in stats.values()) >= 3


def test_clean_run_has_no_naks_or_duplicates(deployment):
    client = deployment.client()
    with client.open("obj", "w") as f:
        f.write(b"q" * 100_000)
        f.seek(0)
        f.read(100_000)
    stats = agent_stats(deployment)
    assert sum(s.naks_sent for s in stats.values()) == 0
    assert sum(s.duplicate_packets for s in stats.values()) == 0


def test_lossy_run_produces_recovery_traffic():
    from repro.des import Environment, StreamFactory
    from repro.simdisk import Disk, LocalFileSystem
    from repro.simnet import Network
    from repro.core import DistributionAgent, StorageAgent
    from repro.core.deployment import INSTANT_DISK

    env = Environment()
    net = Network(env, StreamFactory(31))
    net.add_ethernet("lan", loss_probability=0.2)
    client_host = net.add_host("client")
    net.connect("client", "lan", tx_queue_packets=4096)
    host = net.add_host("agent0")
    net.connect("agent0", "lan", tx_queue_packets=4096)
    fs = LocalFileSystem(env, Disk(env, INSTANT_DISK), cache_blocks=4096)
    agent = StorageAgent(env, host, fs, socket_buffer=4096,
                         nak_timeout_s=0.05)
    engine = DistributionAgent(env, client_host, ["agent0"], "obj",
                               striping_unit=4096, packet_size=4096,
                               open_timeout_s=0.1, read_timeout_s=0.1,
                               ack_timeout_s=0.1, max_retries=40)

    def run(gen):
        return env.run(until=env.process(gen))

    run(engine.open(create=True))
    run(engine.write(0, b"L" * 80_000))
    assert fs.file_size("obj") == 80_000
    # Recovery machinery left fingerprints on the agent side.
    assert agent.stats.naks_sent + agent.stats.duplicate_packets > 0

"""Transfer plan invariants."""

import pytest

from repro.core import StripeLayout, TransferPlan


def make_plan(**overrides):
    defaults = dict(
        object_name="obj",
        agent_hosts=("a", "b", "c"),
        striping_unit=8192,
        packet_size=8192,
        parity=False,
    )
    defaults.update(overrides)
    return TransferPlan(**defaults)


def test_validation():
    with pytest.raises(ValueError):
        make_plan(agent_hosts=())
    with pytest.raises(ValueError):
        make_plan(striping_unit=0)
    with pytest.raises(ValueError):
        make_plan(parity=True, agent_hosts=("a", "b"))


def test_plain_plan_all_agents_hold_data():
    plan = make_plan()
    assert plan.num_data_agents == 3
    assert plan.data_agents == ("a", "b", "c")
    assert plan.parity_agent is None


def test_parity_plan_reserves_last_agent():
    plan = make_plan(parity=True)
    assert plan.num_data_agents == 2
    assert plan.data_agents == ("a", "b")
    assert plan.parity_agent == "c"


def test_layout_matches_plan():
    plan = make_plan(parity=True, striping_unit=4096)
    layout = plan.layout()
    assert isinstance(layout, StripeLayout)
    assert layout.num_agents == 2
    assert layout.striping_unit == 4096


def test_describe_mentions_key_facts():
    text = make_plan(parity=True).describe()
    assert "obj" in text
    assert "2 data agents" in text
    assert "parity on c" in text


def test_plan_is_immutable():
    plan = make_plan()
    with pytest.raises(AttributeError):
        plan.striping_unit = 1

"""Buffered Swift files: correctness and coalescing behaviour."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import SessionClosed, build_local_swift
from repro.core.buffered import BufferedSwiftFile


@pytest.fixture()
def deployment():
    return build_local_swift(num_agents=3)


@pytest.fixture()
def buffered(deployment):
    client = deployment.client()
    handle = client.open("obj", "w", striping_unit=8192)
    return BufferedSwiftFile(handle, buffer_size=4096)


def test_buffer_size_validation(buffered):
    with pytest.raises(ValueError):
        BufferedSwiftFile(buffered.raw, buffer_size=0)


def test_roundtrip_through_buffers(buffered):
    payload = bytes(range(256)) * 100
    buffered.write(payload)
    buffered.seek(0)
    assert buffered.read(len(payload)) == payload


def test_small_writes_coalesce_into_few_protocol_ops(buffered):
    stats = buffered.raw.stats
    for index in range(100):
        buffered.write(bytes([index]) * 40)  # 100 x 40 B = 4000 B
    buffered.flush()
    # Unbuffered this would be 100 write ops (>= 200 packets); buffered
    # it is one coalesced 4000-byte operation.
    assert stats.packets_sent < 30


def test_small_reads_served_from_readahead(buffered):
    buffered.write(b"r" * 4096)
    buffered.flush()
    buffered.seek(0)
    stats = buffered.raw.stats
    before = stats.packets_sent
    for _ in range(64):
        assert buffered.read(64) == b"r" * 64
    # One buffer fill, not 64 round trips.
    assert stats.packets_sent - before <= 4


def test_reads_observe_unflushed_writes(buffered):
    buffered.write(b"A" * 100)
    buffered.seek(0)
    assert buffered.read(100) == b"A" * 100  # flushes internally


def test_non_contiguous_write_flushes_previous(buffered):
    buffered.write(b"start")
    buffered.seek(1000)
    buffered.write(b"end")
    buffered.flush()
    buffered.seek(0)
    assert buffered.read(5) == b"start"
    buffered.seek(1000)
    assert buffered.read(3) == b"end"


def test_overwrite_invalidates_read_buffer(buffered):
    buffered.write(b"x" * 2048)
    buffered.flush()
    buffered.seek(0)
    assert buffered.read(10) == b"x" * 10  # read buffer now holds x's
    buffered.seek(5)
    buffered.write(b"YYYYY")
    buffered.seek(0)
    assert buffered.read(12) == b"xxxxxYYYYYxx"


def test_size_includes_buffered_tail(buffered):
    buffered.write(b"t" * 10)
    assert buffered.size == 10          # still only in the buffer
    assert buffered.raw.size == 0
    buffered.flush()
    assert buffered.raw.size == 10


def test_autoflush_when_buffer_fills(buffered):
    buffered.write(b"f" * 5000)  # > buffer_size 4096
    assert buffered.raw.size >= 5000


def test_close_flushes(deployment):
    client = deployment.client()
    with BufferedSwiftFile(client.open("c", "w"), buffer_size=1024) as f:
        f.write(b"persisted")
    with client.open("c", "r") as check:
        assert check.pread(0, 9) == b"persisted"


def test_closed_rejects_io(buffered):
    buffered.close()
    with pytest.raises(SessionClosed):
        buffered.read(1)
    with pytest.raises(SessionClosed):
        buffered.write(b"x")


def test_seek_validation(buffered):
    with pytest.raises(ValueError):
        buffered.seek(-1)
    with pytest.raises(ValueError):
        buffered.seek(0, 99)
    with pytest.raises(ValueError):
        buffered.read(-1)


operations = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.binary(min_size=1, max_size=700)),
        st.tuples(st.just("read"), st.integers(min_value=0, max_value=900)),
        st.tuples(st.just("seek"), st.integers(min_value=0, max_value=3000)),
    ),
    min_size=1, max_size=12,
)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=operations)
def test_buffered_matches_reference_file_model(ops):
    """Property: behaves exactly like a flat file with a cursor."""
    deployment = build_local_swift(num_agents=3)
    client = deployment.client()
    buffered = BufferedSwiftFile(client.open("obj", "w", striping_unit=512),
                                 buffer_size=256)
    reference = bytearray()
    cursor = 0
    for op in ops:
        kind, arg = op
        if kind == "write":
            if len(reference) < cursor + len(arg):
                reference.extend(
                    b"\x00" * (cursor + len(arg) - len(reference)))
            reference[cursor:cursor + len(arg)] = arg
            buffered.write(arg)
            cursor += len(arg)
        elif kind == "read":
            expected = bytes(reference[cursor:cursor + arg])
            assert buffered.read(arg) == expected
            cursor += len(expected)
        else:
            cursor = arg
            buffered.seek(arg)
    buffered.flush()
    buffered.seek(0)
    assert buffered.read(len(reference) + 10) == bytes(reference)

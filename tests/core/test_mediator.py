"""Storage mediator: admission control and the striping-unit policy."""

import pytest

from repro.core import (
    MAX_STRIPING_UNIT,
    MIN_STRIPING_UNIT,
    AdmissionError,
    StorageMediator,
)

MB = 1 << 20


def make_mediator(num_agents=4, bandwidth=1.0 * MB, capacity=100 * MB,
                  network_capacity=float("inf")):
    mediator = StorageMediator(network_capacity=network_capacity)
    for index in range(num_agents):
        mediator.register_agent(f"agent{index}", bandwidth, capacity)
    return mediator


def test_register_validation():
    mediator = StorageMediator()
    mediator.register_agent("a", 1e6, 1 << 20)
    with pytest.raises(ValueError):
        mediator.register_agent("a", 1e6, 1 << 20)
    with pytest.raises(ValueError):
        mediator.register_agent("b", 0, 1 << 20)


def test_best_effort_session_uses_all_agents():
    mediator = make_mediator(4)
    session = mediator.negotiate("obj", object_size=MB)
    assert len(session.plan.agent_hosts) == 4
    assert session.plan.striping_unit == MAX_STRIPING_UNIT


def test_high_rate_gets_small_unit():
    mediator = make_mediator(8)
    low = mediator.choose_striping_unit(data_rate=0.2 * MB, num_agents=4)
    high = mediator.choose_striping_unit(data_rate=20 * MB, num_agents=4)
    assert low <= high or low == MIN_STRIPING_UNIT
    # The paper's policy: low rates -> large unit; high rates -> unit small
    # *relative to the request*, here clamped to the allowed range.
    assert mediator.choose_striping_unit(0.0, 4) == MAX_STRIPING_UNIT
    assert MIN_STRIPING_UNIT <= high <= MAX_STRIPING_UNIT


def test_unit_clamped_to_bounds():
    mediator = make_mediator()
    assert mediator.choose_striping_unit(1.0, 1) == MIN_STRIPING_UNIT
    assert mediator.choose_striping_unit(1e12, 1) == MAX_STRIPING_UNIT


def test_rate_selects_enough_agents():
    mediator = make_mediator(8, bandwidth=1.0 * MB)
    session = mediator.negotiate("obj", object_size=MB, data_rate=2.5 * MB)
    assert len(session.plan.agent_hosts) == 3  # ceil(2.5) agents


def test_admission_rejects_impossible_rate():
    # §2: "storage mediators will reject any request with requirements it
    # is unable to satisfy."
    mediator = make_mediator(3, bandwidth=1.0 * MB)
    with pytest.raises(AdmissionError):
        mediator.negotiate("obj", object_size=MB, data_rate=10 * MB)


def test_admission_rejects_insufficient_storage():
    mediator = make_mediator(2, capacity=10 * MB)
    with pytest.raises(AdmissionError):
        mediator.negotiate("obj", object_size=100 * MB)


def test_reservations_reduce_availability():
    mediator = make_mediator(2, bandwidth=1.0 * MB)
    mediator.negotiate("a", object_size=MB, data_rate=1.5 * MB)
    with pytest.raises(AdmissionError):
        mediator.negotiate("b", object_size=MB, data_rate=1.5 * MB)


def test_session_close_releases_resources():
    mediator = make_mediator(2, bandwidth=1.0 * MB)
    session = mediator.negotiate("a", object_size=MB, data_rate=1.5 * MB)
    session.close()
    # Now the same request is admissible again.
    again = mediator.negotiate("b", object_size=MB, data_rate=1.5 * MB)
    assert again.plan.object_name == "b"


def test_session_close_idempotent():
    mediator = make_mediator(2)
    session = mediator.negotiate("a", object_size=MB)
    session.close()
    session.close()
    assert not session.open


def test_network_capacity_enforced():
    mediator = make_mediator(4, network_capacity=2.0 * MB)
    mediator.negotiate("a", object_size=MB, data_rate=1.5 * MB)
    with pytest.raises(AdmissionError):
        mediator.negotiate("b", object_size=MB, data_rate=1.0 * MB)


def test_parity_session_gets_extra_agent():
    mediator = make_mediator(4, bandwidth=1.0 * MB)
    session = mediator.negotiate("obj", object_size=MB, data_rate=1.5 * MB,
                                 parity=True)
    assert session.plan.parity
    assert len(session.plan.agent_hosts) == 3  # 2 data + 1 parity
    assert session.plan.num_data_agents == 2


def test_parity_impossible_when_all_agents_busy_for_rate():
    mediator = make_mediator(2, bandwidth=1.0 * MB)
    with pytest.raises(AdmissionError):
        mediator.negotiate("obj", object_size=MB, data_rate=1.8 * MB,
                           parity=True)


def test_explicit_striping_unit_respected():
    mediator = make_mediator()
    session = mediator.negotiate("obj", object_size=MB, striping_unit=12345)
    assert session.plan.striping_unit == 12345


def test_least_loaded_agents_preferred():
    mediator = make_mediator(4, bandwidth=1.0 * MB)
    first = mediator.negotiate("a", object_size=MB, data_rate=0.5 * MB)
    second = mediator.negotiate("b", object_size=MB, data_rate=0.5 * MB)
    # The second session should avoid the agent the first one loaded.
    assert set(first.plan.agent_hosts).isdisjoint(second.plan.agent_hosts)


def test_negotiate_validation():
    mediator = make_mediator()
    with pytest.raises(ValueError):
        mediator.negotiate("obj", object_size=-1)
    with pytest.raises(ValueError):
        StorageMediator(network_capacity=0)

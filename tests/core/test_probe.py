"""Proactive failure detection via health probes."""

import pytest

from repro.core import build_local_swift


@pytest.fixture()
def deployment():
    return build_local_swift(num_agents=4, parity=True)


def run(deployment, gen):
    env = deployment.env
    return env.run(until=env.process(gen))


def test_probe_all_healthy(deployment):
    client = deployment.client()
    handle = client.open("obj", "w", parity=True)
    handle.write(b"x" * 50_000)
    failed = run(deployment, handle.engine.probe_agents())
    assert failed == []


def test_probe_detects_crash_before_data_path(deployment):
    client = deployment.client()
    handle = client.open("obj", "w", parity=True)
    handle.write(b"x" * 50_000)
    engine = handle.engine
    victim = engine.data_channels[1]
    deployment.crash_agent(victim.agent_host)
    failed = run(deployment, engine.probe_agents(timeout_s=0.02))
    assert failed == [victim.index]
    # With the failure already marked, the next read goes degraded
    # immediately (no data-path timeout needed).
    engine.read_timeout_s = 5.0  # would be painful if hit
    before = deployment.env.now
    data = handle.pread(0, 50_000)
    assert data == b"x" * 50_000
    assert deployment.env.now - before < 1.0


def test_probe_skips_already_failed_channels(deployment):
    client = deployment.client()
    handle = client.open("obj", "w", parity=True)
    handle.write(b"q" * 1000)
    engine = handle.engine
    engine.mark_failed(0)
    sent_before = engine.stats.packets_sent
    failed = run(deployment, engine.probe_agents(timeout_s=0.02))
    assert 0 in failed
    # No probe traffic to a channel already known dead.
    probes = engine.stats.packets_sent - sent_before
    assert probes <= (len(engine.channels) - 1) * 2


def test_probe_counts_traffic(deployment):
    client = deployment.client()
    handle = client.open("obj", "w", parity=True)
    handle.write(b"z")
    engine = handle.engine
    before = engine.stats.packets_received
    run(deployment, engine.probe_agents())
    assert engine.stats.packets_received >= before + len(engine.channels)

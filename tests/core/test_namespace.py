"""Namespace operations and the mediator's object catalog."""

import pytest

from repro.core import AdmissionError, build_local_swift
from repro.core.namespace import NamespaceClient


@pytest.fixture()
def deployment():
    return build_local_swift(num_agents=3)


@pytest.fixture()
def client(deployment):
    return deployment.client()


def test_list_objects_union(client):
    assert client.list_objects() == []
    for name in ["zeta", "alpha", "mid"]:
        with client.open(name, "w") as f:
            f.write(b"x" * 100)
    assert client.list_objects() == ["alpha", "mid", "zeta"]


def test_exists(client):
    assert not client.exists("ghost")
    with client.open("real", "w") as f:
        f.write(b"payload")
    assert client.exists("real")


def test_remove_deletes_everywhere(deployment, client):
    with client.open("victim", "w") as f:
        f.write(b"v" * 200_000)  # spans all agents
    assert client.remove("victim") is True
    assert not client.exists("victim")
    for agent in deployment.agents.values():
        assert "victim" not in agent.filesystem.list_files()


def test_remove_is_idempotent(client):
    with client.open("once", "w") as f:
        f.write(b"1")
    assert client.remove("once") is True
    assert client.remove("once") is False


def test_remove_forgets_catalog_entry(deployment, client):
    with client.open("obj", "w", striping_unit=4096) as f:
        f.write(b"a" * 10_000)
    assert "obj" in deployment.mediator.catalog
    client.remove("obj")
    assert "obj" not in deployment.mediator.catalog


def test_reopen_reuses_stored_layout(deployment, client):
    # Create with a 4 KB unit via an explicit request...
    with client.open("obj", "w", striping_unit=4096) as f:
        f.write(bytes(range(256)) * 200)
    # ...reopen without specifying anything: the catalog must hand back
    # the same unit, or the stripes would be misread.
    with client.open("obj", "r") as f:
        assert f.engine.layout.striping_unit == 4096
        assert f.pread(0, 256) == bytes(range(256))


def test_conflicting_explicit_unit_refused(client):
    with client.open("obj", "w", striping_unit=4096) as f:
        f.write(b"q" * 1000)
    with pytest.raises(AdmissionError):
        client.open("obj", "r", striping_unit=8192)


def test_reopen_parity_object_keeps_parity():
    deployment = build_local_swift(num_agents=4, parity=True)
    client = deployment.client()
    with client.open("obj", "w", parity=True) as f:
        f.write(b"z" * 100_000)
    with client.open("obj", "r") as f:  # parity not re-requested
        assert f.engine.parity
        assert f.pread(0, 5) == b"zzzzz"


def test_namespace_client_validation(deployment):
    with pytest.raises(ValueError):
        NamespaceClient(deployment.env,
                        deployment.network.host("client"), [])


def test_namespace_survives_lossy_network():
    from repro.des import Environment, StreamFactory
    from repro.simdisk import Disk, LocalFileSystem
    from repro.simnet import Network
    from repro.core import StorageAgent
    from repro.core.deployment import INSTANT_DISK

    env = Environment()
    net = Network(env, StreamFactory(17))
    net.add_ethernet("lan", loss_probability=0.25)
    client_host = net.add_host("client")
    net.connect("client", "lan", tx_queue_packets=1024)
    host = net.add_host("agent0")
    net.connect("agent0", "lan", tx_queue_packets=1024)
    fs = LocalFileSystem(env, Disk(env, INSTANT_DISK))
    fs.create("precious")
    StorageAgent(env, host, fs)
    namespace = NamespaceClient(env, client_host, ["agent0"],
                                timeout_s=0.05, max_retries=40)

    def run(gen):
        return env.run(until=env.process(gen))

    assert run(namespace.list_objects()) == ["precious"]
    assert run(namespace.exists("precious"))
    assert run(namespace.remove("precious"))
    assert not run(namespace.exists("precious"))


def test_mediatorless_client_namespace(deployment):
    client = deployment.direct_client()
    with client.open("obj", "w") as f:
        f.write(b"direct")
    assert client.list_objects() == ["obj"]
    assert client.remove("obj")
    assert client.list_objects() == []

"""Adversary-surfaced protocol edges, replayed against the real DES stack.

The model checker (`repro check --model`) explores these schedules
symbolically; each test here re-creates one of them concretely — crafted
datagrams injected straight into the client's socket buffer, or an agent
crashed mid-transfer — and checks the implementation honours the same
invariants the model proves.
"""

import pytest

from repro.core import DistributionAgent, StorageAgent, TransferError
from repro.core.agent_protocol import WriteAck, WriteNak
from repro.core.deployment import INSTANT_DISK
from repro.des import Environment, StreamFactory
from repro.simdisk import Disk, LocalFileSystem
from repro.simnet import Address, Datagram, Network


def build_swift(num_agents=1, seed=1, max_retries=5):
    env = Environment()
    streams = StreamFactory(seed)
    net = Network(env, streams)
    net.add_ethernet("lan", loss_probability=0.0)
    client_host = net.add_host("client")
    net.connect("client", "lan", tx_queue_packets=4096)
    agents = []
    for index in range(num_agents):
        name = f"agent{index}"
        host = net.add_host(name)
        net.connect(name, "lan", tx_queue_packets=4096)
        fs = LocalFileSystem(env, Disk(env, INSTANT_DISK), cache_blocks=4096)
        agents.append(StorageAgent(env, host, fs, socket_buffer=4096,
                                   nak_timeout_s=0.05))
    engine = DistributionAgent(
        env, client_host, [f"agent{i}" for i in range(num_agents)],
        "obj", striping_unit=4096, packet_size=4096,
        open_timeout_s=0.1, read_timeout_s=0.1, ack_timeout_s=0.1,
        max_retries=max_retries,
    )
    return env, engine, agents


def run(env, gen):
    return env.run(until=env.process(gen))


def inject(channel, message):
    """Plant a crafted datagram in the client channel's receive buffer."""
    channel.socket.deliver(Datagram(
        src=channel.data_address,
        dst=Address("client", channel.socket.port),
        size=64, message=message))


PAYLOAD = bytes((i * 7 + 3) % 256 for i in range(12_000))


def test_duplicate_ack_after_client_advance_is_purged():
    # The adversary's duplicated-ACK schedule: the ACK for a completed
    # op arrives (again and again) after the client already advanced.
    # The next write must purge the stale replies — left in the buffer
    # they would crowd out the live ACK (the rx queue is finite).
    env, engine, _ = build_swift()
    run(env, engine.open(create=True))
    run(env, engine.write(0, PAYLOAD))
    channel = engine.data_channels[0]
    for _ in range(channel.socket.buffer_packets):
        inject(channel, WriteAck(handle=channel.handle, op_id=1))
    assert channel.socket._rx.size == channel.socket.buffer_packets
    run(env, engine.write(0, PAYLOAD))
    # The live ACK got through: no timeouts, and the stale flood is gone.
    assert engine.stats.ack_timeouts == 0
    assert not any(isinstance(d.message, WriteAck)
                   for d in channel.socket._rx.items)
    assert run(env, engine.read(0, len(PAYLOAD))) == PAYLOAD


def test_stale_nak_from_previous_op_is_not_trusted():
    # A stale NAK (an op the client finished long ago) claims packets
    # are missing.  The op_id filter must keep the client from
    # retransmitting anything for it.
    env, engine, _ = build_swift()
    run(env, engine.open(create=True))
    run(env, engine.write(0, PAYLOAD))
    channel = engine.data_channels[0]
    inject(channel, WriteNak(handle=channel.handle, op_id=1,
                             missing=(0, 1, 2)))
    run(env, engine.write(0, PAYLOAD))
    assert engine.stats.naks_received == 0
    assert engine.stats.write_retransmits == 0
    assert run(env, engine.read(0, len(PAYLOAD))) == PAYLOAD


def test_agent_crash_between_partial_write_acks_aborts_cleanly():
    # The crash schedule: the first write is ACKed, the agent dies, the
    # second write can never complete.  Bounded liveness demands a clean
    # abort within max_retries, with the channel marked failed.
    env, engine, agents = build_swift(num_agents=2, max_retries=3)
    run(env, engine.open(create=True))
    run(env, engine.write(0, PAYLOAD))
    agents[0].crash()
    with pytest.raises(TransferError):
        run(env, engine.write(0, PAYLOAD))
    assert 0 in engine.failed_agents
    # The retransmit bound was honoured, not exceeded.
    assert engine.stats.ack_timeouts <= 3


def test_crash_does_not_corrupt_the_surviving_stripe():
    # After the aborted write, data on the surviving agent must still be
    # either the old or the new generation for its stripe — readable
    # without protocol errors once the dead agent is marked failed.
    env, engine, agents = build_swift(num_agents=2, max_retries=2)
    run(env, engine.open(create=True))
    first = bytes(200) + PAYLOAD[200:]
    run(env, engine.write(0, first))
    agents[1].crash()
    with pytest.raises(TransferError):
        run(env, engine.write(0, PAYLOAD))
    assert 1 in engine.failed_agents

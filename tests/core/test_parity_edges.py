"""Parity edge cases: uneven final stripes, empty units, exact byte counts.

These pin the places a one-byte error would hide: the zero-padded tail of
an uneven final stripe, the degenerate zero-length unit, and the ledger's
exact-size accounting over a live parity deployment.
"""

import pytest

from repro.check import conserve
from repro.core import (
    build_local_swift,
    compute_parity,
    reconstruct_unit,
    update_parity,
)
from repro.core.striping import Chunk

UNIT = 4096


# -- pure parity arithmetic ---------------------------------------------------


def test_uneven_final_stripe_parity_is_exactly_one_unit():
    # Final stripe holds 100, 7 and 0 bytes on the three data agents;
    # parity must still be exactly unit_size bytes.
    units = [b"\xaa" * 100, b"\x55" * 7, b""]
    parity = compute_parity(units, UNIT)
    assert len(parity) == UNIT
    # Units overlap at their start; past every unit's end XOR is zero.
    assert parity == (b"\xff" * 7 + b"\xaa" * 93 + b"\x00" * (UNIT - 100))


def test_uneven_final_stripe_reconstructs_padded_units():
    units = [b"\xaa" * 100, b"\x55" * 7, b""]
    parity = compute_parity(units, UNIT)
    for missing in range(3):
        survivors = [u for i, u in enumerate(units) if i != missing]
        rebuilt = reconstruct_unit(survivors, parity, UNIT)
        assert len(rebuilt) == UNIT
        assert rebuilt == units[missing].ljust(UNIT, b"\x00")


def test_zero_length_unit_contributes_nothing():
    with_empty = compute_parity([b"abc", b"", b"xyz"], 8)
    without = compute_parity([b"abc", b"xyz"], 8)
    assert with_empty == without
    assert len(with_empty) == 8


def test_update_parity_round_trip_restores_original():
    units = [b"abcd", b"efgh", b"ijkl"]
    parity = compute_parity(units, 4)
    changed = update_parity(units[1], b"WXYZ", parity, 4)
    restored = update_parity(b"WXYZ", units[1], changed, 4)
    assert restored == parity


def test_update_parity_with_short_and_empty_units():
    units = [b"abcd", b"ef", b"i"]
    parity = compute_parity(units, 4)
    # Shrink unit 1 to nothing, then grow it back: parity follows exactly.
    emptied = update_parity(units[1], b"", parity, 4)
    assert emptied == compute_parity([units[0], b"", units[2]], 4)
    regrown = update_parity(b"", b"efgh", emptied, 4)
    assert regrown == compute_parity([units[0], b"efgh", units[2]], 4)
    assert len(regrown) == 4


# -- Chunk.split --------------------------------------------------------------


def test_chunk_split_partitions_exactly():
    chunk = Chunk(agent=2, agent_offset=100, logical_offset=900,
                  length=50, stripe=3)
    head, tail = chunk.split(20)
    assert (head.length, tail.length) == (20, 30)
    assert head.logical_offset == 900 and tail.logical_offset == 920
    assert head.agent_offset == 100 and tail.agent_offset == 120
    assert head.agent == tail.agent == 2
    assert head.stripe == tail.stripe == 3


def test_chunk_split_rejects_degenerate_points():
    chunk = Chunk(agent=0, agent_offset=0, logical_offset=0,
                  length=10, stripe=0)
    for at in (0, 10, -1, 11):
        with pytest.raises(ValueError):
            chunk.split(at)


# -- live deployment: exact byte counts on uneven stripes ---------------------


def _parity_deployment():
    deployment = build_local_swift(num_agents=4, parity=True)
    client = deployment.client()
    handle = client.open("obj", "w", parity=True, striping_unit=UNIT)
    return deployment, handle


def test_uneven_final_stripe_write_has_exact_ledger_counts():
    deployment, handle = _parity_deployment()
    # 2.5 stripes of data: the final stripe is half-covered.
    nbytes = 2 * 3 * UNIT + 3 * UNIT // 2
    with conserve(deployment.env) as ledger:
        handle.pwrite(0, b"q" * nbytes)
    write_ops = [op for op in ledger.ops.values() if op.kind == "write"]
    assert len(write_ops) == 1
    record = write_ops[0]
    assert record.logical_bytes == nbytes
    data_bytes = sum(n for offset, n in record.regions.values()
                     if offset is not None)
    assert data_bytes == nbytes
    parity_bytes, expected = record.parity
    assert parity_bytes == expected == 3 * UNIT  # 3 stripes x one unit


def test_degraded_read_of_uneven_tail_is_exact():
    deployment, handle = _parity_deployment()
    engine = handle.engine
    nbytes = 2 * 3 * UNIT + 100  # 100-byte tail unit on agent 0
    payload = bytes(range(256)) * (nbytes // 256 + 1)
    handle.pwrite(0, payload[:nbytes])
    deployment.crash_agent(engine.data_channels[0].agent_host)
    engine.mark_failed(0)
    engine.read_timeout_s = 0.01
    with conserve(deployment.env) as ledger:
        assert handle.pread(0, nbytes) == payload[:nbytes]
    assert ledger.errors == []

"""The light-weight transfer protocol must survive packet loss (§3.1).

These tests wire a Swift system over a *lossy* Ethernet and check that the
read resubmission and write ACK/NAK retransmission machinery delivers exact
bytes anyway.
"""

import pytest

from repro.des import Environment, StreamFactory
from repro.simdisk import Disk, LocalFileSystem
from repro.simnet import Network
from repro.core import DistributionAgent, StorageAgent
from repro.core.deployment import INSTANT_DISK


def build_lossy_swift(loss_probability, num_agents=3, seed=1):
    env = Environment()
    streams = StreamFactory(seed)
    net = Network(env, streams)
    net.add_ethernet("lan", loss_probability=loss_probability)
    client_host = net.add_host("client")
    net.connect("client", "lan", tx_queue_packets=4096)
    agents = []
    for index in range(num_agents):
        name = f"agent{index}"
        host = net.add_host(name)
        net.connect(name, "lan", tx_queue_packets=4096)
        fs = LocalFileSystem(env, Disk(env, INSTANT_DISK), cache_blocks=4096)
        agents.append(StorageAgent(env, host, fs, socket_buffer=4096,
                                   nak_timeout_s=0.05))
    engine = DistributionAgent(
        env, client_host, [f"agent{i}" for i in range(num_agents)],
        "obj", striping_unit=4096, packet_size=4096,
        open_timeout_s=0.1, read_timeout_s=0.1, ack_timeout_s=0.1,
        max_retries=40,
    )
    return env, engine, agents


def run(env, gen):
    return env.run(until=env.process(gen))


PAYLOAD = bytes((i * 13 + 5) % 256 for i in range(60_000))


@pytest.mark.parametrize("loss", [0.02, 0.10, 0.25])
def test_write_read_roundtrip_under_loss(loss):
    env, engine, _ = build_lossy_swift(loss)
    run(env, engine.open(create=True))
    run(env, engine.write(0, PAYLOAD))
    data = run(env, engine.read(0, len(PAYLOAD)))
    assert data == PAYLOAD


def test_loss_causes_retransmissions():
    env, engine, _ = build_lossy_swift(0.15)
    run(env, engine.open(create=True))
    run(env, engine.write(0, PAYLOAD))
    run(env, engine.read(0, len(PAYLOAD)))
    stats = engine.stats
    assert stats.read_retransmits + stats.write_retransmits > 0
    # NAKs or ACK timeouts must have driven the write recovery.
    assert stats.naks_received + stats.ack_timeouts > 0


def test_zero_loss_has_no_retransmissions():
    env, engine, _ = build_lossy_swift(0.0)
    run(env, engine.open(create=True))
    run(env, engine.write(0, PAYLOAD))
    run(env, engine.read(0, len(PAYLOAD)))
    assert engine.stats.read_retransmits == 0
    assert engine.stats.write_retransmits == 0


def test_overwrites_under_loss_stay_consistent():
    env, engine, _ = build_lossy_swift(0.10, seed=7)
    run(env, engine.open(create=True))
    reference = bytearray(PAYLOAD)
    run(env, engine.write(0, PAYLOAD))
    for start, text in [(100, b"alpha" * 50), (9_000, b"beta" * 1000),
                        (45_000, b"gamma" * 2000)]:
        run(env, engine.write(start, text))
        reference[start:start + len(text)] = text
    assert run(env, engine.read(0, len(reference))) == bytes(reference)


def test_open_survives_lost_replies():
    env, engine, agents = build_lossy_swift(0.30, seed=3)
    size = run(env, engine.open(create=True))
    assert size == 0
    # Duplicate OPENs (retries) must not leak extra handlers.
    assert sum(agent.open_files for agent in agents) == len(agents)


def test_close_releases_agent_handlers():
    env, engine, agents = build_lossy_swift(0.0)
    run(env, engine.open(create=True))
    run(env, engine.write(0, b"x" * 10_000))
    run(env, engine.close())
    assert all(agent.open_files == 0 for agent in agents)

"""Redundancy: degraded reads/writes, reconstruction, rebuild."""

import pytest

from repro.core import AgentFailure, build_local_swift


@pytest.fixture()
def deployment():
    return build_local_swift(num_agents=4, parity=True)


@pytest.fixture()
def swift_file(deployment):
    client = deployment.client()
    f = client.open("obj", "w", parity=True)
    yield f


PAYLOAD = bytes((i * 31 + 7) % 256 for i in range(120_000))


def crash_data_agent(deployment, swift_file, index):
    engine = swift_file.engine
    victim = engine.data_channels[index].agent_host
    deployment.crash_agent(victim)
    engine.mark_failed(index)
    engine.read_timeout_s = 0.01
    engine.ack_timeout_s = 0.01
    return victim


def test_parity_files_written(deployment, swift_file):
    swift_file.write(PAYLOAD)
    engine = swift_file.engine
    parity_host = engine.parity_channel.agent_host
    fs = deployment.agent(parity_host).filesystem
    # One full parity unit per touched stripe.
    unit = engine.layout.striping_unit
    stripes = engine.layout.stripe_of(len(PAYLOAD) - 1) + 1
    assert fs.file_size("obj") == stripes * unit


def test_degraded_read_recovers_exact_bytes(deployment, swift_file):
    swift_file.write(PAYLOAD)
    crash_data_agent(deployment, swift_file, 0)
    assert swift_file.pread(0, len(PAYLOAD)) == PAYLOAD
    assert swift_file.stats.reconstructed_units > 0


def test_degraded_read_any_single_agent(deployment):
    client = deployment.client()
    for index in range(2):  # the plan has some data agents; try each
        name = f"obj{index}"
        f = client.open(name, "w", parity=True)
        f.write(PAYLOAD)
        num_data = f.engine.layout.num_agents
        if index >= num_data:
            break
        crash_data_agent(deployment, f, index)
        assert f.pread(0, len(PAYLOAD)) == PAYLOAD
        # Revive for the next iteration.
        deployment.replace_agent(f.engine.data_channels[index].agent_host)
        f.engine.channels[index].failed = False


def test_degraded_write_keeps_object_consistent(deployment, swift_file):
    swift_file.write(PAYLOAD)
    crash_data_agent(deployment, swift_file, 1)
    patch = bytes(reversed(range(256))) * 40
    swift_file.pwrite(33_000, patch)
    expected = bytearray(PAYLOAD)
    expected[33_000:33_000 + len(patch)] = patch
    assert swift_file.pread(0, len(PAYLOAD)) == bytes(expected)


def test_degraded_append_grows_object(deployment, swift_file):
    swift_file.write(PAYLOAD)
    crash_data_agent(deployment, swift_file, 0)
    swift_file.pwrite(len(PAYLOAD), b"tail" * 100)
    assert swift_file.size == len(PAYLOAD) + 400
    assert swift_file.pread(len(PAYLOAD), 400) == b"tail" * 100


def test_two_failures_exceed_redundancy(deployment, swift_file):
    swift_file.write(PAYLOAD)
    crash_data_agent(deployment, swift_file, 0)
    crash_data_agent(deployment, swift_file, 1)
    with pytest.raises(AgentFailure):
        swift_file.pread(0, len(PAYLOAD))


def test_parity_plus_data_failure_is_fatal(deployment, swift_file):
    swift_file.write(PAYLOAD)
    engine = swift_file.engine
    crash_data_agent(deployment, swift_file, 0)
    parity_index = engine.parity_channel.index
    deployment.crash_agent(engine.parity_channel.agent_host)
    engine.mark_failed(parity_index)
    with pytest.raises(AgentFailure):
        swift_file.pread(0, len(PAYLOAD))


def test_rebuild_data_agent_restores_redundancy(deployment, swift_file):
    swift_file.write(PAYLOAD)
    engine = swift_file.engine
    victim = crash_data_agent(deployment, swift_file, 1)
    deployment.replace_agent(victim)
    env = deployment.env
    env.run(until=env.process(engine.rebuild_agent(1)))
    assert engine.failed_agents == []
    # The replacement holds exactly the right bytes: read it directly.
    layout = engine.layout
    fs = deployment.agent(victim).filesystem
    local = _read_all(env, fs, "obj")
    assert len(local) == layout.agent_lengths(len(PAYLOAD))[1]
    for start in range(0, len(local), layout.striping_unit):
        logical = layout.logical_offset(1, start)
        span = min(layout.striping_unit, len(local) - start)
        assert local[start:start + span] == PAYLOAD[logical:logical + span]


def test_rebuild_parity_agent(deployment, swift_file):
    swift_file.write(PAYLOAD)
    engine = swift_file.engine
    parity_channel = engine.parity_channel
    deployment.crash_agent(parity_channel.agent_host)
    engine.mark_failed(parity_channel.index)
    engine.read_timeout_s = 0.01
    deployment.replace_agent(parity_channel.agent_host)
    env = deployment.env
    env.run(until=env.process(engine.rebuild_agent(parity_channel.index)))
    # Now a data agent can fail and the object still reads back.
    crash_data_agent(deployment, swift_file, 0)
    assert swift_file.pread(0, len(PAYLOAD)) == PAYLOAD


def test_rebuild_without_parity_rejected():
    deployment = build_local_swift(num_agents=3)
    client = deployment.client()
    f = client.open("obj", "w")
    f.write(b"x" * 1000)
    env = deployment.env
    with pytest.raises(AgentFailure):
        env.run(until=env.process(f.engine.rebuild_agent(0)))


def _read_all(env, fs, name):
    result = {}

    def reader():
        result["data"] = yield from fs.read(name, 0, fs.file_size(name))

    env.process(reader())
    env.run()
    return result["data"]

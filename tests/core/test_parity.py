"""XOR parity: compute, reconstruct, incremental update."""

import pytest
from hypothesis import given, strategies as st

from repro.core import compute_parity, reconstruct_unit, update_parity, xor_bytes


def test_xor_bytes_basic():
    assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"


def test_xor_bytes_pads_shorter():
    assert xor_bytes(b"\xff", b"\x01\x02") == b"\xfe\x02"
    assert xor_bytes(b"\x01\x02", b"\xff") == b"\xfe\x02"


def test_xor_identity_and_self_inverse():
    data = b"swift"
    assert xor_bytes(data, b"\x00" * 5) == data
    assert xor_bytes(data, data) == b"\x00" * 5


def test_compute_parity_known():
    parity = compute_parity([b"\x01", b"\x02", b"\x04"], unit_size=1)
    assert parity == b"\x07"


def test_compute_parity_pads_short_units():
    parity = compute_parity([b"\xff\xff", b"\x0f"], unit_size=4)
    assert parity == b"\xf0\xff\x00\x00"


def test_compute_parity_validation():
    with pytest.raises(ValueError):
        compute_parity([], unit_size=4)
    with pytest.raises(ValueError):
        compute_parity([b"12345"], unit_size=4)
    with pytest.raises(ValueError):
        compute_parity([b"x"], unit_size=0)


def test_reconstruct_recovers_missing_unit():
    units = [b"abcd", b"efgh", b"ijkl"]
    parity = compute_parity(units, 4)
    for missing in range(3):
        survivors = [u for i, u in enumerate(units) if i != missing]
        assert reconstruct_unit(survivors, parity, 4) == units[missing]


def test_reconstruct_validation():
    with pytest.raises(ValueError):
        reconstruct_unit([b"ab"], b"ab", unit_size=4)  # short parity
    with pytest.raises(ValueError):
        reconstruct_unit([b"abcde"], b"abcd", unit_size=4)  # long unit


def test_update_parity_matches_recompute():
    units = [b"abcd", b"efgh", b"ijkl"]
    parity = compute_parity(units, 4)
    new_unit1 = b"WXYZ"
    updated = update_parity(units[1], new_unit1, parity, 4)
    assert updated == compute_parity([units[0], new_unit1, units[2]], 4)


def test_update_parity_validation():
    with pytest.raises(ValueError):
        update_parity(b"ab", b"cd", b"ab", unit_size=4)
    with pytest.raises(ValueError):
        update_parity(b"abcde", b"cd", b"abcd", unit_size=4)


units_strategy = st.lists(st.binary(min_size=0, max_size=64),
                          min_size=1, max_size=8)


@given(units_strategy)
def test_parity_roundtrip_property(units):
    unit_size = 64
    parity = compute_parity(units, unit_size)
    for missing in range(len(units)):
        survivors = [u for i, u in enumerate(units) if i != missing]
        rebuilt = reconstruct_unit(survivors, parity, unit_size)
        padded = units[missing].ljust(unit_size, b"\x00")
        assert rebuilt == padded


@given(units_strategy, st.integers(min_value=0, max_value=7),
       st.binary(min_size=0, max_size=64))
def test_incremental_update_property(units, index, new_data):
    unit_size = 64
    index = index % len(units)
    parity = compute_parity(units, unit_size)
    updated = update_parity(units[index], new_data, parity, unit_size)
    replaced = list(units)
    replaced[index] = new_data
    assert updated == compute_parity(replaced, unit_size)


@given(st.binary(max_size=32), st.binary(max_size=32))
def test_xor_commutative_property(a, b):
    assert xor_bytes(a, b) == xor_bytes(b, a)

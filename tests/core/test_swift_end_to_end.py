"""End-to-end Swift behaviour on the loopback deployment."""

import os

import pytest

from repro.core import (
    AgentFailure,
    ObjectNotFound,
    SessionClosed,
    SwiftError,
    build_local_swift,
)


@pytest.fixture()
def deployment():
    return build_local_swift(num_agents=3)


@pytest.fixture()
def client(deployment):
    return deployment.client()


def test_write_then_read_roundtrip(client):
    with client.open("obj", "w") as f:
        payload = bytes(range(256)) * 300
        assert f.write(payload) == len(payload)
        f.seek(0)
        assert f.read(len(payload)) == payload


def test_open_missing_object_fails(client):
    with pytest.raises(ObjectNotFound):
        client.open("ghost", "r")


def test_rw_mode_creates(client):
    with client.open("fresh", "rw") as f:
        assert f.size == 0
        f.write(b"data")
        assert f.size == 4


def test_w_mode_truncates(client):
    with client.open("obj", "w") as f:
        f.write(b"long old content here")
    with client.open("obj", "w") as f:
        assert f.size == 0


def test_bad_mode_rejected(client):
    with pytest.raises(ValueError):
        client.open("obj", "x")


def test_reopen_recovers_exact_size(client):
    for size in [0, 1, 8191, 8192, 8193, 24576, 100_001]:
        name = f"obj{size}"
        with client.open(name, "w") as f:
            f.write(b"z" * size)
        with client.open(name, "r") as f:
            assert f.size == size


def test_seek_semantics(client):
    with client.open("obj", "w") as f:
        f.write(b"0123456789")
        assert f.seek(2) == 2
        assert f.read(3) == b"234"
        assert f.seek(-2, os.SEEK_CUR) == 3
        assert f.seek(-1, os.SEEK_END) == 9
        assert f.read(5) == b"9"
        with pytest.raises(ValueError):
            f.seek(-1)
        with pytest.raises(ValueError):
            f.seek(0, 99)


def test_sparse_write_reads_zeros(client):
    with client.open("obj", "w") as f:
        f.seek(50_000)
        f.write(b"tail")
        assert f.size == 50_004
        assert f.pread(0, 10) == b"\x00" * 10
        assert f.pread(49_998, 6) == b"\x00\x00tail"


def test_read_past_eof_truncated(client):
    with client.open("obj", "w") as f:
        f.write(b"abc")
        f.seek(0)
        assert f.read(100) == b"abc"
        assert f.read(10) == b""


def test_overwrite_spanning_agents(client):
    with client.open("obj", "w") as f:
        f.write(b"A" * 40_000)
        f.pwrite(7000, b"B" * 20_000)
        expected = b"A" * 7000 + b"B" * 20_000 + b"A" * 13_000
        assert f.pread(0, 40_000) == expected


def test_interleaving_across_agents(deployment, client):
    # The bytes on each agent must follow the round-robin layout.
    with client.open("obj", "w", striping_unit=100) as f:
        payload = bytes(i % 256 for i in range(1000))
        f.write(payload)
        engine = f.engine
        layout = engine.layout
    for index, channel in enumerate(engine.data_channels):
        fs = deployment.agent(channel.agent_host).filesystem
        local = _read_all(deployment.env, fs, "obj")
        expected_length = layout.agent_lengths(1000)[index]
        assert len(local) == expected_length
        for chunk_start in range(0, expected_length, 100):
            logical = layout.logical_offset(index, chunk_start)
            span = min(100, expected_length - chunk_start)
            assert local[chunk_start:chunk_start + span] == \
                payload[logical:logical + span]


def _read_all(env, fs, name):
    result = {}

    def reader():
        result["data"] = yield from fs.read(name, 0, fs.file_size(name))

    env.process(reader())
    env.run()
    return result["data"]


def test_closed_file_rejects_io(client):
    f = client.open("obj", "w")
    f.write(b"x")
    f.close()
    with pytest.raises(SessionClosed):
        f.read(1)
    with pytest.raises(SessionClosed):
        f.write(b"y")


def test_context_manager_closes(client):
    with client.open("obj", "w") as f:
        f.write(b"x")
    assert f.closed


def test_two_objects_are_independent(client):
    with client.open("a", "w") as fa, client.open("b", "w") as fb:
        fa.write(b"AAAA")
        fb.write(b"BBBB")
        assert fa.pread(0, 4) == b"AAAA"
        assert fb.pread(0, 4) == b"BBBB"


def test_sequential_reads_move_position(client):
    with client.open("obj", "w") as f:
        f.write(bytes(range(100)))
        f.seek(0)
        assert f.read(10) == bytes(range(10))
        assert f.read(10) == bytes(range(10, 20))
        assert f.tell() == 20


def test_agent_crash_without_parity_raises(deployment, client):
    with client.open("obj", "w") as f:
        f.write(b"q" * 60_000)
        victim = f.engine.data_channels[0].agent_host
        deployment.crash_agent(victim)
        f.engine.read_timeout_s = 0.01  # fail fast
        f.engine.max_retries = 2
        with pytest.raises(AgentFailure):
            f.pread(0, 60_000)


def test_client_requires_mediator_or_agents(deployment):
    from repro.core import SwiftClient
    with pytest.raises(ValueError):
        SwiftClient(deployment.env,
                    deployment.network.host(deployment.client_host_name))


def test_mediatorless_client_uses_default_agents(deployment):
    client = deployment.direct_client()
    with client.open("obj", "w") as f:
        f.write(b"direct")
        assert f.pread(0, 6) == b"direct"


def test_sync_call_inside_process_rejected(deployment, client):
    f = client.open("obj", "w")
    f.write(b"x")
    captured = {}

    def misuse():
        try:
            f.read(1)
        except SwiftError as exc:
            captured["error"] = str(exc)
        yield deployment.env.timeout(0)

    deployment.env.process(misuse())
    deployment.env.run()
    assert "process" in captured["error"]

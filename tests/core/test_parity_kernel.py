"""The word-wise XOR kernels vs. a byte-loop reference.

The parity module's kernels read whole buffers as little-endian integers
(one C-level pass) instead of looping per byte; these properties pin the
optimised kernels to the obviously-correct per-byte implementation across
the awkward lengths (0, 1, word-unaligned) and across input types
(``bytes``, ``bytearray``, ``memoryview``), so the zero-copy data path can
hand any bytes-like slice straight in.
"""

from hypothesis import given, strategies as st

from repro.core import compute_parity, reconstruct_unit, update_parity, xor_bytes


def _xor_reference(left: bytes, right: bytes) -> bytes:
    """Per-byte XOR with zero-padding — the pre-optimisation semantics."""
    size = max(len(left), len(right))
    left = bytes(left).ljust(size, b"\x00")
    right = bytes(right).ljust(size, b"\x00")
    return bytes(a ^ b for a, b in zip(left, right))


def _parity_reference(units, unit_size: int) -> bytes:
    accumulator = b"\x00" * unit_size
    for unit in units:
        accumulator = _xor_reference(accumulator, bytes(unit))
    return accumulator


# Deliberately word-hostile lengths: empty, single byte, 7/9 around the
# 8-byte word, and a couple of large unaligned sizes.
_AWKWARD_LENGTHS = (0, 1, 2, 7, 8, 9, 63, 64, 65, 1000, 4097)

buffers = st.one_of(
    st.binary(max_size=300),
    st.sampled_from(_AWKWARD_LENGTHS).flatmap(
        lambda n: st.binary(min_size=n, max_size=n)),
)


@given(buffers, buffers)
def test_xor_bytes_matches_byte_loop(left, right):
    assert xor_bytes(left, right) == _xor_reference(left, right)


@given(buffers, buffers)
def test_xor_bytes_accepts_any_bytes_like(left, right):
    expected = _xor_reference(left, right)
    assert xor_bytes(bytearray(left), right) == expected
    assert xor_bytes(left, memoryview(right)) == expected
    assert xor_bytes(memoryview(bytearray(left)),
                     memoryview(right)) == expected


@given(st.integers(min_value=1, max_value=64).flatmap(
    lambda unit: st.tuples(
        st.just(unit),
        st.lists(st.binary(max_size=unit), min_size=1, max_size=5))))
def test_compute_parity_matches_byte_loop(case):
    unit_size, units = case
    expected = _parity_reference(units, unit_size)
    assert compute_parity(units, unit_size) == expected
    assert compute_parity([memoryview(u) for u in units],
                          unit_size) == expected


@given(st.integers(min_value=1, max_value=64).flatmap(
    lambda unit: st.tuples(
        st.just(unit),
        st.lists(st.binary(min_size=unit, max_size=unit),
                 min_size=2, max_size=5),
        st.data())))
def test_reconstruct_matches_byte_loop(case):
    unit_size, units, data = case
    parity = compute_parity(units, unit_size)
    missing = data.draw(st.integers(0, len(units) - 1))
    survivors = units[:missing] + units[missing + 1:]
    rebuilt = reconstruct_unit(survivors, parity, unit_size)
    assert rebuilt == units[missing]
    assert reconstruct_unit([memoryview(u) for u in survivors],
                            memoryview(parity), unit_size) == rebuilt


@given(st.integers(min_value=1, max_value=64).flatmap(
    lambda unit: st.tuples(
        st.just(unit),
        st.binary(max_size=unit),   # old content of the updated unit
        st.binary(max_size=unit),   # new content (may differ in length!)
        st.lists(st.binary(max_size=unit), min_size=1, max_size=4))))
def test_update_parity_matches_recompute(case):
    """parity ^= old ^ new == recomputing the stripe from scratch.

    Lengths of old and new are drawn independently, covering the uneven
    final-stripe case: a short trailing unit growing (or shrinking) under
    the update.  The regression this pins: the padding of short deltas is
    folded into the word-wise XOR, and must behave exactly as the old
    explicit ljust did.
    """
    unit_size, old_unit, new_unit, siblings = case
    old_parity = compute_parity(siblings + [old_unit], unit_size)
    updated = update_parity(old_unit, new_unit, old_parity, unit_size)
    assert updated == compute_parity(siblings + [new_unit], unit_size)
    assert update_parity(memoryview(old_unit), memoryview(new_unit),
                         memoryview(old_parity), unit_size) == updated


def test_update_parity_uneven_final_stripe_regression():
    """The concrete §2 shape: the object's last stripe is short, and a
    write extends its trailing unit.  Parity must track the recompute."""
    unit_size = 8
    full = bytes(range(8))
    short_old = b"\x10\x20"            # trailing unit before the write
    short_new = b"\x10\x20\x30\x40\x50"  # grown by the write, still short
    parity = compute_parity([full, short_old], unit_size)
    updated = update_parity(short_old, short_new, parity, unit_size)
    assert updated == compute_parity([full, short_new], unit_size)
    # And shrinking back must round-trip.
    assert update_parity(short_new, short_old, updated,
                         unit_size) == parity


def test_empty_inputs_through_every_kernel():
    assert xor_bytes(b"", b"") == b""
    assert compute_parity([b""], 4) == b"\x00" * 4
    assert update_parity(b"", b"", b"\x00" * 4, 4) == b"\x00" * 4
    assert reconstruct_unit([], b"\xaa" * 4, 4) == b"\xaa" * 4

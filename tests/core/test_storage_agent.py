"""Protocol-level storage agent behaviour (§3.1), driven directly."""

import pytest

from repro.core import (
    CloseReply,
    CloseRequest,
    DataPacket,
    OpenReply,
    OpenRequest,
    ReadRequest,
    StorageAgent,
    WriteAck,
    WriteData,
    WriteNak,
    WriteRequest,
    WELL_KNOWN_PORT,
    wire_size,
)
from repro.core.deployment import INSTANT_DISK, LoopbackMedium
from repro.des import Environment
from repro.simdisk import Disk, LocalFileSystem
from repro.simnet import Address, Host


class AgentFixture:
    """One agent plus a raw client socket for hand-crafted messages."""

    def __init__(self, nak_timeout_s=0.05):
        self.env = Environment()
        medium = LoopbackMedium(self.env, "loop")
        agent_host = Host(self.env, "agent")
        client_host = Host(self.env, "client")
        agent_host.attach(medium, tx_queue_packets=1024)
        client_host.attach(medium, tx_queue_packets=1024)
        fs = LocalFileSystem(self.env, Disk(self.env, INSTANT_DISK),
                             cache_blocks=1024)
        self.agent = StorageAgent(self.env, agent_host, fs,
                                  nak_timeout_s=nak_timeout_s)
        self.socket = client_host.bind(buffer_packets=1024)
        self.control = Address("agent", WELL_KNOWN_PORT)

    def run(self, gen):
        return self.env.run(until=self.env.process(gen))

    def call(self, dst, message, reply_predicate, timeout=1.0):
        def gen():
            yield from self.socket.send(dst, message=message,
                                        payload_size=wire_size(message))
            return (yield from self.socket.recv_wait(timeout,
                                                     reply_predicate))
        return self.run(gen())

    def open_file(self, name="f", create=True, request_id=1):
        reply = self.call(
            self.control,
            OpenRequest(file_name=name, create=create, truncate=False,
                        request_id=request_id),
            lambda d: isinstance(d.message, OpenReply))
        return reply.message


def test_open_creates_handler_with_private_port():
    fixture = AgentFixture()
    reply = fixture.open_file()
    assert reply.ok
    assert reply.private_port != WELL_KNOWN_PORT
    assert fixture.agent.open_files == 1


def test_open_missing_without_create_fails():
    fixture = AgentFixture()
    reply = fixture.open_file(create=False)
    assert not reply.ok
    assert "no such object" in reply.error
    assert fixture.agent.open_files == 0


def test_duplicate_open_request_is_idempotent():
    # A retransmitted OPEN (lost reply) must not spawn a second handler.
    fixture = AgentFixture()
    first = fixture.open_file(request_id=9)
    second = fixture.open_file(request_id=9)
    assert first.handle == second.handle
    assert first.private_port == second.private_port
    assert fixture.agent.open_files == 1


def test_distinct_opens_get_distinct_handlers():
    fixture = AgentFixture()
    first = fixture.open_file(request_id=1)
    second = fixture.open_file(request_id=2)
    assert first.handle != second.handle
    assert fixture.agent.open_files == 2


def test_read_request_returns_data_packet():
    fixture = AgentFixture()
    reply = fixture.open_file()
    data_addr = Address("agent", reply.private_port)
    fixture.run(fixture.agent.filesystem.write("f", 0, b"0123456789"))
    packet = fixture.call(
        data_addr,
        ReadRequest(handle=reply.handle, seq=1, offset=2, length=5),
        lambda d: isinstance(d.message, DataPacket))
    assert packet.message.payload == b"23456"
    assert packet.message.seq == 1


def test_read_past_eof_returns_short_packet():
    fixture = AgentFixture()
    reply = fixture.open_file()
    data_addr = Address("agent", reply.private_port)
    fixture.run(fixture.agent.filesystem.write("f", 0, b"abc"))
    packet = fixture.call(
        data_addr,
        ReadRequest(handle=reply.handle, seq=2, offset=0, length=100),
        lambda d: isinstance(d.message, DataPacket))
    assert packet.message.payload == b"abc"


def test_write_acked_when_all_packets_arrive():
    fixture = AgentFixture()
    reply = fixture.open_file()
    data_addr = Address("agent", reply.private_port)

    def gen():
        req = WriteRequest(handle=reply.handle, op_id=1, offset=0,
                           length=8, packet_size=4)
        yield from fixture.socket.send(data_addr, message=req,
                                       payload_size=wire_size(req))
        for index, piece in enumerate([b"abcd", b"efgh"]):
            packet = WriteData(handle=reply.handle, op_id=1, index=index,
                               offset=index * 4, payload=piece)
            yield from fixture.socket.send(data_addr, message=packet,
                                           payload_size=wire_size(packet))
        return (yield from fixture.socket.recv_wait(
            1.0, lambda d: isinstance(d.message, WriteAck)))

    ack = fixture.run(gen())
    assert ack is not None
    assert fixture.agent.filesystem.file_size("f") == 8


def test_stalled_write_gets_nak_with_missing_indices():
    fixture = AgentFixture(nak_timeout_s=0.02)
    reply = fixture.open_file()
    data_addr = Address("agent", reply.private_port)

    def gen():
        req = WriteRequest(handle=reply.handle, op_id=7, offset=0,
                           length=12, packet_size=4)
        yield from fixture.socket.send(data_addr, message=req,
                                       payload_size=wire_size(req))
        # Send only packet 1 of {0,1,2}; the watchdog must NAK {0,2}.
        packet = WriteData(handle=reply.handle, op_id=7, index=1,
                           offset=4, payload=b"MIDL")
        yield from fixture.socket.send(data_addr, message=packet,
                                       payload_size=wire_size(packet))
        return (yield from fixture.socket.recv_wait(
            1.0, lambda d: isinstance(d.message, WriteNak)))

    nak = fixture.run(gen())
    assert nak is not None
    assert nak.message.missing == (0, 2)


def test_duplicate_write_request_reports_status():
    fixture = AgentFixture()
    reply = fixture.open_file()
    data_addr = Address("agent", reply.private_port)
    req = WriteRequest(handle=reply.handle, op_id=3, offset=0,
                       length=4, packet_size=4)

    def gen():
        yield from fixture.socket.send(data_addr, message=req,
                                       payload_size=wire_size(req))
        packet = WriteData(handle=reply.handle, op_id=3, index=0,
                           offset=0, payload=b"done")
        yield from fixture.socket.send(data_addr, message=packet,
                                       payload_size=wire_size(packet))
        yield from fixture.socket.recv_wait(
            1.0, lambda d: isinstance(d.message, WriteAck))
        # The ACK "was lost": query by re-sending the announcement.
        yield from fixture.socket.send(data_addr, message=req,
                                       payload_size=wire_size(req))
        return (yield from fixture.socket.recv_wait(
            1.0, lambda d: isinstance(d.message, WriteAck)))

    second_ack = fixture.run(gen())
    assert second_ack is not None


def test_duplicate_write_data_ignored():
    fixture = AgentFixture()
    reply = fixture.open_file()
    data_addr = Address("agent", reply.private_port)

    def gen():
        req = WriteRequest(handle=reply.handle, op_id=4, offset=0,
                           length=4, packet_size=4)
        yield from fixture.socket.send(data_addr, message=req,
                                       payload_size=wire_size(req))
        packet = WriteData(handle=reply.handle, op_id=4, index=0,
                           offset=0, payload=b"once")
        for _ in range(3):  # duplicates
            yield from fixture.socket.send(data_addr, message=packet,
                                           payload_size=wire_size(packet))
        yield from fixture.socket.recv_wait(
            0.5, lambda d: isinstance(d.message, WriteAck))

    fixture.run(gen())
    assert fixture.agent.filesystem.file_size("f") == 4


def test_zero_length_write_acks_immediately():
    fixture = AgentFixture()
    reply = fixture.open_file()
    data_addr = Address("agent", reply.private_port)
    ack = fixture.call(
        data_addr,
        WriteRequest(handle=reply.handle, op_id=5, offset=0, length=0,
                     packet_size=4),
        lambda d: isinstance(d.message, WriteAck))
    assert ack is not None


def test_close_releases_handler_and_port():
    fixture = AgentFixture()
    reply = fixture.open_file()
    data_addr = Address("agent", reply.private_port)
    closed = fixture.call(
        data_addr,
        CloseRequest(handle=reply.handle),
        lambda d: isinstance(d.message, CloseReply))
    assert closed is not None
    assert fixture.agent.open_files == 0
    # The private port is gone: further requests are dropped silently.
    silence = fixture.call(
        data_addr,
        ReadRequest(handle=reply.handle, seq=9, offset=0, length=4),
        lambda d: isinstance(d.message, DataPacket), timeout=0.2)
    assert silence is None


def test_crashed_agent_goes_silent():
    fixture = AgentFixture()
    reply = fixture.open_file()
    fixture.agent.crash()
    assert not fixture.agent.alive
    answer = fixture.call(
        fixture.control,
        OpenRequest(file_name="g", create=True, truncate=False,
                    request_id=42),
        lambda d: isinstance(d.message, OpenReply), timeout=0.2)
    assert answer is None


def test_write_request_expected_packets():
    req = WriteRequest(handle=1, op_id=1, offset=0, length=10,
                       packet_size=4)
    assert req.expected_packets == 3
    assert WriteRequest(handle=1, op_id=1, offset=0, length=0,
                        packet_size=4).expected_packets == 0


def test_wire_size_accounting():
    data = DataPacket(handle=1, seq=1, offset=0, payload=b"x" * 100)
    assert wire_size(data) == 132
    nak = WriteNak(handle=1, op_id=1, missing=(1, 2, 3))
    assert wire_size(nak) == 64 + 12
    assert wire_size(CloseRequest(handle=1)) == 64

"""Continuous-media sessions: playback and recording."""

import pytest

from repro.core import build_local_swift
from repro.core.streaming import PlaybackSession, RecordingSession

KB = 1 << 10
MB = 1 << 20


@pytest.fixture()
def deployment():
    return build_local_swift(num_agents=3)


def make_file(deployment, size, name="media"):
    client = deployment.client()
    handle = client.open(name, "w", striping_unit=64 * KB)
    handle.write(b"\xAB" * size)
    return handle


def test_validation(deployment):
    handle = make_file(deployment, 1000)
    with pytest.raises(ValueError):
        PlaybackSession(handle, rate=0)
    with pytest.raises(ValueError):
        PlaybackSession(handle, rate=1.0, chunk_size=0)
    with pytest.raises(ValueError):
        RecordingSession(handle, rate=-5)


def test_playback_glitch_free_on_fast_substrate(deployment):
    handle = make_file(deployment, 1 * MB)
    session = PlaybackSession(handle, rate=1.2 * MB, chunk_size=64 * KB)
    report = session.play()
    assert report.glitch_free
    assert report.bytes_played == 1 * MB
    # Playing 1 MB at 1.2 MB/s takes ~0.83 s of simulated time.
    assert report.duration_s == pytest.approx(1 * MB / (1.2 * MB), rel=0.1)
    assert report.achieved_rate == pytest.approx(1.2 * MB, rel=0.1)


def test_playback_empty_object(deployment):
    client = deployment.client()
    handle = client.open("empty", "w")
    report = PlaybackSession(handle, rate=1e6).play()
    assert report.bytes_played == 0
    assert report.underruns == 0


def test_playback_partial_range(deployment):
    handle = make_file(deployment, 1 * MB)
    session = PlaybackSession(handle, rate=2e6, chunk_size=32 * KB)
    report = session.play(start=100 * KB, length=200 * KB)
    assert report.bytes_played == 200 * KB


def test_playback_underruns_on_slow_path(deployment):
    """A stream faster than the storage path can feed must glitch."""
    handle = make_file(deployment, 512 * KB)
    engine = handle.engine
    # Slow the path down artificially: a large per-packet gap on reads is
    # not available, so throttle via a tiny jitter-buffer and a huge rate:
    # the consumer clock runs far ahead of even the loopback fetches.
    session = PlaybackSession(handle, rate=1e15, chunk_size=4 * KB,
                              readahead_chunks=1)
    report = session.play()
    assert report.bytes_played == 512 * KB
    # At an absurd rate every tick outruns the prefetcher eventually;
    # the stream still completes correctly (stall accounting, no loss).
    assert report.stall_time_s >= 0.0


def test_recording_keeps_up_on_fast_substrate(deployment):
    handle = make_file(deployment, 0, name="rec")
    session = RecordingSession(handle, rate=1.2 * MB, chunk_size=64 * KB)
    report = session.record(duration_s=1.0)
    assert report.kept_up
    assert report.bytes_recorded >= 1 * MB
    assert handle.size == report.bytes_recorded
    # The recorded bytes are really there.
    assert handle.pread(0, 10) == b"\x56" * 10


def test_recording_report_duration(deployment):
    handle = make_file(deployment, 0, name="rec")
    session = RecordingSession(handle, rate=2 * MB, chunk_size=64 * KB)
    report = session.record(duration_s=0.5)
    assert report.duration_s == pytest.approx(0.5, rel=0.2)


def test_playback_on_timed_testbed_capacity():
    """On the real (timed) Ethernet testbed, one ~700 KB/s stream is
    sustainable, but a DVI-rate (1.2 MB/s) stream must starve — the
    paper's very premise that Ethernet-era networks cannot carry video."""
    from repro.prototype.testbed import PrototypeTestbed
    from repro.core.client import SwiftFile

    def play_at(rate):
        testbed = PrototypeTestbed(seed=3)
        testbed.prepare_object("movie", 2 * MB)
        engine = testbed._make_engine("movie")
        testbed._run(engine.open())
        handle = SwiftFile(engine)
        session = PlaybackSession(handle, rate=rate, chunk_size=64 * KB,
                                  readahead_chunks=6)
        report = {}

        def workload():
            report["r"] = yield from session.play_p()

        testbed._run(workload())
        return report["r"]

    sustainable = play_at(600 * 1024)
    starved = play_at(1.2 * MB)
    assert sustainable.underruns <= 1
    assert not starved.glitch_free
    assert starved.stall_time_s > 0.2

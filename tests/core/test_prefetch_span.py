"""Agent clustered read-ahead (prefetch span)."""

import pytest

from repro.core import DistributionAgent, StorageAgent
from repro.des import Environment, StreamFactory
from repro.simdisk import make_scsi_filesystem
from repro.simnet import Network, mips_cost_model

KB = 1 << 10


def test_span_validation():
    env = Environment()
    net = Network(env)
    net.add_ethernet("lan")
    host = net.add_host("a")
    net.connect("a", "lan")
    fs = make_scsi_filesystem(env)
    with pytest.raises(ValueError):
        StorageAgent(env, host, fs, prefetch_span=0)


def build(span, seed=5):
    env = Environment()
    net = Network(env, StreamFactory(seed))
    net.add_token_ring("ring")
    cost = mips_cost_model(100.0)
    client = net.add_host("client", send_cost=cost, recv_cost=cost)
    net.connect("client", "ring", tx_queue_packets=256)
    net.add_host("agent0", send_cost=cost, recv_cost=cost)
    net.connect("agent0", "ring", tx_queue_packets=256)
    fs = make_scsi_filesystem(env)
    agent = StorageAgent(env, net.host("agent0"), fs, prefetch_span=span,
                         socket_buffer=256)
    engine = DistributionAgent(env, client, ["agent0"], "obj",
                               striping_unit=8 * KB, packet_size=8 * KB)
    return env, engine, agent


def run(env, gen):
    return env.run(until=env.process(gen))


def measure_stream_rate(span):
    env, engine, agent = build(span)
    size = 512 * KB
    run(env, engine.open(create=True))
    run(env, engine.write(0, b"s" * size))
    agent.filesystem.flush_cache()
    start = env.now
    run(env, engine.read(0, size))
    return size / KB / (env.now - start)


def test_deeper_span_does_not_slow_single_stream():
    shallow = measure_stream_rate(1)
    deep = measure_stream_rate(8)
    assert deep >= 0.95 * shallow


def test_no_duplicate_fetches_despite_prefetch_overlap():
    # Requests race the in-flight prefetch for the same blocks; in-flight
    # deduplication must keep the disk at exactly one fetch per block.
    env, engine, agent = build(4)
    run(env, engine.open(create=True))
    run(env, engine.write(0, b"p" * (256 * KB)))
    agent.filesystem.flush_cache()
    run(env, engine.read(0, 256 * KB))
    assert agent.filesystem.disk.blocks_served == 256 // 8

"""Bit-identity regression tests for the zero-copy write/read fixes.

Pins the behaviour of the two hidden-copy removals the aliasing pass
motivated: distribution._fetch_packet's preallocated short-read padding
and distribution.write's copy-only-when-writable input freeze (plus the
slice-assigning block installer in simdisk.filesystem._apply_write).
"""

import pytest

from repro.core import build_local_swift
from repro.core.buffered import BufferedSwiftFile


@pytest.fixture()
def handle():
    deployment = build_local_swift(num_agents=3)
    return deployment.client().open("obj", "w", striping_unit=4096)


def test_sparse_write_reads_back_zero_holes(handle):
    # Holes exercise the short-read padding path: agents answer with
    # fewer bytes than requested and the client pads with zeros.
    handle.pwrite(1000, b"end")
    handle.pwrite(0, b"start")
    expected = b"start" + b"\x00" * 995 + b"end"
    assert handle.pread(0, 1003) == expected


def test_readahead_past_eof_pads_identically(handle):
    # The buffered read-ahead requests a full buffer regardless of the
    # object size, driving the padding path on every tail read.
    payload = bytes(range(256))
    buffered = BufferedSwiftFile(handle, buffer_size=4096)
    buffered.write(payload)
    buffered.flush()
    buffered.seek(0)
    assert buffered.read(len(payload)) == payload


def test_readonly_memoryview_input_is_bit_identical():
    payload = bytes(range(256)) * 32

    def run(data):
        deployment = build_local_swift(num_agents=3)
        h = deployment.client().open("obj", "w", striping_unit=4096)
        h.pwrite(0, data)
        return h.pread(0, len(payload)), deployment.env.now

    plain = run(payload)
    through_view = run(memoryview(payload))
    assert plain == through_view
    assert plain[0] == payload


def test_writable_input_is_snapshotted_once(handle):
    source = bytearray(b"immutable-in-flight" * 100)
    original = bytes(source)
    handle.pwrite(0, source)
    source[:] = b"\xff" * len(source)  # caller mutates after the write
    assert handle.pread(0, len(original)) == original


def test_unaligned_overwrites_install_exact_bytes(handle):
    # Odd offsets and spans crossing block boundaries exercise the
    # slice-assigning _apply_write on partial first/last blocks.
    base = bytes((i * 7 + 3) % 256 for i in range(5000))
    handle.pwrite(0, base)
    expected = bytearray(base)
    for offset, piece in ((3, b"XYZ"), (1021, b"Q" * 2050), (4999, b"!")):
        handle.pwrite(offset, piece)
        expected[offset:offset + len(piece)] = piece
    assert handle.pread(0, len(expected)) == bytes(expected)

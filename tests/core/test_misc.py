"""Odds and ends: sessions, errors, deployment helpers, reprs."""

import pytest

from repro.core import (
    AdmissionError,
    AgentFailure,
    ObjectNotFound,
    Reservation,
    SessionClosed,
    StorageMediator,
    SwiftError,
    TransferError,
    build_local_swift,
)

MB = 1 << 20


def test_error_hierarchy():
    for error in (AdmissionError, ObjectNotFound, AgentFailure,
                  TransferError, SessionClosed):
        assert issubclass(error, SwiftError)
    assert issubclass(SwiftError, Exception)


def test_reservation_validation():
    with pytest.raises(ValueError):
        Reservation("a", bandwidth=-1.0, storage_bytes=0)
    with pytest.raises(ValueError):
        Reservation("a", bandwidth=0.0, storage_bytes=-1)


def test_session_repr_and_totals():
    mediator = StorageMediator()
    for index in range(3):
        mediator.register_agent(f"a{index}", 1.0 * MB, 64 * MB)
    session = mediator.negotiate("obj", object_size=MB, data_rate=1.5 * MB)
    assert session.total_reserved_bandwidth == pytest.approx(1.5 * MB)
    text = repr(session)
    assert "open" in text
    session.close()
    assert "closed" in repr(session)


def test_deployment_validation():
    with pytest.raises(ValueError):
        build_local_swift(num_agents=0)
    with pytest.raises(ValueError):
        build_local_swift(num_agents=2, parity=True)


def test_replace_agent_requires_crash_first():
    deployment = build_local_swift(num_agents=3)
    with pytest.raises(ValueError):
        deployment.replace_agent("agent0")


def test_crash_agent_repr():
    deployment = build_local_swift(num_agents=3)
    agent = deployment.agent("agent1")
    assert "up" in repr(agent)
    deployment.crash_agent("agent1")
    assert "CRASHED" in repr(agent)


def test_striping_layout_repr():
    from repro.core import StripeLayout
    assert "agents=3" in repr(StripeLayout(3, 4096))


def test_transfer_stats_repr_is_dataclass():
    from repro.core import TransferStats
    stats = TransferStats()
    assert "packets_sent=0" in repr(stats)


def test_mediator_lookup_missing_agent():
    mediator = StorageMediator()
    with pytest.raises(KeyError):
        mediator.agent("nope")


def test_choose_striping_unit_validation():
    mediator = StorageMediator()
    with pytest.raises(ValueError):
        mediator.choose_striping_unit(1.0, 0)

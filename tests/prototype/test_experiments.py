"""Experiment runners and the paper-style report formatting."""

from repro.des import SampleSet
from repro.prototype import (
    PAPER_TABLE2,
    format_comparison,
    format_table,
    run_scsi_table,
)


def test_run_scsi_table_small():
    rows = run_scsi_table(sizes_mb=(3,), samples=3)
    assert set(rows) == {"Read 3 MB", "Write 3 MB"}
    for samples in rows.values():
        assert len(samples) == 3
    assert 630 <= rows["Read 3 MB"].mean <= 700
    assert 300 <= rows["Write 3 MB"].mean <= 330


def test_samples_differ_across_seeds():
    rows = run_scsi_table(sizes_mb=(3,), samples=4)
    values = rows["Read 3 MB"].samples
    assert len(set(values)) > 1  # random seeks give sample spread


def test_format_table_columns():
    rows = {"Read 3 MB": SampleSet([893, 897, 876, 860, 882, 881, 890, 885])}
    text = format_table("Table X", rows)
    assert "Table X" in text
    assert "Read 3 MB" in text
    assert "x̄" in text and "σ" in text
    assert "90%" in text


def test_format_comparison_ratio():
    rows = {"Read 3 MB": SampleSet([654.0, 656.0])}
    text = format_comparison("cmp", rows, PAPER_TABLE2)
    assert "0.9" in text or "1.0" in text
    assert "654" in text or "655" in text


def test_format_comparison_missing_paper_value():
    rows = {"Exotic op": SampleSet([100.0, 101.0])}
    text = format_comparison("cmp", rows, {})
    assert "—" in text

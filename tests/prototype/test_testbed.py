"""Prototype testbed: Table 1/4 bands, scaling, utilization claims."""

import pytest

from repro.prototype import PrototypeTestbed
from repro.prototype.calibration import ETHERNET_MEASURED_CAPACITY

MB = 1 << 20


def test_single_ethernet_read_band():
    testbed = PrototypeTestbed(seed=11)
    testbed.prepare_object("obj", 3 * MB)
    rate = testbed.measure_read("obj", 3 * MB)
    assert 840 <= rate <= 930  # paper Table 1: 876-897


def test_single_ethernet_write_band():
    testbed = PrototypeTestbed(seed=11)
    rate = testbed.measure_write("obj", 3 * MB)
    assert 840 <= rate <= 920  # paper Table 1: 860-882


def test_network_is_the_bottleneck():
    # §4: "the utilization of the network ranged from 77% to 80% of its
    # measured maximum capacity of 1.12 megabytes/second."
    testbed = PrototypeTestbed(seed=11)
    testbed.prepare_object("obj", 3 * MB)
    rate_kb_s = testbed.measure_read("obj", 3 * MB)
    fraction = rate_kb_s * 1024 / ETHERNET_MEASURED_CAPACITY
    assert 0.70 <= fraction <= 0.85


def test_two_ethernets_double_writes():
    single = PrototypeTestbed(seed=11)
    w1 = single.measure_write("obj", 3 * MB)
    dual = PrototypeTestbed(seed=11, second_ethernet=True)
    w2 = dual.measure_write("obj", 3 * MB)
    assert w2 == pytest.approx(2 * w1, rel=0.10)  # "almost doubled"


def test_two_ethernets_reads_improve_modestly():
    single = PrototypeTestbed(seed=11)
    single.prepare_object("obj", 3 * MB)
    r1 = single.measure_read("obj", 3 * MB)
    dual = PrototypeTestbed(seed=11, second_ethernet=True)
    dual.prepare_object("obj", 3 * MB)
    r2 = dual.measure_read("obj", 3 * MB)
    improvement = r2 / r1 - 1.0
    # §7: "For read, the improvements were only on the order of 25%."
    assert 0.15 <= improvement <= 0.45


def test_swift_beats_local_scsi_by_three_for_writes():
    from repro.baselines import LocalScsiBaseline
    swift = PrototypeTestbed(seed=11)
    swift_rate = swift.measure_write("obj", 3 * MB)
    scsi = LocalScsiBaseline(seed=11)
    scsi_rate = scsi.measure_write("f", 3 * MB)
    # §4: "between a 274% and a 280% increase over the local SCSI disk."
    assert 2.5 <= swift_rate / scsi_rate <= 3.0


def test_swift_beats_nfs_by_eight_for_writes():
    from repro.baselines import NfsBaseline
    swift = PrototypeTestbed(seed=11)
    swift_rate = swift.measure_write("obj", 3 * MB)
    nfs = NfsBaseline(seed=11)
    nfs_rate = nfs.measure_write("f", 3 * MB)
    # §4: "between 767% and 809% better" (i.e. ~8x).
    assert 7.0 <= swift_rate / nfs_rate <= 9.0


def test_swift_beats_nfs_by_two_for_reads():
    from repro.baselines import NfsBaseline
    swift = PrototypeTestbed(seed=11)
    swift.prepare_object("obj", 3 * MB)
    swift_rate = swift.measure_read("obj", 3 * MB)
    nfs = NfsBaseline(seed=11)
    nfs.prepare_file("f", 3 * MB)
    nfs_rate = nfs.measure_read("f", 3 * MB)
    # §4: "between 180% and 197%" (i.e. nearly double).
    assert 1.6 <= swift_rate / nfs_rate <= 2.2


def test_data_integrity_through_the_timed_stack():
    # The measured transfers move real bytes: verify a read-back matches.
    testbed = PrototypeTestbed(seed=11)
    engine = testbed._make_engine("obj")
    payload = bytes((i * 251) % 256 for i in range(300_000))

    def workload():
        yield from engine.open(create=True)
        yield from engine.write(0, payload)
        data = yield from engine.read(0, len(payload))
        assert data == payload
        yield from engine.close()

    testbed._run(workload())


def test_agent_count_scaling_until_saturation():
    # §1: "data-rates scale almost linearly in the number of servers" —
    # until the single Ethernet saturates (adding a 4th agent "would only
    # saturate the network", §4).
    rates = {}
    for agents in [1, 2, 3]:
        testbed = PrototypeTestbed(agents_per_segment=agents, seed=11)
        testbed.prepare_object("obj", 3 * MB)
        rates[agents] = testbed.measure_read("obj", 3 * MB)
    # Sub-linear factors reflect shared-cable queueing; the aggregate
    # still grows strongly with each added server.
    assert rates[2] > rates[1] * 1.4
    assert rates[3] > rates[2] * 1.15


def test_validation():
    with pytest.raises(ValueError):
        PrototypeTestbed(agents_per_segment=0)

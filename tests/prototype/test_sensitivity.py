"""Bottleneck location: §4's claims, tested component by component."""

import pytest

from repro.prototype.sensitivity import sensitivity_table
from repro.prototype.testbed import PrototypeTestbed

MB = 1 << 20


def test_unknown_component_rejected():
    with pytest.raises(ValueError):
        PrototypeTestbed(component_scales={"warp_drive": 2.0})
    with pytest.raises(ValueError):
        sensitivity_table(scale=0)
    with pytest.raises(ValueError):
        sensitivity_table(operation="fsync")


def test_reads_are_network_bound():
    # §4: "the limiting performance factor was the Ethernet-based
    # local-area network" — a 2x network moves reads a lot; a 2x disk
    # moves them not at all (prefetch hides the disk).
    table = sensitivity_table("read", scale=2.0, seed=23)
    assert table["network"] > 1.25
    assert table["agent_disk"] == pytest.approx(1.0, abs=0.05)


def test_read_gain_from_hosts_is_secondary():
    table = sensitivity_table("read", scale=2.0, seed=23)
    # Host CPUs matter (they are part of the per-packet pipeline) but
    # less than the wire.
    assert table["client_cpu"] < table["network"]
    assert table["agent_cpu"] < table["network"]


def test_writes_do_not_care_about_disks():
    # Asynchronous agent writes never put the disk on the critical path.
    table = sensitivity_table("write", scale=2.0, seed=23)
    assert table["agent_disk"] == pytest.approx(1.0, abs=0.02)


def test_all_components_together_scale_the_system():
    # Model self-consistency: doubling every component doubles the rate.
    from repro.prototype.sensitivity import _measure
    base = _measure("read", 3 * MB, 23, None)
    doubled = _measure("read", 3 * MB, 23,
                       {"network": 2.0, "client_cpu": 2.0,
                        "agent_cpu": 2.0, "agent_disk": 2.0})
    assert doubled / base == pytest.approx(2.0, rel=0.05)


def test_faster_network_alone_hits_the_next_bottleneck():
    # A 4x wire on its own gains little: the cycle outruns the agents'
    # depth-1 prefetch and the disks re-enter the critical path — the
    # "replace the limiting component" analysis the paper argues for.
    fast = sensitivity_table("read", scale=4.0, seed=23)
    assert 1.0 < fast["network"] < 1.5

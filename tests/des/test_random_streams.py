"""Seeded random stream behaviour."""

import math

import pytest

from repro.des import RandomStream, StreamFactory


def test_same_seed_same_sequence():
    a = RandomStream(42)
    b = RandomStream(42)
    assert [a.exponential(1.0) for _ in range(10)] == \
           [b.exponential(1.0) for _ in range(10)]


def test_different_seeds_differ():
    a = RandomStream(1)
    b = RandomStream(2)
    assert [a.uniform(0, 1) for _ in range(5)] != \
           [b.uniform(0, 1) for _ in range(5)]


def test_exponential_mean_converges():
    stream = RandomStream(7)
    draws = [stream.exponential(16.0) for _ in range(20000)]
    assert math.fsum(draws) / len(draws) == pytest.approx(16.0, rel=0.05)


def test_exponential_rejects_nonpositive_mean():
    stream = RandomStream(0)
    with pytest.raises(ValueError):
        stream.exponential(0.0)


def test_uniform_mean_is_paper_seek_model():
    # §5.1 models seek as uniform with a given average: range [0, 2*mean].
    stream = RandomStream(3)
    draws = [stream.uniform_mean(16.0) for _ in range(20000)]
    assert all(0.0 <= d <= 32.0 for d in draws)
    assert math.fsum(draws) / len(draws) == pytest.approx(16.0, rel=0.05)


def test_uniform_mean_rejects_negative():
    stream = RandomStream(0)
    with pytest.raises(ValueError):
        stream.uniform_mean(-1.0)


def test_bernoulli_extremes():
    stream = RandomStream(5)
    assert not any(stream.bernoulli(0.0) for _ in range(100))
    assert all(stream.bernoulli(1.0) for _ in range(100))


def test_bernoulli_rejects_out_of_range():
    stream = RandomStream(0)
    with pytest.raises(ValueError):
        stream.bernoulli(1.5)


def test_uniform_rejects_empty_interval():
    stream = RandomStream(0)
    with pytest.raises(ValueError):
        stream.uniform(2.0, 1.0)


def test_factory_streams_are_independent_of_creation_order():
    factory_a = StreamFactory(99)
    factory_b = StreamFactory(99)
    # Create in different orders; the named streams must still agree.
    a_net = factory_a.stream("net")
    factory_a.stream("disk")
    factory_b.stream("disk")
    b_net = factory_b.stream("net")
    assert [a_net.uniform(0, 1) for _ in range(5)] == \
           [b_net.uniform(0, 1) for _ in range(5)]


def test_factory_caches_streams():
    factory = StreamFactory(1)
    assert factory.stream("x") is factory.stream("x")
    assert "x" in factory


def test_factory_master_seed_changes_streams():
    a = StreamFactory(1).stream("net")
    b = StreamFactory(2).stream("net")
    assert [a.uniform(0, 1) for _ in range(5)] != \
           [b.uniform(0, 1) for _ in range(5)]


def test_shuffled_preserves_multiset():
    stream = RandomStream(11)
    items = list(range(20))
    shuffled = stream.shuffled(items)
    assert sorted(shuffled) == items
    assert items == list(range(20))  # original untouched

"""Seeded random stream behaviour."""

import math

import pytest

from repro.des import RandomStream, StreamFactory


def test_same_seed_same_sequence():
    a = RandomStream(42)
    b = RandomStream(42)
    assert [a.exponential(1.0) for _ in range(10)] == \
           [b.exponential(1.0) for _ in range(10)]


def test_different_seeds_differ():
    a = RandomStream(1)
    b = RandomStream(2)
    assert [a.uniform(0, 1) for _ in range(5)] != \
           [b.uniform(0, 1) for _ in range(5)]


def test_exponential_mean_converges():
    stream = RandomStream(7)
    draws = [stream.exponential(16.0) for _ in range(20000)]
    assert math.fsum(draws) / len(draws) == pytest.approx(16.0, rel=0.05)


def test_exponential_rejects_nonpositive_mean():
    stream = RandomStream(0)
    with pytest.raises(ValueError):
        stream.exponential(0.0)


def test_uniform_mean_is_paper_seek_model():
    # §5.1 models seek as uniform with a given average: range [0, 2*mean].
    stream = RandomStream(3)
    draws = [stream.uniform_mean(16.0) for _ in range(20000)]
    assert all(0.0 <= d <= 32.0 for d in draws)
    assert math.fsum(draws) / len(draws) == pytest.approx(16.0, rel=0.05)


def test_uniform_mean_rejects_negative():
    stream = RandomStream(0)
    with pytest.raises(ValueError):
        stream.uniform_mean(-1.0)


def test_bernoulli_extremes():
    stream = RandomStream(5)
    assert not any(stream.bernoulli(0.0) for _ in range(100))
    assert all(stream.bernoulli(1.0) for _ in range(100))


def test_bernoulli_rejects_out_of_range():
    stream = RandomStream(0)
    with pytest.raises(ValueError):
        stream.bernoulli(1.5)


def test_uniform_rejects_empty_interval():
    stream = RandomStream(0)
    with pytest.raises(ValueError):
        stream.uniform(2.0, 1.0)


def test_factory_streams_are_independent_of_creation_order():
    factory_a = StreamFactory(99)
    factory_b = StreamFactory(99)
    # Create in different orders; the named streams must still agree.
    a_net = factory_a.stream("net")
    factory_a.stream("disk")
    factory_b.stream("disk")
    b_net = factory_b.stream("net")
    assert [a_net.uniform(0, 1) for _ in range(5)] == \
           [b_net.uniform(0, 1) for _ in range(5)]


def test_factory_caches_streams():
    factory = StreamFactory(1)
    assert factory.stream("x") is factory.stream("x")
    assert "x" in factory


def test_factory_master_seed_changes_streams():
    a = StreamFactory(1).stream("net")
    b = StreamFactory(2).stream("net")
    assert [a.uniform(0, 1) for _ in range(5)] != \
           [b.uniform(0, 1) for _ in range(5)]


def test_shuffled_preserves_multiset():
    stream = RandomStream(11)
    items = list(range(20))
    shuffled = stream.shuffled(items)
    assert sorted(shuffled) == items
    assert items == list(range(20))  # original untouched


# -- block sampling -----------------------------------------------------------
#
# The float distributions serve from a buffered block of raw uniforms
# (see the module docstring of repro.des.random_streams).  The contract:
# the draw sequence is bit-identical to the per-sample random.Random
# reference, for every distribution, at every block size — including the
# refill-boundary sizes 1, block-1, block and block+1 — and mixing in a
# getrandbits-based method degrades the stream to exactly the state a
# per-sample run would occupy.

import random

from repro.des.random_streams import DEFAULT_BLOCK_SIZE

BOUNDARY_SIZES = [1, DEFAULT_BLOCK_SIZE - 1, DEFAULT_BLOCK_SIZE,
                  DEFAULT_BLOCK_SIZE + 1]

REFERENCE_DRAWS = {
    "exponential": lambda rng: rng.expovariate(1.0 / 3.0),
    "uniform": lambda rng: rng.uniform(2.0, 5.0),
    "uniform_mean": lambda rng: rng.uniform(0.0, 2.0 * 4.5),
    "bernoulli": lambda rng: rng.random() < 0.3,
}

STREAM_DRAWS = {
    "exponential": lambda s: s.exponential(3.0),
    "uniform": lambda s: s.uniform(2.0, 5.0),
    "uniform_mean": lambda s: s.uniform_mean(4.5),
    "bernoulli": lambda s: s.bernoulli(0.3),
}


@pytest.mark.parametrize("name", sorted(STREAM_DRAWS))
@pytest.mark.parametrize("block_size", BOUNDARY_SIZES)
def test_block_sampling_matches_per_sample_reference(name, block_size):
    count = 2 * DEFAULT_BLOCK_SIZE + 3  # always crosses a refill boundary
    stream = RandomStream(1234, block_size=block_size)
    reference = random.Random(1234)
    draw, ref = STREAM_DRAWS[name], REFERENCE_DRAWS[name]
    assert [draw(stream) for _ in range(count)] == \
           [ref(reference) for _ in range(count)]


@pytest.mark.parametrize("block_size", BOUNDARY_SIZES)
def test_mixed_float_sequence_matches_reference(block_size):
    stream = RandomStream(77, block_size=block_size)
    reference = random.Random(77)
    names = sorted(STREAM_DRAWS)
    count = 3 * DEFAULT_BLOCK_SIZE + 1
    got = [STREAM_DRAWS[names[i % 4]](stream) for i in range(count)]
    want = [REFERENCE_DRAWS[names[i % 4]](reference) for i in range(count)]
    assert got == want


@pytest.mark.parametrize("floats_before", [0, 1, 10, DEFAULT_BLOCK_SIZE,
                                           DEFAULT_BLOCK_SIZE + 5])
def test_degrade_replays_exactly_the_served_draws(floats_before):
    # After any number of buffered float draws, a getrandbits-based call
    # must see the core exactly where a per-sample run would have it —
    # the unserved read-ahead is discarded, the served draws are replayed.
    stream = RandomStream(9, block_size=DEFAULT_BLOCK_SIZE)
    reference = random.Random(9)
    for _ in range(floats_before):
        assert stream.exponential(2.0) == reference.expovariate(0.5)
    assert stream.randint(0, 10**9) == reference.randint(0, 10**9)
    # Degraded mode keeps matching, floats included.
    assert stream.choice(range(1000)) == reference.choice(range(1000))
    assert [stream.uniform(0, 1) for _ in range(10)] == \
           [reference.uniform(0, 1) for _ in range(10)]
    assert stream.shuffled(range(30)) == \
           (lambda items: (reference.shuffle(items), items)[1])(list(range(30)))


def test_degraded_stream_stays_degraded():
    stream = RandomStream(5)
    stream.exponential(1.0)
    stream.randint(0, 3)
    reference = random.Random(5)
    reference.expovariate(1.0)
    reference.randint(0, 3)
    # No buffering after degrade: long float runs still match per-sample.
    assert [stream.exponential(1.0) for _ in range(600)] == \
           [reference.expovariate(1.0) for _ in range(600)]


def test_reset_restores_initial_sequence_and_buffering():
    stream = RandomStream(21)
    first = [stream.exponential(1.0) for _ in range(5)]
    stream.randint(0, 100)  # degrade
    stream.reset()
    assert [stream.exponential(1.0) for _ in range(5)] == first
    # reset() re-enables read-ahead (pops come from a refilled block).
    assert stream._block, "reset stream should buffer again"


def test_factory_reset_reproduces_fresh_factory():
    factory = StreamFactory(99)
    stream = factory.stream("net")
    [stream.exponential(1.0) for _ in range(700)]
    factory.stream("disk").randint(0, 9)
    factory.reset()
    fresh = StreamFactory(99)
    assert [factory.stream("net").uniform(0, 1) for _ in range(5)] == \
           [fresh.stream("net").uniform(0, 1) for _ in range(5)]
    assert [factory.stream("disk").randint(0, 9) for _ in range(5)] == \
           [fresh.stream("disk").randint(0, 9) for _ in range(5)]


def test_factory_propagates_block_size():
    factory = StreamFactory(1, block_size=3)
    assert factory.stream("x")._block_size == 3


def test_block_size_must_be_positive():
    with pytest.raises(ValueError):
        RandomStream(0, block_size=0)


def test_observer_fires_per_draw_not_per_refill():
    stream = RandomStream(8, block_size=4)
    seen = []
    stream.observer = seen.append
    for _ in range(10):
        stream.uniform_mean(1.0)
    assert seen == [stream] * 10

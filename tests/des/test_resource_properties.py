"""Property-based invariants of the Resource under random workloads."""

from hypothesis import given, settings, strategies as st

from repro.des import Environment, Resource


workload = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=2.0),   # arrival offset
        st.floats(min_value=0.001, max_value=1.0),  # hold time
        st.integers(min_value=0, max_value=3),      # priority class
    ),
    min_size=1, max_size=25,
)


@settings(max_examples=50, deadline=None)
@given(jobs=workload, capacity=st.integers(min_value=1, max_value=4))
def test_capacity_never_exceeded(jobs, capacity):
    env = Environment()
    resource = Resource(env, capacity=capacity)
    peak = [0]

    def user(env, offset, hold, priority):
        yield env.timeout(offset)
        with resource.request(priority=priority) as request:
            yield request
            peak[0] = max(peak[0], resource.count)
            assert resource.count <= capacity
            yield env.timeout(hold)

    for offset, hold, priority in jobs:
        env.process(user(env, offset, hold, priority))
    env.run()
    assert 1 <= peak[0] <= capacity
    assert resource.count == 0
    assert resource.queue_length == 0


@settings(max_examples=50, deadline=None)
@given(jobs=workload)
def test_total_service_time_conserved(jobs):
    """With capacity 1 the busy time equals the sum of hold times."""
    env = Environment()
    resource = Resource(env, capacity=1)
    busy = [0.0]

    def user(env, offset, hold, _priority):
        yield env.timeout(offset)
        with resource.request() as request:
            yield request
            start = env.now
            yield env.timeout(hold)
            busy[0] += env.now - start

    for job in jobs:
        env.process(user(env, *job))
    env.run()
    expected = sum(hold for _, hold, _ in jobs)
    assert abs(busy[0] - expected) < 1e-9
    # The run cannot end before all work has been serialised.
    assert env.now >= expected - 1e-9


@settings(max_examples=30, deadline=None)
@given(jobs=workload)
def test_same_priority_is_fifo(jobs):
    """Equal-priority requests are granted in request order."""
    env = Environment()
    resource = Resource(env, capacity=1)
    requested = []
    granted = []

    def user(env, name, offset, hold):
        yield env.timeout(offset)
        requested.append((env.now, name))
        with resource.request() as request:
            yield request
            granted.append(name)
            yield env.timeout(hold)

    for index, (offset, hold, _) in enumerate(jobs):
        env.process(user(env, index, offset, hold))
    env.run()
    expected = [name for _, name in sorted(requested,
                                           key=lambda t: (t[0],
                                                          requested.index(t)))]
    assert granted == expected

"""Kernel edge cases beyond the basic semantics tests."""

import pytest

from repro.des import (
    Environment,
    EmptySchedule,
    Event,
    Interrupt,
    Resource,
    Store,
)


def test_run_until_already_processed_event():
    env = Environment()
    event = env.event()
    event.succeed("early")
    env.run()  # processes it
    assert env.run(until=event) == "early"


def test_run_until_event_never_triggered_raises():
    env = Environment()
    target = env.event()
    env.timeout(1.0)  # something to drain
    with pytest.raises(RuntimeError, match="never triggered"):
        env.run(until=target)


def test_any_of_with_failed_event_propagates():
    env = Environment()
    caught = []

    def failer(env):
        yield env.timeout(1.0)
        raise ValueError("bad")

    def waiter(env):
        try:
            yield env.any_of([env.process(failer(env)), env.timeout(10.0)])
        except ValueError as exc:
            caught.append(str(exc))

    env.process(waiter(env))
    env.run()
    assert caught == ["bad"]


def test_all_of_value_preserves_completion_order():
    env = Environment()
    order = []

    def waiter(env):
        slow = env.timeout(2.0, "slow")
        fast = env.timeout(1.0, "fast")
        values = yield env.all_of([slow, fast])
        order.extend(values.values())

    env.process(waiter(env))
    env.run()
    assert order == ["fast", "slow"]


def test_interrupt_while_waiting_on_resource():
    env = Environment()
    resource = Resource(env, capacity=1)
    outcomes = []

    def holder(env):
        with resource.request() as req:
            yield req
            yield env.timeout(10.0)

    def victim(env):
        request = resource.request()
        try:
            yield request
        except Interrupt:
            request.cancel()
            outcomes.append("interrupted")

    def attacker(env, process):
        yield env.timeout(1.0)
        process.interrupt()

    env.process(holder(env))
    victim_process = env.process(victim(env))
    env.process(attacker(env, victim_process))
    env.run()
    assert outcomes == ["interrupted"]
    # The cancelled request must not still occupy the queue.
    assert resource.queue_length == 0


def test_store_purge_removes_matching():
    env = Environment()
    store = Store(env)
    for value in range(6):
        store.put(value)
    env.run()
    removed = store.purge(lambda v: v % 2 == 0)
    assert removed == 3
    assert store.items == [1, 3, 5]


def test_store_get_cancel_is_idempotent_after_fire():
    env = Environment()
    store = Store(env)
    store.put("item")
    get = store.get()
    env.run()
    assert get.value == "item"
    get.cancel()  # no-op: already satisfied
    assert store.size == 0


def test_nested_all_of_conditions():
    env = Environment()
    results = []

    def waiter(env):
        inner = env.all_of([env.timeout(1.0, "a"), env.timeout(2.0, "b")])
        outer = env.all_of([inner, env.timeout(3.0, "c")])
        values = yield outer
        results.append(len(values))

    env.process(waiter(env))
    env.run()
    assert results == [2]
    assert env.now == 3.0


def test_resource_released_by_exception_in_with_block():
    env = Environment()
    resource = Resource(env, capacity=1)
    got = []

    def crasher(env):
        with resource.request() as req:
            yield req
            raise RuntimeError("boom")

    def patient(env):
        yield env.timeout(0.1)
        with resource.request() as req:
            yield req
            got.append(env.now)

    crash_process = env.process(crasher(env))
    env.process(patient(env))
    with pytest.raises(RuntimeError):
        env.run()
    env.run()  # continue after the failure surfaced
    assert got == [0.1]


def test_event_defuse_inside_condition():
    # A condition defuses its failed member; the member's failure must not
    # also escape via step().
    env = Environment()

    def failer(env):
        yield env.timeout(1.0)
        raise KeyError("inner")

    def watcher(env):
        try:
            yield env.all_of([env.process(failer(env))])
        except KeyError:
            pass

    env.process(watcher(env))
    env.run()  # no raise


def test_clock_never_goes_backwards():
    env = Environment()
    stamps = []

    def ticker(env):
        for delay in [0.5, 0.0, 1.5, 0.0, 0.25]:
            yield env.timeout(delay)
            stamps.append(env.now)

    env.process(ticker(env))
    env.run()
    assert stamps == sorted(stamps)


def test_step_after_drain_raises_empty():
    env = Environment()
    env.timeout(1.0)
    env.run()
    with pytest.raises(EmptySchedule):
        env.step()


def test_event_repr_states():
    env = Environment()
    event = Event(env)
    assert "pending" in repr(event)
    event.succeed()
    assert "triggered" in repr(event)
    env.run()
    assert "processed" in repr(event)

"""Event free-list recycling: the fast path must be invisible.

The engine pools processed Timeout/Release/Request instances and re-arms
them on later calls.  These tests pin the contract boundaries: recycling
only in monitor-free environments, re-armed events carry fresh state,
identity reuse never changes simulation results, and the one historically
sharp edge — cancel-then-exit on a granted Request — stays safe.
"""

from repro.des import Environment, Resource
from repro.des.engine import _POOL_LIMIT


def test_timeouts_are_recycled_and_re_armed():
    env = Environment()
    seen = []

    def proc(env):
        for index in range(10):
            timeout = env.timeout(0.5, value=index)
            seen.append(id(timeout))
            got = yield timeout
            assert got == index, "re-armed timeout must carry the new value"

    env.process(proc(env))
    env.run()
    assert env.now == 5.0
    # After the first yield returns, the free list feeds every later call.
    assert len(set(seen)) < len(seen), "pool never recycled a Timeout"
    assert len(env._timeout_pool) >= 1


def test_pool_is_bounded():
    env = Environment()

    def proc(env):
        yield env.all_of([env.timeout(1.0) for _ in range(3 * _POOL_LIMIT)])

    env.process(proc(env))
    env.run()
    assert len(env._timeout_pool) <= _POOL_LIMIT


def test_monitors_disable_recycling():
    env = Environment()
    env.add_step_monitor(lambda when, event: None)

    def proc(env):
        for _ in range(5):
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    assert env._timeout_pool == []
    assert env._release_pool == []
    assert env._request_pool == []


def test_pooled_events_arrive_with_empty_callbacks():
    env = Environment()

    def proc(env):
        for _ in range(4):
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    for event in (env._timeout_pool + env._release_pool
                  + env._request_pool):
        assert event.callbacks == [], "pool invariant: empty list"


def _contended_run(tie_break_seed=None):
    """The bench workload in miniature; returns the completion log."""
    env = Environment(tie_break_seed=tie_break_seed)
    resource = Resource(env, capacity=2)
    log = []

    def worker(env, name):
        for turn in range(20):
            with resource.request() as request:
                yield request
                yield env.timeout(0.001)
            log.append((env.now, name, turn))

    for name in range(6):
        env.process(worker(env, name))
    env.run()
    return log


def test_recycling_is_deterministic_and_invisible():
    first = _contended_run()
    second = _contended_run()
    assert first == second
    # The slow path (tie-shuffle mode disables the direct-push fast path
    # but not pooling) must serve the same requests in some complete order.
    shuffled = _contended_run(tie_break_seed=9)
    assert len(shuffled) == len(first)
    assert {entry[1:] for entry in shuffled} == {e[1:] for e in first}


def test_requests_recycle_only_after_with_block_exit():
    env = Environment()
    resource = Resource(env, capacity=1)

    def holder(env):
        with resource.request() as request:
            yield request
            # Granted and inside the with-block: the object must NOT be
            # in the free list while we still hold it.
            assert request not in env._request_pool
            yield env.timeout(1.0)
        assert request.callbacks is None or request.callbacks == []

    env.process(holder(env))
    env.run()
    assert len(env._request_pool) == 1


def test_cancel_then_exit_does_not_double_release():
    """A granted request cancelled early, then exited: the explicit
    release inside the block plus __exit__'s release must free exactly
    one slot — and never evict another holder."""
    env = Environment()
    resource = Resource(env, capacity=1)
    order = []

    def early_canceller(env):
        with resource.request() as request:
            yield request
            order.append("got")
            yield env.timeout(1.0)
            resource.release(request)  # explicit early release
            yield env.timeout(1.0)     # __exit__ releases again at exit
        order.append("out")

    def waiter(env):
        yield env.timeout(1.5)
        with resource.request() as request:
            yield request
            order.append("waiter-got")
            yield env.timeout(5.0)
        order.append("waiter-out")

    env.process(early_canceller(env))
    env.process(waiter(env))
    env.run()
    assert order == ["got", "waiter-got", "out", "waiter-out"]
    assert len(resource.users) == 0


def test_unyielded_request_cancel_withdraws_cleanly():
    env = Environment()
    resource = Resource(env, capacity=1)
    log = []

    def hesitant(env):
        with resource.request():
            # Never yield the request: __exit__ must withdraw it whether
            # or not it was already granted.
            yield env.timeout(0.5)
        log.append("abandoned")

    def steady(env):
        yield env.timeout(1.0)
        with resource.request() as request:
            yield request
            log.append("steady-got")

    env.process(hesitant(env))
    env.process(steady(env))
    env.run()
    assert log == ["abandoned", "steady-got"]
    assert len(resource.users) == 0


def test_pooling_with_value_carrying_timeouts():
    env = Environment()
    results = []

    def producer(env):
        for index in range(8):
            value = yield env.timeout(0.25, value=("payload", index))
            results.append(value)

    env.process(producer(env))
    env.run()
    assert results == [("payload", index) for index in range(8)]

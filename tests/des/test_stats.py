"""Statistics: Welford accumulator, confidence intervals, utilization."""

import math
import statistics

import pytest
from hypothesis import given, strategies as st

from repro.des import (
    Environment,
    OnlineStats,
    SampleSet,
    UtilizationMonitor,
    student_t_critical,
)


def test_online_stats_known_values():
    stats = OnlineStats()
    stats.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
    assert stats.count == 8
    assert stats.mean == pytest.approx(5.0)
    assert stats.minimum == 2.0
    assert stats.maximum == 9.0
    assert stats.stdev == pytest.approx(statistics.stdev(
        [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]))


def test_online_stats_empty():
    stats = OnlineStats()
    assert stats.mean == 0.0
    assert stats.variance == 0.0
    with pytest.raises(ValueError):
        _ = stats.minimum


def test_confidence_interval_needs_two_samples():
    stats = OnlineStats()
    stats.add(1.0)
    with pytest.raises(ValueError):
        stats.confidence_interval()


def test_student_t_eight_samples_90pct():
    # The paper's tables: 8 samples -> 7 degrees of freedom, t = 1.895.
    assert student_t_critical(7, 0.90) == pytest.approx(1.895)


def test_student_t_large_df_uses_normal():
    assert student_t_critical(1000, 0.95) == pytest.approx(1.960)


def test_student_t_unsupported_confidence():
    with pytest.raises(ValueError):
        student_t_critical(7, 0.80)


def test_sample_set_row_matches_paper_format():
    samples = SampleSet([893.0, 897.0, 876.0, 860.0, 882.0, 881.0, 890.0, 885.0])
    row = samples.row()
    assert set(row) == {"mean", "stdev", "min", "max", "ci_low", "ci_high"}
    assert row["ci_low"] < row["mean"] < row["ci_high"]
    assert row["min"] <= row["ci_low"] or row["min"] <= row["mean"]


def test_sample_set_interval_contains_mean():
    samples = SampleSet([10.0, 12.0, 11.0, 13.0])
    interval = samples.confidence_interval(0.95)
    assert interval.contains(samples.mean)
    assert interval.width > 0


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=2, max_size=50))
def test_online_stats_matches_statistics_module(values):
    stats = OnlineStats()
    stats.extend(values)
    assert stats.mean == pytest.approx(statistics.fmean(values), abs=1e-6)
    assert stats.stdev == pytest.approx(statistics.stdev(values),
                                        rel=1e-6, abs=1e-6)
    assert stats.minimum == min(values)
    assert stats.maximum == max(values)


@given(st.lists(st.floats(min_value=0.1, max_value=1e3,
                          allow_nan=False, allow_infinity=False),
                min_size=3, max_size=30))
def test_wider_confidence_is_wider_interval(values):
    stats = OnlineStats()
    stats.extend(values)
    ci90 = stats.confidence_interval(0.90)
    ci99 = stats.confidence_interval(0.99)
    assert ci99.width >= ci90.width - 1e-12


def test_utilization_monitor_half_busy():
    env = Environment()
    monitor = UtilizationMonitor(env)

    def device(env):
        monitor.busy()
        yield env.timeout(5.0)
        monitor.idle()
        yield env.timeout(5.0)

    env.process(device(env))
    env.run()
    assert monitor.utilization() == pytest.approx(0.5)


def test_utilization_monitor_open_interval_counts():
    env = Environment()
    monitor = UtilizationMonitor(env)

    def device(env):
        yield env.timeout(2.0)
        monitor.busy()
        yield env.timeout(2.0)
        # never goes idle

    env.process(device(env))
    env.run()
    assert monitor.utilization() == pytest.approx(0.5)


def test_utilization_monitor_idempotent_marks():
    env = Environment()
    monitor = UtilizationMonitor(env)
    monitor.busy()
    monitor.busy()
    monitor.idle()
    monitor.idle()
    assert monitor.busy_time == 0.0
    assert monitor.utilization() == 0.0


def test_histogram_quantiles_nearest_rank():
    from repro.des import Histogram
    histogram = Histogram()
    histogram.extend(float(v) for v in range(1, 101))
    assert histogram.p50() == 50.0
    assert histogram.p99() == 99.0
    assert histogram.quantile(0.0) == 1.0
    assert histogram.quantile(1.0) == 100.0


def test_histogram_validation():
    from repro.des import Histogram
    histogram = Histogram()
    with pytest.raises(ValueError):
        histogram.quantile(0.5)  # empty
    histogram.add(1.0)
    with pytest.raises(ValueError):
        histogram.quantile(1.5)
    with pytest.raises(ValueError):
        histogram.buckets(0)


def test_histogram_buckets_partition_samples():
    from repro.des import Histogram
    histogram = Histogram()
    histogram.extend([0.0, 1.0, 2.0, 3.0, 9.9])
    buckets = histogram.buckets(5)
    assert sum(n for _, _, n in buckets) == 5
    assert buckets[0][0] == 0.0
    assert buckets[-1][1] == pytest.approx(9.9)


def test_histogram_single_value_bucket():
    from repro.des import Histogram
    histogram = Histogram()
    histogram.extend([7.0, 7.0, 7.0])
    assert histogram.buckets(4) == [(7.0, 7.0, 3)]
    assert histogram.mean == 7.0


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=200))
def test_histogram_quantile_bounds_property(values):
    from repro.des import Histogram
    histogram = Histogram()
    histogram.extend(values)
    assert histogram.quantile(0.0) == min(values)
    assert histogram.quantile(1.0) == max(values)
    assert min(values) <= histogram.p50() <= max(values)

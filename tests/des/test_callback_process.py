"""CallbackProcess semantics: waits, holds, joins, failures, interrupts.

Every behaviour here is pinned against the generator ``Process``
reference: same timestamps, same resource grant order, same failure
propagation.  The mode A/B on the full §5 model lives in
tests/sim/test_process_modes.py; this file covers the kernel primitive
in isolation.
"""

import pytest

from repro.des import (
    CallbackProcess,
    Environment,
    Interrupt,
    Resource,
    UtilizationMonitor,
)


class Stepper(CallbackProcess):
    """Waits two timeouts, then finishes with a value."""

    __slots__ = ("log",)

    def __init__(self, env, log, immediate=False):
        self.log = log
        super().__init__(env, immediate=immediate)

    def _start(self, value):
        self.log.append(("start", self.env.now))
        self.wait(self.env.timeout(1.0), self._mid)

    def _mid(self, value):
        self.log.append(("mid", self.env.now))
        self.wait(self.env.timeout(2.0), self._end)

    def _end(self, value):
        self.log.append(("end", self.env.now))
        self._finish("done")


def test_states_advance_through_timeouts():
    env = Environment()
    log = []
    process = Stepper(env, log)
    env.run()
    assert log == [("start", 0.0), ("mid", 1.0), ("end", 3.0)]
    assert not process.is_alive
    assert process.value == "done"


def test_generator_process_can_wait_on_callback_process():
    env = Environment()
    results = []

    def waiter(env, target):
        value = yield target
        results.append((value, env.now))

    target = Stepper(env, [])
    env.process(waiter(env, target))
    env.run()
    assert results == [("done", 3.0)]


def test_callback_process_can_wait_on_generator_process():
    env = Environment()
    log = []

    def child(env):
        yield env.timeout(2.5)
        return "child-done"

    class Parent(CallbackProcess):
        __slots__ = ()

        def _start(self, value):
            self.wait(env.process(child(env)), self._got)

        def _got(self, value):
            log.append((value, self.env.now))
            self._finish()

    Parent(env)
    env.run()
    assert log == [("child-done", 2.5)]


def test_start_order_follows_creation_order():
    env = Environment()
    log = []
    Stepper(env, log)
    second = []
    Stepper(env, second)
    env.run()
    # Both started at t=0; the first-created dispatched first.  The log
    # proves it observed time first (identical here), so pin via the
    # init-event ordering instead: interleave a marker.
    assert log[0] == ("start", 0.0) and second[0] == ("start", 0.0)


def test_immediate_start_runs_inside_constructor():
    env = Environment()
    log = []
    Stepper(env, log, immediate=True)
    assert log == [("start", 0.0)]  # before env.run()
    env.run()
    assert log == [("start", 0.0), ("mid", 1.0), ("end", 3.0)]


def test_hold_matches_generator_hold_timing_and_queueing():
    """A callback hold and a generator hold contend identically."""

    def run(order):
        env = Environment()
        resource = Resource(env, capacity=1)
        monitor = UtilizationMonitor(env)
        log = []

        def generator_hold(env):
            with resource.request() as grant:
                yield grant
                monitor.busy()
                yield env.timeout(1.0)
                if resource.queue_length == 0:
                    monitor.idle()
            log.append(("gen", env.now))

        class CallbackHold(CallbackProcess):
            __slots__ = ()

            def _start(self, value):
                self.hold(resource, 1.0, self._held, monitor=monitor)

            def _held(self, value):
                log.append(("cb", env.now))
                self._finish()

        for kind in order:
            if kind == "gen":
                env.process(generator_hold(env))
            else:
                CallbackHold(env)
        env.run()
        return log, monitor.utilization() if env.now else None, env.now

    log, _, now = run(["gen", "cb"])
    assert log == [("gen", 1.0), ("cb", 2.0)]
    assert now == 2.0
    log, _, now = run(["cb", "gen"])
    assert log == [("cb", 1.0), ("gen", 2.0)]
    assert now == 2.0


def test_hold_priority_orders_grants():
    env = Environment()
    resource = Resource(env, capacity=1)
    log = []

    class Holder(CallbackProcess):
        __slots__ = ("name", "priority")

        def __init__(self, env, name, priority):
            self.name = name
            self.priority = priority
            super().__init__(env)

        def _start(self, value):
            self.hold(resource, 1.0, self._held, priority=self.priority)

        def _held(self, value):
            log.append(self.name)
            self._finish()

    Holder(env, "low", 5.0)
    Holder(env, "high", 1.0)
    Holder(env, "mid", 3.0)
    env.run()
    # First grant is FIFO (uncontended when "low" requested); the queue
    # then orders by priority.
    assert log == ["low", "high", "mid"]


def test_adopt_join_counts_children():
    env = Environment()
    finished = []

    class Child(CallbackProcess):
        __slots__ = ("delay",)

        def __init__(self, env, delay):
            self.delay = delay
            super().__init__(env)

        def _start(self, value):
            self.wait(self.env.timeout(self.delay), self._end)

        def _end(self, value):
            self._finish(self.delay)

    class Parent(CallbackProcess):
        __slots__ = ()

        def _start(self, value):
            for delay in (3.0, 1.0, 2.0):
                self.adopt(Child(self.env, delay))
            self.join(self._all_done)

        def _all_done(self, value):
            finished.append(self.env.now)
            self._finish()

    Parent(env)
    env.run()
    assert finished == [3.0]


def test_join_with_no_children_runs_inline():
    env = Environment()
    log = []

    class Parent(CallbackProcess):
        __slots__ = ()

        def _start(self, value):
            self.join(self._all_done)

        def _all_done(self, value):
            log.append(self.env.now)
            self._finish()

    Parent(env)
    env.run()
    assert log == [0.0]


def test_adopting_finished_child_does_not_block_join():
    env = Environment()
    log = []

    class Child(CallbackProcess):
        __slots__ = ()

        def _start(self, value):
            self._finish("early")

    class Parent(CallbackProcess):
        __slots__ = ("child",)

        def __init__(self, env, child):
            self.child = child
            super().__init__(env)

        def _start(self, value):
            # The child finished at t=0 before our init event dispatched.
            self.wait(self.env.timeout(1.0), self._later)

        def _later(self, value):
            self.adopt(self.child)
            self.join(self._all_done)

        def _all_done(self, value):
            log.append(self.env.now)
            self._finish()

    child = Child(env)
    Parent(env, child)
    env.run()
    assert log == [1.0]


def test_state_exception_fails_process_and_propagates_to_waiter():
    env = Environment()
    caught = []

    class Exploder(CallbackProcess):
        __slots__ = ()

        def _start(self, value):
            self.wait(self.env.timeout(1.0), self._boom)

        def _boom(self, value):
            raise ValueError("state failed")

    def waiter(env, target):
        try:
            yield target
        except ValueError as exc:
            caught.append(str(exc))

    env.process(waiter(env, Exploder(env)))
    env.run()
    assert caught == ["state failed"]


def test_unwaited_failure_raises_from_run():
    env = Environment()

    class Exploder(CallbackProcess):
        __slots__ = ()

        def _start(self, value):
            raise RuntimeError("nobody caught this")

    Exploder(env)
    with pytest.raises(RuntimeError, match="nobody caught this"):
        env.run()


def test_child_failure_fails_joining_parent():
    env = Environment()
    caught = []

    class BadChild(CallbackProcess):
        __slots__ = ()

        def _start(self, value):
            self.wait(self.env.timeout(1.0), self._boom)

        def _boom(self, value):
            raise ValueError("child failed")

    class Parent(CallbackProcess):
        __slots__ = ()

        def _start(self, value):
            self.adopt(BadChild(self.env))
            self.join(self._all_done)

        def _all_done(self, value):  # pragma: no cover - must not run
            raise AssertionError("join fired despite child failure")

    def waiter(env, target):
        try:
            yield target
        except ValueError as exc:
            caught.append(str(exc))

    env.process(waiter(env, Parent(env)))
    env.run()
    assert caught == ["child failed"]


def test_interrupt_delivers_and_default_handler_fails_process():
    env = Environment()

    class Sleeper(CallbackProcess):
        __slots__ = ()

        def _start(self, value):
            self.wait(self.env.timeout(100.0), self._end)

        def _end(self, value):  # pragma: no cover - interrupted first
            self._finish()

    sleeper = Sleeper(env)

    def interrupter(env):
        yield env.timeout(1.0)
        sleeper.interrupt("wake up")

    env.process(interrupter(env))
    with pytest.raises(Interrupt):
        env.run()
    assert env.now == 1.0
    assert not sleeper.is_alive


def test_interrupt_handler_can_recover():
    env = Environment()
    log = []

    class Sleeper(CallbackProcess):
        __slots__ = ()

        def _start(self, value):
            self.wait(self.env.timeout(100.0), self._end)

        def _on_failure(self, exc):
            if isinstance(exc, Interrupt):
                log.append((exc.cause, self.env.now))
                self._finish("recovered")
                return
            raise exc

        def _end(self, value):  # pragma: no cover - interrupted first
            self._finish()

    sleeper = Sleeper(env)

    def interrupter(env):
        yield env.timeout(1.0)
        sleeper.interrupt("wake up")

    env.process(interrupter(env))
    env.run()
    assert log == [("wake up", 1.0)]
    assert sleeper.value == "recovered"


def test_silent_completion_still_observable_as_processed():
    env = Environment()

    class Quiet(CallbackProcess):
        __slots__ = ()

        def _start(self, value):
            self.wait(self.env.timeout(1.0), self._end)

        def _end(self, value):
            self._finish("quiet")

    quiet = Quiet(env)
    env.run()
    # Nobody waited and no monitors were attached: the completion event
    # was skipped, but the processed state and value are intact.
    assert quiet.processed
    assert quiet.value == "quiet"


def test_completion_event_scheduled_when_monitored():
    env = Environment()
    seen = []
    env.add_step_monitor(lambda when, event: seen.append(event))

    class Quiet(CallbackProcess):
        __slots__ = ()

        def _start(self, value):
            self._finish("watched")

    quiet = Quiet(env)
    env.run()
    assert quiet in seen  # completion went through the calendar
    assert quiet.value == "watched"


def test_active_process_is_set_during_states():
    env = Environment()
    observed = []

    class Observer(CallbackProcess):
        __slots__ = ()

        def _start(self, value):
            observed.append(env.active_process)
            self._finish()

    process = Observer(env)
    env.run()
    assert observed == [process]
    assert env.active_process is None


def test_timeout_at_lands_on_exact_accumulated_float():
    env = Environment()
    steps = [0.1, 0.2, 0.30000000000000004, 0.7]

    def reference(env):
        for step in steps:
            yield env.timeout(step)
        return env.now

    ref = env.process(reference(env))
    env.run()
    expected = ref.value

    env2 = Environment()
    when = env2.now
    for step in steps:
        when += step
    fired = []
    env2.timeout_at(when).callbacks.append(
        lambda event: fired.append(env2.now))
    env2.run()
    assert fired == [expected]


def test_timeout_at_rejects_past():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        env.timeout_at(0.5)

    env.process(proc(env))
    with pytest.raises(ValueError):
        env.run()


def test_span_coalescing_gate_follows_monitors():
    env = Environment()
    assert env.span_coalescing
    probe = lambda *args, **kwargs: None
    env.add_transfer_monitor(probe)
    assert not env.span_coalescing
    env.remove_transfer_monitor(probe)
    assert env.span_coalescing
    env.add_alias_monitor(probe)
    assert not env.span_coalescing
    env.remove_alias_monitor(probe)
    env.add_step_monitor(probe)
    assert not env.span_coalescing
    env.remove_step_monitor(probe)
    assert env.span_coalescing
    env.tie_break_seed = 7
    assert not env.span_coalescing
    env.tie_break_seed = None
    assert env.span_coalescing
    assert not Environment(cohort_dispatch=False).span_coalescing


def test_release_quiet_regrants_and_recycles():
    env = Environment()
    resource = Resource(env, capacity=1)
    granted = []

    def holder(env):
        request = resource.request()
        yield request
        granted.append(env.now)
        yield env.timeout(1.0)
        resource.release_quiet(request)

    def waiter(env):
        with resource.request() as grant:
            yield grant
            granted.append(env.now)
            yield env.timeout(1.0)

    env.process(holder(env))
    env.process(waiter(env))
    env.run()
    assert granted == [0.0, 1.0]
    assert resource.count == 0 and resource.queue_length == 0

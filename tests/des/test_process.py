"""Process semantics: returns, exceptions, interrupts, waiting on processes."""

import pytest

from repro.des import Environment, Interrupt


def test_process_return_value_is_event_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        return "result"

    process = env.process(proc(env))
    env.run()
    assert process.value == "result"
    assert not process.is_alive


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_process_waiting_on_process():
    env = Environment()
    log = []

    def child(env):
        yield env.timeout(2.0)
        return "child-done"

    def parent(env):
        result = yield env.process(child(env))
        log.append(result)

    env.process(parent(env))
    env.run()
    assert log == ["child-done"]
    assert env.now == 2.0


def test_process_exception_propagates_to_waiter():
    env = Environment()
    caught = []

    def child(env):
        yield env.timeout(1.0)
        raise ValueError("child failed")

    def parent(env):
        try:
            yield env.process(child(env))
        except ValueError as exc:
            caught.append(str(exc))

    env.process(parent(env))
    env.run()
    assert caught == ["child failed"]


def test_unwaited_process_exception_surfaces_in_run():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        raise KeyError("unhandled")

    env.process(proc(env))
    with pytest.raises(KeyError):
        env.run()


def test_interrupt_delivers_cause():
    env = Environment()
    causes = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            causes.append(interrupt.cause)

    def attacker(env, victim_process):
        yield env.timeout(1.0)
        victim_process.interrupt("stop now")

    victim_process = env.process(victim(env))
    env.process(attacker(env, victim_process))
    env.run(until=victim_process)
    assert causes == ["stop now"]
    assert env.now == 1.0


def test_interrupt_dead_process_is_error():
    env = Environment()

    def quick(env):
        yield env.timeout(0.1)

    process = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        process.interrupt()


def test_process_cannot_interrupt_itself():
    env = Environment()
    errors = []

    def selfish(env):
        try:
            env.active_process.interrupt()
        except RuntimeError as exc:
            errors.append(str(exc))
        yield env.timeout(0)

    env.process(selfish(env))
    env.run()
    assert len(errors) == 1


def test_interrupted_process_can_continue():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(10.0)
        except Interrupt:
            log.append(("interrupted", env.now))
        yield env.timeout(5.0)
        log.append(("finished", env.now))

    def attacker(env, victim_process):
        yield env.timeout(2.0)
        victim_process.interrupt()

    victim_process = env.process(victim(env))
    env.process(attacker(env, victim_process))
    env.run()
    assert log == [("interrupted", 2.0), ("finished", 7.0)]


def test_yield_non_event_is_error():
    env = Environment()

    def bad(env):
        yield "not an event"

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="non-event"):
        env.run()


def test_yield_already_processed_event_resumes_immediately():
    env = Environment()
    log = []

    def proc(env):
        done = env.event()
        done.succeed("early")
        yield env.timeout(1.0)
        # 'done' was processed during the timeout; yielding it must not hang.
        value = yield done
        log.append((value, env.now))

    env.process(proc(env))
    env.run()
    assert log == [("early", 1.0)]


def test_active_process_visible_during_step():
    env = Environment()
    seen = []

    def proc(env):
        seen.append(env.active_process)
        yield env.timeout(0)

    process = env.process(proc(env))
    env.run()
    assert seen == [process]
    assert env.active_process is None


def test_two_processes_interleave():
    env = Environment()
    log = []

    def ticker(env, name, period):
        for _ in range(3):
            yield env.timeout(period)
            log.append((name, env.now))

    env.process(ticker(env, "fast", 1.0))
    env.process(ticker(env, "slow", 2.0))
    env.run()
    # At t=2.0 both fire; 'slow' scheduled its timeout first (at t=0) so it
    # is processed first -- ties break by scheduling order.
    assert log == [
        ("fast", 1.0), ("slow", 2.0), ("fast", 2.0),
        ("fast", 3.0), ("slow", 4.0), ("slow", 6.0),
    ]

"""Resource and Store semantics."""

import pytest

from repro.des import Environment, Resource, Store


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_grants_up_to_capacity():
    env = Environment()
    resource = Resource(env, capacity=2)
    log = []

    def user(env, name, hold):
        with resource.request() as req:
            yield req
            log.append((name, "got", env.now))
            yield env.timeout(hold)
        log.append((name, "rel", env.now))

    env.process(user(env, "a", 2.0))
    env.process(user(env, "b", 2.0))
    env.process(user(env, "c", 1.0))
    env.run()
    # a and b enter immediately; c waits until one releases at t=2.
    assert ("a", "got", 0.0) in log
    assert ("b", "got", 0.0) in log
    assert ("c", "got", 2.0) in log
    assert ("c", "rel", 3.0) in log


def test_resource_fifo_order():
    env = Environment()
    resource = Resource(env, capacity=1)
    order = []

    def user(env, name):
        with resource.request() as req:
            yield req
            order.append(name)
            yield env.timeout(1.0)

    for name in "abcde":
        env.process(user(env, name))
    env.run()
    assert order == list("abcde")


def test_resource_priority_order():
    env = Environment()
    resource = Resource(env, capacity=1)
    order = []

    def holder(env):
        with resource.request() as req:
            yield req
            yield env.timeout(1.0)

    def user(env, name, priority):
        yield env.timeout(0.1)  # ensure the holder grabbed it first
        with resource.request(priority=priority) as req:
            yield req
            order.append(name)
            yield env.timeout(0.1)

    env.process(holder(env))
    env.process(user(env, "low", 5.0))
    env.process(user(env, "high", 1.0))
    env.run()
    assert order == ["high", "low"]


def test_resource_count_and_queue_length():
    env = Environment()
    resource = Resource(env, capacity=1)
    observed = []

    def holder(env):
        with resource.request() as req:
            yield req
            yield env.timeout(2.0)

    def observer(env):
        yield env.timeout(1.0)
        resource.request()  # leave waiting
        observed.append((resource.count, resource.queue_length))

    env.process(holder(env))
    env.process(observer(env))
    env.run()
    assert observed == [(1, 1)]


def test_cancel_waiting_request():
    env = Environment()
    resource = Resource(env, capacity=1)
    granted = []

    def holder(env):
        with resource.request() as req:
            yield req
            yield env.timeout(2.0)

    def canceller(env):
        yield env.timeout(0.5)
        req = resource.request()
        yield env.timeout(0.5)
        req.cancel()

    def patient(env):
        yield env.timeout(1.0)
        with resource.request() as req:
            yield req
            granted.append(env.now)

    env.process(holder(env))
    env.process(canceller(env))
    env.process(patient(env))
    env.run()
    # The cancelled request must not block 'patient'.
    assert granted == [2.0]


def test_cancel_before_grant_never_fires_and_frees_the_queue():
    env = Environment()
    resource = Resource(env, capacity=1)
    cancelled = []

    def holder(env):
        with resource.request() as req:
            yield req
            yield env.timeout(2.0)

    def canceller(env):
        yield env.timeout(0.5)
        req = resource.request()
        yield env.timeout(0.5)
        req.cancel()
        cancelled.append(req)

    env.process(holder(env))
    env.process(canceller(env))
    env.run()
    req = cancelled[0]
    # The withdrawn request's event must never fire (no phantom grant,
    # no Release routed through a server it never held).
    assert not req.triggered
    assert resource.count == 0
    assert resource.queue_length == 0


def test_cancel_after_grant_releases_and_grants_next_waiter():
    env = Environment()
    resource = Resource(env, capacity=1)
    granted = []

    def first(env):
        req = resource.request()
        yield req
        yield env.timeout(1.0)
        req.cancel()  # granted, so this is a release

    def second(env):
        yield env.timeout(0.5)
        with resource.request() as req:
            yield req
            granted.append(env.now)

    env.process(first(env))
    env.process(second(env))
    env.run()
    assert granted == [1.0]
    assert resource.count == 0


def test_cancel_granted_but_unprocessed_request():
    # The grant event has fired but the waiter has not resumed yet: the
    # server slot is genuinely occupied, so cancel must release it.
    env = Environment()
    resource = Resource(env, capacity=1)
    req = resource.request()
    assert resource.count == 1
    req.cancel()
    assert resource.count == 0
    assert resource.queue_length == 0


def test_double_cancel_is_a_no_op():
    env = Environment()
    resource = Resource(env, capacity=1)
    blocker = resource.request()
    assert blocker.triggered
    waiting = resource.request()
    waiting.cancel()
    waiting.cancel()  # second cancel must not disturb anything
    assert resource.queue_length == 0
    assert resource.count == 1
    blocker.cancel()
    blocker.cancel()
    assert resource.count == 0


def test_cancel_then_context_exit_releases_once():
    env = Environment()
    resource = Resource(env, capacity=2)
    log = []

    def early_leaver(env):
        with resource.request() as req:
            yield req
            yield env.timeout(0.5)
            req.cancel()
            yield env.timeout(0.5)
        # __exit__ ran after an explicit cancel: must not double-release.
        log.append(("left", resource.count))

    def bystander(env):
        with resource.request() as req:
            yield req
            yield env.timeout(2.0)
            log.append(("bystander-done", resource.count))

    env.process(early_leaver(env))
    env.process(bystander(env))
    env.run()
    # A double release would have evicted the bystander's slot.
    assert ("left", 1) in log
    assert ("bystander-done", 1) in log
    assert resource.count == 0


def test_store_put_get_fifo():
    env = Environment()
    store = Store(env)
    received = []

    def producer(env):
        for item in [1, 2, 3]:
            yield store.put(item)
            yield env.timeout(1.0)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == [1, 2, 3]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    times = []

    def consumer(env):
        item = yield store.get()
        times.append((item, env.now))

    def producer(env):
        yield env.timeout(5.0)
        yield store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert times == [("late", 5.0)]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer(env):
        yield store.put("first")
        log.append(("put-first", env.now))
        yield store.put("second")
        log.append(("put-second", env.now))

    def consumer(env):
        yield env.timeout(3.0)
        yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert log == [("put-first", 0.0), ("put-second", 3.0)]


def test_store_get_with_predicate():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        yield store.put({"seq": 1})
        yield store.put({"seq": 2})
        yield store.put({"seq": 3})

    def consumer(env):
        item = yield store.get(lambda m: m["seq"] == 2)
        got.append(item["seq"])

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == [2]
    assert [m["seq"] for m in store.items] == [1, 3]


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)

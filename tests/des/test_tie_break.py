"""The calendar's (time, priority, eid) tie-break contract.

The schedule-perturbation harness (repro.check.perturb) is only sound if
the engine honours this contract exactly: earlier times first, then
urgent before normal, then — and only then — the tie component, which is
creation order (eid) by default and a seeded deterministic shuffle under
``tie_break_seed``.
"""

from repro.des import Environment
from repro.des.engine import tie_break_key


def _at(env, log, tag, delay, priority=Environment.PRIORITY_NORMAL):
    """Schedule an event at ``delay`` that records ``tag`` when processed."""
    event = env.event()
    event.callbacks.append(lambda _e: log.append(tag))
    event._ok = True
    event._value = None
    env.schedule(event, delay=delay, priority=priority)


def test_same_time_same_priority_runs_in_creation_order():
    env = Environment()
    log = []
    for tag in "abcde":
        _at(env, log, tag, 1.0)
    env.run()
    assert log == list("abcde")


def test_urgent_runs_before_normal_at_the_same_time():
    env = Environment()
    log = []
    _at(env, log, "normal", 1.0, priority=Environment.PRIORITY_NORMAL)
    _at(env, log, "urgent", 1.0, priority=Environment.PRIORITY_URGENT)
    env.run()
    assert log == ["urgent", "normal"]


def test_time_order_dominates_even_under_a_seed():
    env = Environment(tie_break_seed=7)
    log = []
    _at(env, log, "late", 2.0, priority=Environment.PRIORITY_URGENT)
    _at(env, log, "early", 1.0)
    env.run()
    assert log == ["early", "late"]


def _tie_order(seed):
    env = Environment(tie_break_seed=seed)
    log = []
    for tag in "abcdefgh":
        _at(env, log, tag, 1.0)
    _at(env, log, "Z", 2.0)
    env.run()
    return log


def test_tie_break_seed_shuffles_only_exact_ties():
    assert _tie_order(None) == list("abcdefgh") + ["Z"]
    shuffled = {tuple(_tie_order(seed)) for seed in range(6)}
    # Every permutation keeps the time ordering and loses no event...
    for permutation in shuffled:
        assert permutation[-1] == "Z"
        assert sorted(permutation[:-1]) == list("abcdefgh")
    # ...and at least one seed actually reorders the ties.
    assert any(list(p[:-1]) != list("abcdefgh") for p in shuffled)


def test_tie_break_seed_is_deterministic():
    assert _tie_order(42) == _tie_order(42)


def test_priority_still_dominates_the_seeded_tie():
    env = Environment(tie_break_seed=3)
    log = []
    for tag in "abc":
        _at(env, log, tag, 1.0, priority=Environment.PRIORITY_NORMAL)
    _at(env, log, "U", 1.0, priority=Environment.PRIORITY_URGENT)
    env.run()
    assert log[0] == "U"
    assert sorted(log[1:]) == list("abc")


def test_tie_break_key_is_stable_and_distinct():
    key_a = tie_break_key(0, 1)
    assert key_a == tie_break_key(0, 1)
    assert key_a != tie_break_key(0, 2)
    assert key_a != tie_break_key(1, 1)
    # The eid stays in the key so even a digest collision cannot make
    # two calendar entries compare equal.
    assert key_a[1] == 1


def _reference_tie_break_key(seed, eid):
    """The pre-prefix-caching implementation: FNV-1a over f"{seed}:{eid}".

    Kept verbatim as the compatibility reference: the optimised
    tie_break_key (per-seed prefix hashed once, eid digits folded per
    call) must stay bit-identical to this, or every recorded
    perturbation-harness permutation silently changes.
    """
    digest = 2166136261
    for char in f"{seed}:{eid}":
        digest = ((digest ^ ord(char)) * 16777619) & ((1 << 64) - 1)
    return (digest, eid)


def test_tie_break_key_matches_reference_implementation():
    for seed in (0, 1, 7, -3, 123456789, 2**63):
        for eid in (0, 1, 9, 10, 99, 100, 4096, 10**9):
            assert tie_break_key(seed, eid) == \
                _reference_tie_break_key(seed, eid)


def test_tie_break_permutations_unchanged_by_prefix_cache():
    # The permutation of an 8-way tie under a handful of seeds, as
    # produced by the reference key.  Pinning the orderings themselves
    # (not just the key function) catches any engine change that stops
    # routing ties through the key.
    for seed in (1, 7, 42):
        expected_rank = sorted(
            range(8), key=lambda slot: _reference_tie_break_key(
                seed, slot + 1))  # tags a..h get eids 1..8
        observed = _tie_order(seed)
        assert observed[-1] == "Z"
        tags = "abcdefgh"
        assert "".join(observed[:-1]) == \
            "".join(tags[rank] for rank in expected_rank)

"""The calendar's (time, priority, eid) tie-break contract.

The schedule-perturbation harness (repro.check.perturb) is only sound if
the engine honours this contract exactly: earlier times first, then
urgent before normal, then — and only then — the tie component, which is
creation order (eid) by default and a seeded deterministic shuffle under
``tie_break_seed``.
"""

from repro.des import Environment
from repro.des.engine import tie_break_key


def _at(env, log, tag, delay, priority=Environment.PRIORITY_NORMAL):
    """Schedule an event at ``delay`` that records ``tag`` when processed."""
    event = env.event()
    event.callbacks.append(lambda _e: log.append(tag))
    event._ok = True
    event._value = None
    env.schedule(event, delay=delay, priority=priority)


def test_same_time_same_priority_runs_in_creation_order():
    env = Environment()
    log = []
    for tag in "abcde":
        _at(env, log, tag, 1.0)
    env.run()
    assert log == list("abcde")


def test_urgent_runs_before_normal_at_the_same_time():
    env = Environment()
    log = []
    _at(env, log, "normal", 1.0, priority=Environment.PRIORITY_NORMAL)
    _at(env, log, "urgent", 1.0, priority=Environment.PRIORITY_URGENT)
    env.run()
    assert log == ["urgent", "normal"]


def test_time_order_dominates_even_under_a_seed():
    env = Environment(tie_break_seed=7)
    log = []
    _at(env, log, "late", 2.0, priority=Environment.PRIORITY_URGENT)
    _at(env, log, "early", 1.0)
    env.run()
    assert log == ["early", "late"]


def _tie_order(seed):
    env = Environment(tie_break_seed=seed)
    log = []
    for tag in "abcdefgh":
        _at(env, log, tag, 1.0)
    _at(env, log, "Z", 2.0)
    env.run()
    return log


def test_tie_break_seed_shuffles_only_exact_ties():
    assert _tie_order(None) == list("abcdefgh") + ["Z"]
    shuffled = {tuple(_tie_order(seed)) for seed in range(6)}
    # Every permutation keeps the time ordering and loses no event...
    for permutation in shuffled:
        assert permutation[-1] == "Z"
        assert sorted(permutation[:-1]) == list("abcdefgh")
    # ...and at least one seed actually reorders the ties.
    assert any(list(p[:-1]) != list("abcdefgh") for p in shuffled)


def test_tie_break_seed_is_deterministic():
    assert _tie_order(42) == _tie_order(42)


def test_priority_still_dominates_the_seeded_tie():
    env = Environment(tie_break_seed=3)
    log = []
    for tag in "abc":
        _at(env, log, tag, 1.0, priority=Environment.PRIORITY_NORMAL)
    _at(env, log, "U", 1.0, priority=Environment.PRIORITY_URGENT)
    env.run()
    assert log[0] == "U"
    assert sorted(log[1:]) == list("abc")


def test_tie_break_key_is_stable_and_distinct():
    key_a = tie_break_key(0, 1)
    assert key_a == tie_break_key(0, 1)
    assert key_a != tie_break_key(0, 2)
    assert key_a != tie_break_key(1, 1)
    # The eid stays in the key so even a digest collision cannot make
    # two calendar entries compare equal.
    assert key_a[1] == 1

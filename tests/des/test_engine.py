"""Engine and event-lifecycle tests for the DES kernel."""

import pytest

from repro.des import Environment, EmptySchedule, Event, Timeout


def test_environment_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_environment_custom_start_time():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(3.5)

    env.process(proc(env))
    env.run()
    assert env.now == 3.5


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_timeout_value_delivered():
    env = Environment()
    seen = []

    def proc(env):
        value = yield env.timeout(1.0, value="payload")
        seen.append(value)

    env.process(proc(env))
    env.run()
    assert seen == ["payload"]


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run(until=10.5)
    assert env.now == 10.5


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)
        return 42

    result = env.run(until=env.process(proc(env)))
    assert result == 42
    assert env.now == 2.0


def test_run_until_past_time_rejected():
    env = Environment(initial_time=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_events_fire_in_time_order():
    env = Environment()
    order = []

    def waiter(env, delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(waiter(env, 3.0, "c"))
    env.process(waiter(env, 1.0, "a"))
    env.process(waiter(env, 2.0, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo_by_schedule_order():
    env = Environment()
    order = []

    def waiter(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in "abcd":
        env.process(waiter(env, tag))
    env.run()
    assert order == list("abcd")


def test_event_succeed_once_only():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(RuntimeError):
        event.succeed(2)


def test_event_fail_requires_exception():
    env = Environment()
    event = env.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_unhandled_failed_event_raises_from_run():
    env = Environment()
    event = env.event()
    event.fail(ValueError("boom"))
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_defused_failed_event_is_silent():
    env = Environment()
    event = env.event()
    event.fail(ValueError("boom"))
    event.defuse()
    env.run()  # no raise


def test_event_value_before_trigger_raises():
    env = Environment()
    event = env.event()
    with pytest.raises(RuntimeError):
        _ = event.value
    with pytest.raises(RuntimeError):
        _ = event.ok


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7.0)
    assert env.peek() == 7.0


def test_peek_empty_is_infinite():
    env = Environment()
    assert env.peek() == float("inf")


def test_all_of_waits_for_every_event():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(1.0, "one")
        t2 = env.timeout(2.0, "two")
        values = yield env.all_of([t1, t2])
        results.append(sorted(values.values()))

    env.process(proc(env))
    env.run()
    assert results == [["one", "two"]]
    assert env.now == 2.0


def test_any_of_fires_on_first():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(1.0, "fast")
        t2 = env.timeout(5.0, "slow")
        values = yield env.any_of([t1, t2])
        results.append(list(values.values()))

    env.process(proc(env))
    env.run(until=1.5)
    assert results == [["fast"]]


def test_all_of_empty_fires_immediately():
    env = Environment()
    condition = env.all_of([])
    assert condition.triggered
    assert condition.value == {}


def test_condition_propagates_failure():
    env = Environment()
    caught = []

    def failer(env):
        yield env.timeout(1.0)
        raise RuntimeError("inner")

    def proc(env):
        try:
            yield env.all_of([env.process(failer(env)), env.timeout(9.0)])
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(proc(env))
    env.run()
    assert caught == ["inner"]


def test_trigger_copies_another_events_outcome():
    env = Environment()
    source = env.event()
    mirror = env.event()
    source.callbacks.append(mirror.trigger)
    source.succeed("mirrored")
    env.run()
    assert mirror.value == "mirrored"


# -- cohort dispatch ----------------------------------------------------------
#
# Same-timestamp events normally skip the heap and drain from an
# append-ordered ready deque (see the Environment docstring).  The
# contract: dispatch order is bit-identical to the one-heap reference
# path (cohort_dispatch=False), and anything that must observe every
# event individually — a schedule monitor, a tie-break seed — disables
# the fast path and spills any pending cohort back into the heap.


def _mixed_workload(env, order):
    """Processes that exercise same-time fan-out, urgent events,
    resource hand-offs and future timeouts, recording dispatch order."""
    from repro.des import Resource

    resource = Resource(env, capacity=2)

    def holder(env, tag):
        for cycle in range(3):
            with resource.request() as grant:
                yield grant
                order.append((env.now, tag, cycle, "granted"))
                yield env.timeout(0.001 * ((cycle + tag) % 3))
            order.append((env.now, tag, cycle, "released"))

    def fanout(env):
        for cycle in range(4):
            events = [env.event() for _ in range(3)]
            for index, event in enumerate(events):
                event.succeed(index)
            yield env.all_of(events)
            order.append((env.now, "fanout", cycle))
            yield env.timeout(0.0005)

    def urgent_mixer(env):
        for cycle in range(4):
            normal = env.timeout(0.002)
            urgent = env.event()
            urgent._ok = True
            env.schedule(urgent, delay=0.002,
                         priority=env.PRIORITY_URGENT)
            yield env.all_of([normal, urgent])
            order.append((env.now, "urgent", cycle))

    for tag in range(5):
        env.process(holder(env, tag))
    env.process(fanout(env))
    env.process(urgent_mixer(env))


def _run_mixed(cohort):
    env = Environment(cohort_dispatch=cohort)
    order = []
    _mixed_workload(env, order)
    env.run()
    return order, env.now


def test_cohort_dispatch_matches_reference_order():
    assert _run_mixed(True) == _run_mixed(False)


def test_tie_break_seed_disables_cohort_fast_path():
    env = Environment(tie_break_seed=7)
    assert not env._schedule_fast
    env = Environment()
    assert env._schedule_fast
    env.tie_break_seed = 3
    assert not env._schedule_fast


def test_schedule_monitor_spills_pending_cohort():
    env = Environment()
    order = []

    def fanout(env):
        events = [env.event() for _ in range(4)]
        for index, event in enumerate(events):
            event.succeed(index)
        # The succeeded events sit in the ready cohort right now.
        assert env._ready
        seen = []
        env.add_schedule_monitor(lambda event, proc: seen.append(event))
        # Attaching the monitor must have spilled them into the heap.
        assert not env._ready
        yield env.all_of(events)
        order.append([event.value for event in events])

    env.process(fanout(env))
    env.run()
    assert order == [[0, 1, 2, 3]]


def test_cohort_reset_clears_ready_deque():
    env = Environment()

    def fanout(env):
        event = env.event()
        event.succeed("x")
        assert env._ready
        yield env.timeout(0)

    env.process(fanout(env))
    env.step()
    env.reset()
    assert not env._ready and not env._queue and env.now == 0.0

"""Engine and event-lifecycle tests for the DES kernel."""

import pytest

from repro.des import Environment, EmptySchedule, Event, Timeout


def test_environment_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_environment_custom_start_time():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(3.5)

    env.process(proc(env))
    env.run()
    assert env.now == 3.5


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_timeout_value_delivered():
    env = Environment()
    seen = []

    def proc(env):
        value = yield env.timeout(1.0, value="payload")
        seen.append(value)

    env.process(proc(env))
    env.run()
    assert seen == ["payload"]


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run(until=10.5)
    assert env.now == 10.5


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)
        return 42

    result = env.run(until=env.process(proc(env)))
    assert result == 42
    assert env.now == 2.0


def test_run_until_past_time_rejected():
    env = Environment(initial_time=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_events_fire_in_time_order():
    env = Environment()
    order = []

    def waiter(env, delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(waiter(env, 3.0, "c"))
    env.process(waiter(env, 1.0, "a"))
    env.process(waiter(env, 2.0, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo_by_schedule_order():
    env = Environment()
    order = []

    def waiter(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in "abcd":
        env.process(waiter(env, tag))
    env.run()
    assert order == list("abcd")


def test_event_succeed_once_only():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(RuntimeError):
        event.succeed(2)


def test_event_fail_requires_exception():
    env = Environment()
    event = env.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_unhandled_failed_event_raises_from_run():
    env = Environment()
    event = env.event()
    event.fail(ValueError("boom"))
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_defused_failed_event_is_silent():
    env = Environment()
    event = env.event()
    event.fail(ValueError("boom"))
    event.defuse()
    env.run()  # no raise


def test_event_value_before_trigger_raises():
    env = Environment()
    event = env.event()
    with pytest.raises(RuntimeError):
        _ = event.value
    with pytest.raises(RuntimeError):
        _ = event.ok


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7.0)
    assert env.peek() == 7.0


def test_peek_empty_is_infinite():
    env = Environment()
    assert env.peek() == float("inf")


def test_all_of_waits_for_every_event():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(1.0, "one")
        t2 = env.timeout(2.0, "two")
        values = yield env.all_of([t1, t2])
        results.append(sorted(values.values()))

    env.process(proc(env))
    env.run()
    assert results == [["one", "two"]]
    assert env.now == 2.0


def test_any_of_fires_on_first():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(1.0, "fast")
        t2 = env.timeout(5.0, "slow")
        values = yield env.any_of([t1, t2])
        results.append(list(values.values()))

    env.process(proc(env))
    env.run(until=1.5)
    assert results == [["fast"]]


def test_all_of_empty_fires_immediately():
    env = Environment()
    condition = env.all_of([])
    assert condition.triggered
    assert condition.value == {}


def test_condition_propagates_failure():
    env = Environment()
    caught = []

    def failer(env):
        yield env.timeout(1.0)
        raise RuntimeError("inner")

    def proc(env):
        try:
            yield env.all_of([env.process(failer(env)), env.timeout(9.0)])
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(proc(env))
    env.run()
    assert caught == ["inner"]


def test_trigger_copies_another_events_outcome():
    env = Environment()
    source = env.event()
    mirror = env.event()
    source.callbacks.append(mirror.trigger)
    source.succeed("mirrored")
    env.run()
    assert mirror.value == "mirrored"

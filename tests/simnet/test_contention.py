"""CSMA/CD contention modelling (optional Ethernet mode)."""

import pytest

from repro.des import Environment, RandomStream
from repro.simnet import Address, Datagram, Ethernet, Host


def build(contention):
    env = Environment()
    ether = Ethernet(env, contention=contention,
                     contention_stream=RandomStream(9) if contention
                     else None)
    a = Host(env, "a")
    b = Host(env, "b")
    a.attach(ether)
    b.attach(ether)
    b.bind(5, buffer_packets=1000)
    return env, ether


def burst(env, ether, count, senders=("a",)):
    for index in range(count):
        src = senders[index % len(senders)]
        env.process(ether.transmit(
            Datagram(Address(src, 1), Address("b", 5), 1400)))
    env.run()
    return env.now


def test_contention_requires_stream():
    env = Environment()
    with pytest.raises(ValueError):
        Ethernet(env, contention=True)


def test_uncontended_frame_pays_no_penalty():
    env, ether = build(contention=True)
    elapsed = burst(env, ether, 1)
    assert elapsed == pytest.approx(ether.transmission_time(1400), rel=0.01)


def test_single_station_burst_never_collides():
    # A lone station streaming back-to-back frames pays no backoff.
    env_ideal, ether_ideal = build(contention=False)
    ideal = burst(env_ideal, ether_ideal, 50)
    env_real, ether_real = build(contention=True)
    real = burst(env_real, ether_real, 50)
    assert real == pytest.approx(ideal)


def test_two_station_burst_is_slower_than_ideal():
    env_ideal, ether_ideal = build(contention=False)
    ideal = burst(env_ideal, ether_ideal, 50, senders=("a", "b"))
    env_real, ether_real = build(contention=True)
    real = burst(env_real, ether_real, 50, senders=("a", "b"))
    assert real > ideal
    # ...but with 1.4 KB frames the CSMA/CD overhead is modest (<25 %).
    assert real < 1.25 * ideal


def test_penalty_zero_when_nothing_waits():
    env, ether = build(contention=True)
    assert ether.contention_penalty("a") == 0.0


def test_testbed_contention_flag():
    from repro.prototype import PrototypeTestbed
    MB = 1 << 20
    plain = PrototypeTestbed(seed=31)
    plain.prepare_object("o", MB)
    with_contention = PrototypeTestbed(seed=31, ethernet_contention=True)
    with_contention.prepare_object("o", MB)
    rate_plain = plain.measure_read("o", MB)
    rate_contended = with_contention.measure_read("o", MB)
    assert rate_contended <= rate_plain
    assert rate_contended > 0.85 * rate_plain

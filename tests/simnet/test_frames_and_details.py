"""Datagram validation, interface backlog, medium occupancy details."""

import pytest

from repro.des import Environment, RandomStream
from repro.simnet import (
    Address,
    CostModel,
    Datagram,
    Ethernet,
    HEADER_SIZE,
    Host,
    Network,
    TokenRing,
)


def test_datagram_smaller_than_header_rejected():
    with pytest.raises(ValueError):
        Datagram(Address("a", 1), Address("b", 2), size=HEADER_SIZE - 1)


def test_datagram_uids_unique():
    a = Datagram(Address("a", 1), Address("b", 2), size=100)
    b = Datagram(Address("a", 1), Address("b", 2), size=100)
    assert a.uid != b.uid


def test_address_str():
    assert str(Address("host", 42)) == "host:42"


def test_datagram_repr_mentions_kind():
    datagram = Datagram(Address("a", 1), Address("b", 2), size=100,
                        message={"k": 1})
    assert "dict" in repr(datagram)


def test_interface_backlog_visible():
    env = Environment()
    net = Network(env)
    net.add_ethernet("lan")
    a = net.add_host("a")
    net.add_host("b").attach(net.medium("lan"))
    iface = a.attach(net.medium("lan"), tx_queue_packets=50)
    sock = a.bind(1)
    net.host("b").bind(9, buffer_packets=100)

    def sender(env):
        for _ in range(10):
            yield from sock.send(Address("b", 9), payload_size=8000)

    env.process(sender(env))
    # Before the wire drains anything, most datagrams sit in the queue.
    while env.peek() < 0.001:
        env.step()
    assert iface.tx_backlog > 0
    env.run()
    assert iface.tx_backlog == 0


def test_occupy_blocks_transmissions():
    env = Environment()
    ether = Ethernet(env)
    a = Host(env, "a")
    b = Host(env, "b")
    a.attach(ether)
    b.attach(ether)
    b.bind(9)
    received = []

    def hog(env):
        yield from ether.occupy(1.0)

    def sender(env):
        yield env.timeout(0.001)
        yield from ether.transmit(
            Datagram(Address("a", 1), Address("b", 9), 100))
        received.append(env.now)

    env.process(hog(env))
    env.process(sender(env))
    env.run()
    assert received[0] >= 1.0


def test_token_ring_rejects_bad_params():
    env = Environment()
    with pytest.raises(ValueError):
        TokenRing(env, bits_per_second=0)
    with pytest.raises(ValueError):
        TokenRing(env, token_rotation_s=-1)
    ring = TokenRing(env)
    with pytest.raises(ValueError):
        ring.transmission_time(0)


def test_host_noise_requires_stream():
    env = Environment()
    with pytest.raises(ValueError):
        Host(env, "h", noise_fraction=0.1)
    with pytest.raises(ValueError):
        Host(env, "h", noise_fraction=1.5, noise_stream=RandomStream(1))


def test_jitter_bounded():
    env = Environment()
    host = Host(env, "h", noise_fraction=0.1,
                noise_stream=RandomStream(4))
    for _ in range(200):
        jittered = host.jittered(1.0)
        # speed factor within +-5%, per-packet jitter +-10%.
        assert 0.84 <= jittered <= 1.16


def test_consume_cpu_validation():
    env = Environment()
    host = Host(env, "h")
    with pytest.raises(ValueError):
        list(host.consume_cpu(-1.0))


def test_send_payload_validation():
    env = Environment()
    net = Network(env)
    net.add_ethernet("lan")
    a = net.add_host("a")
    net.connect("a", "lan")
    sock = a.bind(1)
    with pytest.raises(ValueError):
        list(sock.send(Address("b", 9), payload_size=-1))


def test_interface_scale_validation():
    env = Environment()
    ether = Ethernet(env)
    host = Host(env, "h")
    with pytest.raises(ValueError):
        host.attach(ether, cpu_cost_scale=0)
    with pytest.raises(ValueError):
        host.attach(ether, tx_queue_packets=0)


def test_socket_buffer_validation():
    env = Environment()
    host = Host(env, "h")
    with pytest.raises(ValueError):
        host.bind(1, buffer_packets=0)


def test_cost_model_zero_default():
    assert CostModel().time(10_000) == 0.0

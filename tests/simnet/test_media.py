"""Media timing arithmetic and shared-cable behaviour."""

import pytest

from repro.des import Environment, RandomStream
from repro.simnet import (
    Address,
    BackgroundLoad,
    Datagram,
    Ethernet,
    TokenRing,
)


def test_ethernet_nominal_capacity():
    env = Environment()
    ether = Ethernet(env)
    assert ether.nominal_capacity() == 1_250_000.0


def test_ethernet_single_frame_time():
    env = Environment()
    ether = Ethernet(env)
    # 1000-byte datagram: one frame, (1000+46)*8/1e7 + 9.6us.
    expected = 1046 * 8 / 1e7 + 9.6e-6
    assert ether.transmission_time(1000) == pytest.approx(expected)


def test_ethernet_fragmentation_overhead():
    env = Environment()
    ether = Ethernet(env)
    # 8220-byte datagram (8 KB payload + headers): 6 fragments.
    t = ether.transmission_time(8220)
    expected = (8220 + 6 * 46) * 8 / 1e7 + 6 * 9.6e-6
    assert t == pytest.approx(expected)


def test_ethernet_goodput_upper_bound_near_1_2_mb_s():
    # Raw-wire goodput with 8 KB datagrams is ~1.2 MB/s; the paper's
    # *measured* 1.12 MB/s adds host costs on top (see calibration tests).
    env = Environment()
    ether = Ethernet(env)
    bound = ether.goodput_upper_bound(8220)
    assert 1.15e6 < bound < 1.25e6


def test_ethernet_invalid_size():
    env = Environment()
    ether = Ethernet(env)
    with pytest.raises(ValueError):
        ether.transmission_time(0)


def test_token_ring_time_includes_token_wait():
    env = Environment()
    ring = TokenRing(env, token_rotation_s=20e-6)
    expected = 10e-6 + 8192 * 8 / 1e9
    assert ring.transmission_time(8192) == pytest.approx(expected)


def test_token_ring_gigabit_default():
    env = Environment()
    ring = TokenRing(env)
    assert ring.nominal_capacity() == 125_000_000.0


def test_loss_requires_stream():
    env = Environment()
    with pytest.raises(ValueError):
        Ethernet(env, loss_probability=0.1)


def test_duplicate_host_attachment_rejected():
    from repro.simnet import Host
    env = Environment()
    ether = Ethernet(env)
    host = Host(env, "a")
    host.attach(ether)
    with pytest.raises(ValueError):
        host.attach(ether)


def test_cable_serializes_transmissions():
    from repro.simnet import Host
    env = Environment()
    ether = Ethernet(env)
    sender = Host(env, "sender")
    receiver = Host(env, "receiver")
    sender.attach(ether)
    receiver.attach(ether)
    done = []

    def tx(env):
        datagram = Datagram(Address("sender", 1), Address("receiver", 2), 8220)
        yield from ether.transmit(datagram)
        done.append(env.now)

    env.process(tx(env))
    env.process(tx(env))
    env.run()
    one = ether.transmission_time(8220)
    assert done == pytest.approx([one, 2 * one])


def test_background_load_fraction_reached():
    env = Environment()
    ether = Ethernet(env)
    BackgroundLoad(env, ether, 0.05, RandomStream(1))
    env.run(until=50.0)
    assert ether.utilization() == pytest.approx(0.05, abs=0.02)


def test_background_load_validation():
    env = Environment()
    ether = Ethernet(env)
    with pytest.raises(ValueError):
        BackgroundLoad(env, ether, 1.0, RandomStream(1))


def test_medium_stats_track_traffic():
    from repro.simnet import Host
    env = Environment()
    ether = Ethernet(env)
    a = Host(env, "a")
    b = Host(env, "b")
    a.attach(ether)
    b.attach(ether)
    b.bind(5)

    def tx(env):
        yield from ether.transmit(
            Datagram(Address("a", 1), Address("b", 5), 500))
        yield from ether.transmit(
            Datagram(Address("a", 1), Address("nowhere", 5), 500))

    env.process(tx(env))
    env.run()
    assert ether.stats.datagrams_carried == 2
    assert ether.stats.bytes_carried == 1000
    assert ether.stats.undeliverable == 1


def test_lossy_medium_drops_some():
    from repro.simnet import Host
    env = Environment()
    ether = Ethernet(env, loss_probability=0.5, loss_stream=RandomStream(3))
    a = Host(env, "a")
    b = Host(env, "b")
    a.attach(ether)
    b.attach(ether)
    sock = b.bind(5, buffer_packets=1000)

    def tx(env):
        for _ in range(200):
            yield from ether.transmit(
                Datagram(Address("a", 1), Address("b", 5), 500))

    env.process(tx(env))
    env.run()
    assert 50 < ether.stats.datagrams_lost < 150
    assert sock.pending == 200 - ether.stats.datagrams_lost

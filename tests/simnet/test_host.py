"""Host CPU accounting, interfaces, sockets."""

import pytest

from repro.des import Environment
from repro.simnet import (
    Address,
    CostModel,
    Host,
    Network,
    mips_cost_model,
)


def make_pair(send_cost=CostModel(), recv_cost=CostModel(), **connect_kwargs):
    env = Environment()
    net = Network(env)
    net.add_ethernet("lan")
    net.add_host("a", send_cost=send_cost, recv_cost=recv_cost)
    net.add_host("b", send_cost=send_cost, recv_cost=recv_cost)
    net.connect("a", "lan", **connect_kwargs)
    net.connect("b", "lan", **connect_kwargs)
    return env, net


def test_cost_model_time():
    cost = CostModel(per_packet_s=0.001, per_byte_s=1e-6)
    assert cost.time(1000) == pytest.approx(0.002)


def test_cost_model_validation():
    with pytest.raises(ValueError):
        CostModel(per_packet_s=-1)


def test_mips_cost_model_is_paper_formula():
    # 100 MIPS, 1500 instructions + 1/byte: an 8 KB packet costs
    # (1500 + 8192) / 100e6 seconds = 96.92 microseconds.
    cost = mips_cost_model(100.0)
    assert cost.time(8192) == pytest.approx(9.692e-5)


def test_mips_model_validation():
    with pytest.raises(ValueError):
        mips_cost_model(0)


def test_send_and_receive_datagram():
    env, net = make_pair()
    received = []
    b_sock = net.host("b").bind(9)

    def sender(env):
        a_sock = net.host("a").bind(100)
        yield from a_sock.send(Address("b", 9), message=b"hello",
                               payload_size=5)

    def receiver(env):
        datagram = yield b_sock.recv()
        received.append(datagram.message)

    env.process(sender(env))
    env.process(receiver(env))
    env.run()
    assert received == [b"hello"]


def test_send_charges_sender_cpu():
    env, net = make_pair(send_cost=CostModel(per_packet_s=0.010))
    a_sock = net.host("a").bind(100)
    net.host("b").bind(9)

    def sender(env):
        yield from a_sock.send(Address("b", 9), payload_size=100)

    env.process(sender(env))
    env.run()
    assert env.now >= 0.010


def test_receive_charges_receiver_cpu():
    env, net = make_pair(recv_cost=CostModel(per_packet_s=0.050))
    b_sock = net.host("b").bind(9)
    arrival_times = []

    def sender(env):
        a_sock = net.host("a").bind(100)
        yield from a_sock.send(Address("b", 9), payload_size=100)

    def receiver(env):
        yield b_sock.recv()
        arrival_times.append(env.now)

    env.process(sender(env))
    env.process(receiver(env))
    env.run()
    assert arrival_times[0] >= 0.050


def test_interface_cost_scale_multiplies_cpu_time():
    # The S-bus interface: same packets, more CPU.
    env1, net1 = make_pair(send_cost=CostModel(per_packet_s=0.010))
    env2, net2 = make_pair(send_cost=CostModel(per_packet_s=0.010),
                           cpu_cost_scale=2.0)
    for env, net in [(env1, net1), (env2, net2)]:
        sock = net.host("a").bind(100)
        net.host("b").bind(9)

        def sender(env=env, sock=sock):
            yield from sock.send(Address("b", 9), payload_size=100)

        env.process(sender())
        env.run()
    assert env2.now == pytest.approx(2 * env1.now, rel=0.2)


def test_tx_queue_overflow_drops_silently():
    env, net = make_pair(tx_queue_packets=2)
    a = net.host("a")
    net.host("b").bind(9, buffer_packets=100)
    a_sock = a.bind(100)

    def sender(env):
        # Blast out many large datagrams with zero CPU cost: the wire is
        # slow, the queue holds 2, the rest are dropped like SunOS did.
        for _ in range(20):
            yield from a_sock.send(Address("b", 9), payload_size=8192)

    env.process(sender(env))
    env.run()
    iface = a.interfaces[0]
    assert iface.tx_dropped > 0
    assert iface.tx_dropped + 2 + 1 >= 20  # queued 2, maybe 1 in flight


def test_socket_buffer_overflow_drops():
    env, net = make_pair()
    b_sock = net.host("b").bind(9, buffer_packets=2)
    a_sock = net.host("a").bind(100)

    def sender(env):
        for _ in range(10):
            yield from a_sock.send(Address("b", 9), payload_size=100)
            yield env.timeout(0.01)  # let each arrive; nobody reads

    env.process(sender(env))
    env.run()
    assert b_sock.pending == 2
    assert b_sock.rx_dropped == 8


def test_recv_with_predicate():
    env, net = make_pair()
    b_sock = net.host("b").bind(9)
    a_sock = net.host("a").bind(100)
    got = []

    def sender(env):
        for seq in range(3):
            yield from a_sock.send(Address("b", 9), message={"seq": seq},
                                   payload_size=10)

    def receiver(env):
        datagram = yield b_sock.recv(lambda d: d.message["seq"] == 2)
        got.append(datagram.message["seq"])

    env.process(sender(env))
    env.process(receiver(env))
    env.run()
    assert got == [2]


def test_recv_wait_times_out_and_cancels():
    env, net = make_pair()
    b_sock = net.host("b").bind(9)
    a_sock = net.host("a").bind(100)
    results = []

    def receiver(env):
        result = yield from b_sock.recv_wait(0.5)
        results.append(result)

    def late_sender(env):
        yield env.timeout(1.0)
        yield from a_sock.send(Address("b", 9), payload_size=10)

    env.process(receiver(env))
    env.process(late_sender(env))
    env.run()
    assert results == [None]
    # The timed-out get must not have consumed the late datagram.
    assert b_sock.pending == 1


def test_recv_wait_returns_datagram_when_in_time():
    env, net = make_pair()
    b_sock = net.host("b").bind(9)
    a_sock = net.host("a").bind(100)
    results = []

    def receiver(env):
        result = yield from b_sock.recv_wait(5.0)
        results.append(result.message)

    def sender(env):
        yield from a_sock.send(Address("b", 9), message="hi", payload_size=10)

    env.process(receiver(env))
    env.process(sender(env))
    env.run()
    assert results == ["hi"]


def test_closed_socket_drops_arrivals_and_rejects_send():
    env, net = make_pair()
    b_sock = net.host("b").bind(9)
    a_sock = net.host("a").bind(100)
    b_sock.close()

    def sender(env):
        yield from a_sock.send(Address("b", 9), payload_size=10)

    env.process(sender(env))
    env.run()
    # The port is unbound after close, so the interface counts the drop.
    assert net.host("b").interfaces[0].rx_dropped_no_socket == 1
    with pytest.raises(RuntimeError):
        list(b_sock.send(Address("a", 100)))


def test_port_allocation_unique():
    env = Environment()
    host = Host(env, "h")
    ports = {host.allocate_port() for _ in range(100)}
    assert len(ports) == 100


def test_double_bind_rejected():
    env = Environment()
    host = Host(env, "h")
    host.bind(9)
    with pytest.raises(ValueError):
        host.bind(9)


def test_route_picks_correct_segment():
    env = Environment()
    net = Network(env)
    net.add_ethernet("lab")
    net.add_ethernet("dept")
    client = net.add_host("client")
    net.add_host("s1")
    net.add_host("s2")
    net.connect("client", "lab")
    net.connect("client", "dept", cpu_cost_scale=1.5)
    net.connect("s1", "lab")
    net.connect("s2", "dept")
    assert client.route("s1").medium.name == "lab"
    assert client.route("s2").medium.name == "dept"
    with pytest.raises(LookupError):
        client.route("unknown")


def test_network_rejects_duplicates():
    env = Environment()
    net = Network(env)
    net.add_host("a")
    net.add_ethernet("lan")
    with pytest.raises(ValueError):
        net.add_host("a")
    with pytest.raises(ValueError):
        net.add_ethernet("lan")

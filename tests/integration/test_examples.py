"""The shipped examples must keep running (import and execute main())."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent.parent / "examples"


def run_example(name, capsys):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "wrote 59000 bytes" in out
    assert "last line identical: True" in out


def test_video_server(capsys):
    out = run_example("video_server", capsys)
    assert "admitted CD-quality audio" in out
    assert "REJECTED full-frame colour video" in out
    assert "OK" in out


def test_failure_recovery(capsys):
    out = run_example("failure_recovery", capsys)
    assert "degraded read : OK" in out
    assert "degraded write: OK" in out
    assert "post-rebuild  : OK" in out
    assert "object is lost" in out


def test_record_store(capsys):
    out = run_example("record_store", capsys)
    assert "coalescing factor" in out
    assert "record  4999: OK" in out


@pytest.mark.slow
def test_tape_archive(capsys):
    out = run_example("tape_archive", capsys)
    assert "8 drive(s)" in out
    assert "Swift over 4 arrays" in out

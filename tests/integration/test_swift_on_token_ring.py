"""The full Swift protocol stack over the §5 gigabit token ring.

The prototype ran on Ethernet and the §5 study modelled the data path
abstractly; here the *actual* protocol implementation (agents, client
engine, parity) runs over the TokenRing medium with §5-style host cost
models — the configuration §7 predicts Swift would move to ("fully
exploit the emerging high-speed networks").
"""

import pytest

from repro.core import DistributionAgent, StorageAgent
from repro.core.deployment import INSTANT_DISK
from repro.des import Environment, StreamFactory
from repro.simdisk import Disk, LocalFileSystem
from repro.simnet import Network, mips_cost_model

MB = 1 << 20


def build_ring_swift(num_agents=4, parity=True, seed=41):
    env = Environment()
    streams = StreamFactory(seed)
    net = Network(env, streams)
    net.add_token_ring("ring")
    cost = mips_cost_model(100.0)
    client_host = net.add_host("client", send_cost=cost, recv_cost=cost)
    net.connect("client", "ring", tx_queue_packets=256)
    names = []
    for index in range(num_agents):
        name = f"agent{index}"
        names.append(name)
        net.add_host(name, send_cost=cost, recv_cost=cost)
        net.connect(name, "ring", tx_queue_packets=256)
        fs = LocalFileSystem(env, Disk(env, INSTANT_DISK), cache_blocks=4096)
        StorageAgent(env, net.host(name), fs, socket_buffer=256)
    engine = DistributionAgent(
        env, client_host, names, "obj",
        striping_unit=32 * 1024, packet_size=32 * 1024, parity=parity)
    return env, net, engine


def run(env, gen):
    return env.run(until=env.process(gen))


def test_roundtrip_over_gigabit_ring():
    env, net, engine = build_ring_swift()
    payload = bytes((i * 89) % 256 for i in range(2 * MB))
    run(env, engine.open(create=True))
    run(env, engine.write(0, payload))
    assert run(env, engine.read(0, len(payload))) == payload


def test_gigabit_transfer_is_fast():
    env, net, engine = build_ring_swift(parity=False)
    payload = b"\x5A" * (4 * MB)
    run(env, engine.open(create=True))
    start = env.now
    run(env, engine.write(0, payload))
    run(env, engine.read(0, len(payload)))
    elapsed = env.now - start
    rate = 2 * len(payload) / elapsed
    # With instant disks, 100 MIPS hosts and a gigabit ring, the data
    # rate lands in the tens of MB/s — vastly beyond the Ethernet lab.
    assert rate > 20e6


def test_burst_write_is_client_cpu_bound_not_ring_bound():
    # A full-speed burst from one 100-MIPS client: per 32 KB packet the
    # §5.1 cost is ~0.34 ms of CPU, capping the client near 95 MB/s —
    # below the ring's 125 MB/s, so the ring never reaches 100 %.
    env, net, engine = build_ring_swift(parity=False)
    run(env, engine.open(create=True))
    start = env.now
    run(env, engine.write(0, b"x" * (4 * MB)))
    rate = 4 * MB / (env.now - start)
    assert 60e6 < rate < 100e6
    assert 0.4 < net.medium("ring").utilization() < 0.95


def test_parity_recovery_still_works_on_the_ring():
    env, net, engine = build_ring_swift()
    payload = bytes((i * 31) % 256 for i in range(1 * MB))
    run(env, engine.open(create=True))
    run(env, engine.write(0, payload))
    engine.read_timeout_s = 0.01
    victim = engine.data_channels[0]
    # Crash by closing its sockets: simplest way to stop an agent here.
    victim_agent_host = net.host(victim.agent_host)
    for port in list(victim_agent_host._sockets):
        victim_agent_host._sockets[port].close()
    engine.mark_failed(0)
    assert run(env, engine.read(0, len(payload))) == payload
    assert engine.stats.reconstructed_units > 0

"""Property-based full-stack check: Swift behaves like a flat byte array.

Random sequences of writes, reads and seeks against a live deployment are
compared against a plain bytearray reference model — across striping
configurations, with and without parity.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import build_local_swift


operations = st.lists(
    st.one_of(
        st.tuples(st.just("write"),
                  st.integers(min_value=0, max_value=60_000),
                  st.binary(min_size=1, max_size=20_000)),
        st.tuples(st.just("read"),
                  st.integers(min_value=0, max_value=70_000),
                  st.integers(min_value=0, max_value=30_000)),
    ),
    min_size=1, max_size=8,
)


def apply_to_reference(reference: bytearray, op) -> bytes | None:
    kind, offset, arg = op
    if kind == "write":
        if len(reference) < offset + len(arg):
            reference.extend(b"\x00" * (offset + len(arg) - len(reference)))
        reference[offset:offset + len(arg)] = arg
        return None
    end = min(len(reference), offset + arg)
    if offset >= len(reference):
        return b""
    return bytes(reference[offset:end])


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=operations, unit=st.sampled_from([1024, 4096, 8192]))
def test_plain_swift_matches_reference(ops, unit):
    deployment = build_local_swift(num_agents=3)
    client = deployment.client()
    handle = client.open("obj", "w", striping_unit=unit)
    reference = bytearray()
    for op in ops:
        expected = apply_to_reference(reference, op)
        kind, offset, arg = op
        if kind == "write":
            handle.pwrite(offset, arg)
        else:
            assert handle.pread(offset, arg) == expected
    assert handle.pread(0, len(reference)) == bytes(reference)
    assert handle.size == len(reference)
    handle.close()


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=operations)
def test_parity_swift_matches_reference(ops):
    deployment = build_local_swift(num_agents=4, parity=True)
    client = deployment.client()
    handle = client.open("obj", "w", parity=True, striping_unit=4096)
    reference = bytearray()
    for op in ops:
        expected = apply_to_reference(reference, op)
        kind, offset, arg = op
        if kind == "write":
            handle.pwrite(offset, arg)
        else:
            assert handle.pread(offset, arg) == expected
    assert handle.pread(0, len(reference)) == bytes(reference)
    handle.close()


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=operations, victim=st.integers(min_value=0, max_value=2))
def test_degraded_parity_swift_matches_reference(ops, victim):
    """Same property with a data agent dead the whole time."""
    deployment = build_local_swift(num_agents=4, parity=True)
    client = deployment.client()
    handle = client.open("obj", "w", parity=True, striping_unit=4096)
    engine = handle.engine
    victim %= engine.layout.num_agents
    deployment.crash_agent(engine.data_channels[victim].agent_host)
    engine.mark_failed(victim)
    engine.read_timeout_s = 0.01
    reference = bytearray()
    for op in ops:
        expected = apply_to_reference(reference, op)
        kind, offset, arg = op
        if kind == "write":
            handle.pwrite(offset, arg)
        else:
            assert handle.pread(offset, arg) == expected
    assert handle.pread(0, len(reference)) == bytes(reference)

"""Full-stack integration: mediator + agents + client over real media."""

import pytest

from repro.core import (
    AdmissionError,
    AgentDescriptor,
    DistributionAgent,
    StorageAgent,
    StorageMediator,
    build_local_swift,
)
from repro.des import Environment, StreamFactory
from repro.simdisk import Disk, LocalFileSystem
from repro.simnet import Network
from repro.core.deployment import INSTANT_DISK

MB = 1 << 20


def test_two_mediators_share_agents():
    # §6: independent mediators controlling a common set of agents see
    # each other's reservations through the shared descriptors.
    first = StorageMediator()
    descriptors = [first.register_agent(f"a{i}", 1.0 * MB, 64 * MB)
                   for i in range(3)]
    second = StorageMediator()
    for descriptor in descriptors:
        second.adopt_agent(descriptor)

    session = first.negotiate("x", object_size=MB, data_rate=2.0 * MB)
    with pytest.raises(AdmissionError):
        second.negotiate("y", object_size=MB, data_rate=2.0 * MB)
    session.close()
    second.negotiate("y", object_size=MB, data_rate=2.0 * MB)


def test_adopt_duplicate_rejected():
    first = StorageMediator()
    descriptor = first.register_agent("a0", 1.0 * MB, 64 * MB)
    second = StorageMediator()
    second.adopt_agent(descriptor)
    with pytest.raises(ValueError):
        second.adopt_agent(descriptor)


def test_two_clients_share_one_deployment():
    deployment = build_local_swift(num_agents=3)
    alice = deployment.client()
    bob = deployment.client()
    fa = alice.open("shared-a", "w")
    fb = bob.open("shared-b", "w")
    fa.write(b"alice data " * 1000)
    fb.write(b"bob data " * 1000)
    assert fa.pread(0, 11) == b"alice data "
    assert fb.pread(0, 9) == b"bob data "
    fa.close()
    fb.close()
    # Sessions released: the mediator holds no leftover commitments.
    for name in deployment.mediator.agent_names:
        assert deployment.mediator.agent(name).committed_bandwidth == 0


def test_same_object_two_handles():
    deployment = build_local_swift(num_agents=3)
    client = deployment.client()
    writer = client.open("obj", "w")
    writer.write(b"0123456789" * 100)
    writer.close()
    reader = client.open("obj", "r")
    again = client.open("obj", "r")
    assert reader.read(10) == b"0123456789"
    assert again.pread(990, 10) == b"0123456789"
    reader.close()
    again.close()


def test_parity_swift_over_lossy_network_end_to_end():
    """The full feature stack at once: striping + parity + loss recovery."""
    env = Environment()
    streams = StreamFactory(99)
    net = Network(env, streams)
    net.add_ethernet("lan", loss_probability=0.08)
    client_host = net.add_host("client")
    net.connect("client", "lan", tx_queue_packets=4096)
    names = []
    agents = []
    for index in range(4):
        name = f"agent{index}"
        names.append(name)
        host = net.add_host(name)
        net.connect(name, "lan", tx_queue_packets=4096)
        fs = LocalFileSystem(env, Disk(env, INSTANT_DISK), cache_blocks=4096)
        agents.append(StorageAgent(env, host, fs, socket_buffer=4096,
                                   nak_timeout_s=0.05))
    engine = DistributionAgent(
        env, client_host, names, "obj", striping_unit=4096,
        packet_size=4096, parity=True,
        open_timeout_s=0.1, read_timeout_s=0.1, ack_timeout_s=0.1,
        max_retries=40)

    payload = bytes((i * 37 + 11) % 256 for i in range(150_000))

    def run(gen):
        return env.run(until=env.process(gen))

    run(engine.open(create=True))
    run(engine.write(0, payload))
    assert run(engine.read(0, len(payload))) == payload

    # Now crash a data agent *on top of* the lossy network.
    agents[1].crash()
    engine.mark_failed(1)
    assert run(engine.read(0, len(payload))) == payload
    assert engine.stats.reconstructed_units > 0


def test_mediator_driven_timed_testbed():
    """The mediator's plan drives the calibrated prototype testbed."""
    from repro.prototype import PrototypeTestbed
    testbed = PrototypeTestbed(seed=77)
    mediator = StorageMediator(packet_size=8192)
    for name in testbed.agent_names:
        mediator.register_agent(name, bandwidth=300 * 1024,
                                capacity_bytes=64 * MB)
    session = mediator.negotiate("obj", object_size=3 * MB,
                                 data_rate=600 * 1024.0)
    assert len(session.plan.agent_hosts) >= 2
    engine = DistributionAgent(
        testbed.env, testbed.client_host,
        list(session.plan.agent_hosts), "obj",
        striping_unit=session.plan.striping_unit,
        packet_size=session.plan.packet_size)

    payload = b"\x77" * (1 * MB)

    def workload():
        yield from engine.open(create=True)
        yield from engine.write(0, payload)
        data = yield from engine.read(0, len(payload))
        assert data == payload
        yield from engine.close()

    testbed._run(workload())
    session.close()

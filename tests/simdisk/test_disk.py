"""Disk model: service times, queueing, utilization."""

import pytest

from repro.des import Environment, RandomStream
from repro.simdisk import DISK_CATALOG, Disk, DiskSpec


def run_access(env, disk, **kwargs):
    result = {}

    def proc(env):
        result["time"] = yield from disk.access(**kwargs)

    env.process(proc(env))
    env.run()
    return result["time"]


def test_spec_validation():
    with pytest.raises(ValueError):
        DiskSpec("bad", -1.0, 0.008, 2.5e6)
    with pytest.raises(ValueError):
        DiskSpec("bad", 0.016, 0.008, 0.0)
    with pytest.raises(ValueError):
        DiskSpec("bad", 0.016, 0.008, 2.5e6, capacity_bytes=0)


def test_paper_states_37ms_for_32kb_on_m2372k():
    # §5.2: "transferring 32 kilobytes required about 37 milliseconds on
    # the average" (seek 16 + rotation 8.3 + 32768/2.5MB/s = 13.1 -> ~37ms).
    spec = DISK_CATALOG["Fujitsu M2372K"]
    assert spec.mean_access_time(32 * 1024) == pytest.approx(0.0374, abs=0.0005)


def test_deterministic_access_time_matches_spec():
    env = Environment()
    spec = DISK_CATALOG["Fujitsu M2372K"]
    disk = Disk(env, spec)  # no stream: expected values
    elapsed = run_access(env, disk, nbytes=32 * 1024)
    assert elapsed == pytest.approx(spec.mean_access_time(32 * 1024))


def test_multiblock_pays_positioning_per_block():
    env = Environment()
    spec = DISK_CATALOG["Fujitsu M2372K"]
    disk = Disk(env, spec)
    elapsed = run_access(env, disk, nbytes=4096, blocks=4)
    assert elapsed == pytest.approx(4 * spec.mean_access_time(4096))


def test_sequential_pays_positioning_once():
    env = Environment()
    spec = DISK_CATALOG["Fujitsu M2372K"]
    disk = Disk(env, spec)
    elapsed = run_access(env, disk, nbytes=4096, blocks=4, sequential=True)
    expected = (spec.avg_seek_s + spec.avg_rotation_s
                + 4 * spec.transfer_time(4096))
    assert elapsed == pytest.approx(expected)


def test_random_positioning_bounded_by_uniform_range():
    env = Environment()
    spec = DISK_CATALOG["Fujitsu M2372K"]
    disk = Disk(env, spec, stream=RandomStream(123))
    for _ in range(200):
        draw = disk.draw_positioning_time()
        assert 0.0 <= draw <= 2 * (spec.avg_seek_s + spec.avg_rotation_s)


def test_concurrent_requests_queue_on_spindle():
    env = Environment()
    spec = DISK_CATALOG["Fujitsu M2372K"]
    disk = Disk(env, spec)
    finish_times = []

    def user(env):
        yield from disk.access(nbytes=32 * 1024)
        finish_times.append(env.now)

    env.process(user(env))
    env.process(user(env))
    env.run()
    one = spec.mean_access_time(32 * 1024)
    assert finish_times == pytest.approx([one, 2 * one])


def test_multiblock_holds_resource_against_competitor():
    # The paper: "Multiblock requests are allowed to complete before the
    # resource is relinquished."
    env = Environment()
    spec = DISK_CATALOG["Fujitsu M2372K"]
    disk = Disk(env, spec)
    order = []

    def big(env):
        yield from disk.access(nbytes=4096, blocks=8)
        order.append("big")

    def small(env):
        yield env.timeout(0.001)  # arrives while 'big' is in progress
        yield from disk.access(nbytes=4096)
        order.append("small")

    env.process(big(env))
    env.process(small(env))
    env.run()
    assert order == ["big", "small"]


def test_utilization_full_when_saturated():
    env = Environment()
    disk = Disk(env, DISK_CATALOG["Fujitsu M2372K"])

    def user(env):
        for _ in range(10):
            yield from disk.access(nbytes=32 * 1024)

    env.process(user(env))
    env.run()
    assert disk.utilization() == pytest.approx(1.0)
    assert disk.blocks_served == 10
    assert disk.bytes_served == 10 * 32 * 1024


def test_access_argument_validation():
    env = Environment()
    disk = Disk(env, DISK_CATALOG["Fujitsu M2372K"])
    with pytest.raises(ValueError):
        list(disk.access(nbytes=4096, blocks=0))
    with pytest.raises(ValueError):
        list(disk.access(nbytes=-1))


def test_catalog_has_all_figure_disks():
    from repro.simdisk import FIGURE_5_6_DISKS
    for name in FIGURE_5_6_DISKS:
        assert name in DISK_CATALOG

"""LRU buffer cache behaviour."""

import pytest

from repro.simdisk import BufferCache


def test_capacity_validation():
    with pytest.raises(ValueError):
        BufferCache(0)


def test_miss_then_hit():
    cache = BufferCache(4)
    assert cache.lookup("a") is None
    cache.insert("a", b"data")
    assert cache.lookup("a") == b"data"
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.hit_ratio == 0.5


def test_lru_eviction_order():
    cache = BufferCache(2)
    cache.insert("a", b"1")
    cache.insert("b", b"2")
    cache.insert("c", b"3")  # evicts a
    assert "a" not in cache
    assert "b" in cache and "c" in cache
    assert cache.stats.evictions == 1


def test_lookup_promotes_entry():
    cache = BufferCache(2)
    cache.insert("a", b"1")
    cache.insert("b", b"2")
    cache.lookup("a")          # promote a
    cache.insert("c", b"3")    # evicts b, not a
    assert "a" in cache
    assert "b" not in cache


def test_dirty_eviction_reports_writeback():
    cache = BufferCache(1)
    cache.insert("a", b"1", dirty=True)
    writebacks = cache.insert("b", b"2")
    assert writebacks == ["a"]
    assert cache.stats.writebacks == 1


def test_clean_removes_dirty_mark():
    cache = BufferCache(2)
    cache.insert("a", b"1", dirty=True)
    cache.clean("a")
    assert cache.dirty_keys() == set()


def test_flush_returns_dirty_and_empties():
    cache = BufferCache(4)
    cache.insert("a", b"1", dirty=True)
    cache.insert("b", b"2")
    dirty = cache.flush()
    assert dirty == ["a"]
    assert len(cache) == 0
    assert cache.lookup("b") is None


def test_invalidate_single_block():
    cache = BufferCache(4)
    cache.insert("a", b"1", dirty=True)
    cache.invalidate("a")
    assert "a" not in cache
    assert cache.dirty_keys() == set()


def test_reinsert_same_key_updates_value():
    cache = BufferCache(2)
    cache.insert("a", b"old")
    cache.insert("a", b"new")
    assert cache.lookup("a") == b"new"
    assert len(cache) == 1


def test_hit_ratio_empty_cache():
    cache = BufferCache(4)
    assert cache.stats.hit_ratio == 0.0


def test_stats_reset():
    cache = BufferCache(4)
    cache.lookup("nope")
    cache.stats.reset()
    assert cache.stats.accesses == 0

"""RAID arrays and tape drives — the §6/§7 alternative backends."""

import pytest

from repro.des import Environment, RandomStream
from repro.simdisk import DAT_DDS1, RaidArray, TapeDrive, TapeSpec

MB = 1 << 20
KB = 1 << 10


def run(env, gen):
    holder = {}

    def wrapper():
        holder["v"] = yield from gen

    env.process(wrapper())
    env.run()
    return holder["v"]


def test_raid_validation():
    env = Environment()
    with pytest.raises(ValueError):
        RaidArray(env, num_members=1)
    with pytest.raises(ValueError):
        RaidArray(env, controller_rate=0)
    with pytest.raises(ValueError):
        RaidArray(env, controller_overhead_s=-1)


def test_raid_controller_caps_streaming_rate():
    env = Environment()
    raid = RaidArray(env, num_members=16, controller_rate=4 * MB)
    size = 8 * MB
    elapsed = run(env, raid.access(64 * KB, blocks=size // (64 * KB),
                                   sequential=True))
    rate = size / elapsed
    # 16 fast members, but the single controller caps near 4 MB/s.
    assert rate < 4.2 * MB
    assert rate > 2.5 * MB


def test_raid_members_help_small_blocks():
    # For positioning-dominated access the members parallelise the
    # transfer; more members cannot make positioning worse.
    env = Environment()
    small = RaidArray(env, num_members=2, controller_rate=100 * MB)
    big = RaidArray(env, num_members=16, controller_rate=100 * MB)
    assert big.block_service_time(256 * KB) <= \
        small.block_service_time(256 * KB)


def test_raid_counts_blocks():
    env = Environment()
    raid = RaidArray(env, num_members=4)
    run(env, raid.access(32 * KB, blocks=3))
    assert raid.blocks_served == 3
    assert raid.bytes_served == 3 * 32 * KB
    assert raid.utilization() > 0


def test_raid_queueing_serialises_at_controller():
    env = Environment()
    raid = RaidArray(env, num_members=4)
    done = []

    def user():
        yield from raid.access(32 * KB)
        done.append(env.now)

    env.process(user())
    env.process(user())
    env.run()
    assert done[1] == pytest.approx(2 * done[0], rel=0.01)


def test_tape_spec_validation():
    with pytest.raises(ValueError):
        TapeSpec("bad", -1, 1000, 100)
    with pytest.raises(ValueError):
        TapeSpec("bad", 1, 0, 100)
    with pytest.raises(ValueError):
        TapeSpec("bad", 1, 1000, 0)


def test_tape_streams_after_one_locate():
    env = Environment()
    drive = TapeDrive(env)
    size = 1 * MB
    first = run(env, drive.transfer(0, size))
    # First transfer pays the 20 s locate...
    assert first == pytest.approx(20.0 + size / DAT_DDS1.transfer_rate)
    # ...a contiguous continuation streams at the media rate.
    second = run(env, drive.transfer(size, size))
    assert second == pytest.approx(size / DAT_DDS1.transfer_rate)


def test_tape_random_access_pays_locate_again():
    env = Environment()
    drive = TapeDrive(env)
    run(env, drive.transfer(0, 1000))
    jump = run(env, drive.transfer(5_000_000, 1000))
    assert jump > 19.0


def test_tape_randomised_locate_bounded():
    env = Environment()
    drive = TapeDrive(env, stream=RandomStream(5))
    for _ in range(50):
        draw = drive.draw_position_time()
        assert 0.0 <= draw <= 2 * DAT_DDS1.avg_position_s


def test_striping_over_tapes_multiplies_streaming_rate():
    """The §7 claim: Swift over an array of DATs.

    Eight drives, each streaming its share of a large archive object in
    parallel, deliver ~8x one drive's rate (locates overlap).
    """
    size = 64 * MB

    def read_striped(num_drives):
        env = Environment()
        drives = [TapeDrive(env) for _ in range(num_drives)]
        share = size // num_drives

        def reader(drive):
            yield from drive.transfer(0, share)

        for drive in drives:
            env.process(reader(drive))
        env.run()
        return size / env.now

    single = read_striped(1)
    eight = read_striped(8)
    # Streaming parallelises perfectly; the per-drive locate is the only
    # non-amortised cost, so the speedup is a bit under 8x.
    assert eight > 5.5 * single

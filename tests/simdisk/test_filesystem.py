"""Block file system: data integrity, timing, cache interaction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.des import Environment
from repro.simdisk import (
    DISK_CATALOG,
    Disk,
    FileExists,
    FileNotFound,
    LocalFileSystem,
)


def make_fs(block_size=8192, **kwargs):
    env = Environment()
    disk = Disk(env, DISK_CATALOG["Fujitsu M2372K"])
    return env, LocalFileSystem(env, disk, block_size=block_size, **kwargs)


def run(env, gen):
    holder = {}

    def wrapper():
        holder["value"] = yield from gen

    env.process(wrapper())
    env.run()
    return holder.get("value")


def test_create_exists_unlink():
    env, fs = make_fs()
    assert not fs.exists("f")
    fs.create("f")
    assert fs.exists("f")
    assert fs.file_size("f") == 0
    fs.unlink("f")
    assert not fs.exists("f")


def test_exclusive_create_conflict():
    env, fs = make_fs()
    fs.create("f")
    with pytest.raises(FileExists):
        fs.create("f", exclusive=True)
    fs.create("f")  # non-exclusive recreate is fine


def test_operations_on_missing_file():
    env, fs = make_fs()
    with pytest.raises(FileNotFound):
        fs.file_size("missing")
    with pytest.raises(FileNotFound):
        run(env, fs.read("missing", 0, 10))


def test_write_read_roundtrip():
    env, fs = make_fs()
    fs.create("f")
    payload = bytes(range(256)) * 100
    run(env, fs.write("f", 0, payload))
    assert fs.file_size("f") == len(payload)
    data = run(env, fs.read("f", 0, len(payload)))
    assert data == payload


def test_read_crossing_block_boundaries():
    env, fs = make_fs(block_size=16)
    fs.create("f")
    payload = b"abcdefghijklmnopqrstuvwxyz0123456789"
    run(env, fs.write("f", 0, payload))
    assert run(env, fs.read("f", 10, 20)) == payload[10:30]


def test_overwrite_middle_of_file():
    env, fs = make_fs(block_size=16)
    fs.create("f")
    run(env, fs.write("f", 0, b"A" * 64))
    run(env, fs.write("f", 20, b"B" * 10))
    data = run(env, fs.read("f", 0, 64))
    assert data == b"A" * 20 + b"B" * 10 + b"A" * 34
    assert fs.file_size("f") == 64


def test_sparse_holes_read_as_zeros():
    env, fs = make_fs(block_size=16)
    fs.create("f")
    run(env, fs.write("f", 100, b"end"))
    data = run(env, fs.read("f", 0, 103))
    assert data == b"\x00" * 100 + b"end"


def test_short_read_at_eof():
    env, fs = make_fs()
    fs.create("f")
    run(env, fs.write("f", 0, b"hello"))
    assert run(env, fs.read("f", 3, 100)) == b"lo"
    assert run(env, fs.read("f", 99, 10)) == b""


def test_async_write_takes_no_disk_time():
    env, fs = make_fs()
    fs.create("f")
    run(env, fs.write("f", 0, b"x" * 65536, sync=False))
    assert env.now == 0.0
    assert fs.disk.blocks_served == 0


def test_sync_write_pays_disk():
    env, fs = make_fs()
    fs.create("f")
    run(env, fs.write("f", 0, b"x" * 65536, sync=True))
    assert env.now > 0.0
    assert fs.disk.blocks_served == 8


def test_sync_flushes_dirty_blocks_once():
    env, fs = make_fs()
    fs.create("f")
    run(env, fs.write("f", 0, b"x" * 65536))
    flushed = run(env, fs.sync("f"))
    assert flushed == 8
    # Everything clean now: a second sync writes nothing.
    assert run(env, fs.sync("f")) == 0


def test_cold_cache_read_pays_disk_warm_read_is_free():
    env, fs = make_fs()
    fs.create("f")
    run(env, fs.write("f", 0, b"y" * 32768))
    fs.flush_cache()
    before = env.now
    run(env, fs.read("f", 0, 32768))
    cold_time = env.now - before
    assert cold_time > 0
    before = env.now
    run(env, fs.read("f", 0, 32768))
    assert env.now == before  # warm: all hits


def test_flush_cache_preserves_data():
    env, fs = make_fs()
    fs.create("f")
    run(env, fs.write("f", 0, b"persist me"))
    fs.flush_cache()
    assert run(env, fs.read("f", 0, 10)) == b"persist me"


def test_unlink_drops_cache_entries():
    env, fs = make_fs()
    fs.create("f")
    run(env, fs.write("f", 0, b"z" * 8192))
    fs.unlink("f")
    assert len(fs.cache) == 0


def test_contiguous_allocation_reads_sequentially():
    # With contiguous layout a long cold read pays one positioning, so it
    # is much faster than scattered layout.
    env1, fs1 = make_fs(contiguous_allocation=True)
    fs1.create("f")
    run(env1, fs1.write("f", 0, b"a" * 512 * 1024))
    fs1.flush_cache()
    run(env1, fs1.read("f", 0, 512 * 1024))
    contiguous_time = env1.now

    env2, fs2 = make_fs(contiguous_allocation=False)
    fs2.create("f")
    run(env2, fs2.write("f", 0, b"a" * 512 * 1024))
    fs2.flush_cache()
    run(env2, fs2.read("f", 0, 512 * 1024))
    scattered_time = env2.now

    assert scattered_time > 2 * contiguous_time


def test_read_overhead_charged_per_block():
    env, fs = make_fs(read_block_overhead_s=0.010)
    fs.create("f")
    run(env, fs.write("f", 0, b"b" * 81920))  # 10 blocks
    fs.flush_cache()
    start = env.now
    run(env, fs.read("f", 0, 81920))
    spec = fs.disk.spec
    expected = (spec.avg_seek_s + spec.avg_rotation_s
                + 10 * spec.transfer_time(8192) + 10 * 0.010)
    assert env.now - start == pytest.approx(expected)


def test_argument_validation():
    env, fs = make_fs()
    fs.create("f")
    with pytest.raises(ValueError):
        run(env, fs.write("f", -1, b"x"))
    with pytest.raises(ValueError):
        run(env, fs.read("f", -1, 4))
    with pytest.raises(ValueError):
        LocalFileSystem(env, fs.disk, block_size=0)


def test_list_files_sorted():
    env, fs = make_fs()
    for name in ["zebra", "alpha", "mid"]:
        fs.create(name)
    assert fs.list_files() == ["alpha", "mid", "zebra"]


@settings(max_examples=30, deadline=None)
@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2000),
            st.binary(min_size=1, max_size=500),
        ),
        min_size=1,
        max_size=10,
    )
)
def test_fs_matches_reference_bytearray(writes):
    """Property: the FS behaves like a flat byte array with holes."""
    env, fs = make_fs(block_size=64)
    fs.create("f")
    reference = bytearray()
    for offset, data in writes:
        run(env, fs.write("f", offset, data))
        if len(reference) < offset + len(data):
            reference.extend(b"\x00" * (offset + len(data) - len(reference)))
        reference[offset:offset + len(data)] = data
    fs.flush_cache()
    assert run(env, fs.read("f", 0, len(reference))) == bytes(reference)
    assert fs.file_size("f") == len(reference)


def test_concurrent_readers_share_one_in_flight_io():
    """Cold concurrent reads of one block cost exactly one disk access.

    The second reader must neither get the data early (before the I/O
    completes) nor issue a duplicate disk access: it waits on the first
    reader's in-flight fetch, like a real buffer cache.
    """
    env, fs = make_fs()
    fs.create("f")
    run(env, fs.write("f", 0, b"c" * 8192))
    fs.flush_cache()
    finish_times = []

    def reader():
        yield from fs.read("f", 0, 8192)
        finish_times.append(env.now)

    env.process(reader())
    env.process(reader())
    env.run()
    one_access = (fs.disk.spec.avg_seek_s + fs.disk.spec.avg_rotation_s
                  + fs.disk.spec.transfer_time(8192))
    assert finish_times[0] == pytest.approx(one_access)
    assert finish_times[1] == pytest.approx(one_access)
    assert fs.disk.blocks_served == 1  # no duplicate fetch


def test_distinct_blocks_still_queue_at_the_spindle():
    env, fs = make_fs()
    fs.create("f")
    run(env, fs.write("f", 0, b"c" * 16384))
    fs.flush_cache()
    finish_times = []

    def reader(offset):
        yield from fs.read("f", offset, 8192)
        finish_times.append(env.now)

    env.process(reader(0))
    env.process(reader(8192))
    env.run()
    assert finish_times[1] > finish_times[0]
    assert fs.disk.blocks_served == 2


def test_cache_populated_after_cold_read():
    env, fs = make_fs()
    fs.create("f")
    run(env, fs.write("f", 0, b"w" * 16384))
    fs.flush_cache()
    run(env, fs.read("f", 0, 16384))
    assert len(fs.cache) == 2  # both blocks cached after the I/O

"""Calibrated SCSI path: sequential rates must land near Table 2."""

import pytest

from repro.des import Environment
from repro.simdisk import ScsiMode, make_scsi_filesystem

MB = 1 << 20
KB = 1 << 10


def run(env, gen):
    holder = {}

    def wrapper():
        holder["value"] = yield from gen

    env.process(wrapper())
    env.run()
    return holder.get("value")


def sequential_read_rate(mode, nbytes):
    env = Environment()
    fs = make_scsi_filesystem(env, mode=mode)
    fs.create("f")
    run(env, fs.write("f", 0, b"d" * nbytes))
    fs.flush_cache()
    start = env.now
    run(env, fs.read("f", 0, nbytes))
    return nbytes / KB / (env.now - start)


def sequential_write_rate(nbytes):
    env = Environment()
    fs = make_scsi_filesystem(env)
    fs.create("f")
    start = env.now
    run(env, fs.write("f", 0, b"d" * nbytes, sync=True))
    return nbytes / KB / (env.now - start)


def test_sync_read_rate_near_table2():
    # Table 2: read 654-682 KB/s.
    rate = sequential_read_rate(ScsiMode.SYNCHRONOUS, 3 * MB)
    assert 630 <= rate <= 700


def test_async_read_rate_is_about_half():
    # §4 footnote 2: synchronous mode doubled the read data-rate.
    sync = sequential_read_rate(ScsiMode.SYNCHRONOUS, 3 * MB)
    async_ = sequential_read_rate(ScsiMode.ASYNCHRONOUS, 3 * MB)
    assert async_ == pytest.approx(sync / 2, rel=0.15)


def test_sync_write_rate_near_table2():
    # Table 2: write 314-316 KB/s.
    rate = sequential_write_rate(3 * MB)
    assert 295 <= rate <= 335


def test_rates_stable_across_sizes():
    # Table 2 shows nearly flat rates from 3 MB to 9 MB.
    r3 = sequential_read_rate(ScsiMode.SYNCHRONOUS, 3 * MB)
    r9 = sequential_read_rate(ScsiMode.SYNCHRONOUS, 9 * MB)
    assert r9 == pytest.approx(r3, rel=0.05)

"""Counter reset between engine runs (tentpole satellite: des/stats.py)."""

import dataclasses
import math

import pytest

from repro.core.storage_agent import AgentStats
from repro.des import (
    Environment,
    Histogram,
    OnlineStats,
    SampleSet,
    UtilizationMonitor,
)
from repro.sim import SimConfig, run_once


def test_online_stats_reset_matches_fresh():
    stats = OnlineStats()
    stats.extend([1.0, 2.0, 3.0])
    stats.reset()
    assert stats.count == 0
    assert stats.mean == 0.0
    assert stats.variance == 0.0
    with pytest.raises(ValueError):
        stats.minimum
    stats.add(5.0)
    assert stats.mean == 5.0
    assert stats.minimum == 5.0 == stats.maximum


def test_sample_set_reset():
    samples = SampleSet([4.0, 6.0])
    samples.reset()
    assert len(samples) == 0
    samples.add(1.5)
    assert samples.mean == 1.5
    assert samples.samples == [1.5]


def test_histogram_reset():
    hist = Histogram()
    hist.extend([1.0, 9.0, 5.0])
    assert hist.p50() == 5.0
    hist.reset()
    assert len(hist) == 0
    assert hist.mean == 0.0
    with pytest.raises(ValueError):
        hist.quantile(0.5)
    hist.add(2.0)
    assert hist.p50() == 2.0


def test_utilization_monitor_reset_discards_history():
    env = Environment()

    def workload(env, monitor):
        monitor.busy()
        yield env.timeout(4.0)
        monitor.idle()
        monitor.reset()          # new window starts at t=4
        yield env.timeout(1.0)   # idle second
        monitor.busy()
        yield env.timeout(1.0)
        monitor.idle()

    monitor = UtilizationMonitor(env)
    env.process(workload(env, monitor))
    env.run()
    # Post-reset window: 2 s elapsed, 1 s busy.
    assert monitor.busy_time == pytest.approx(1.0)
    assert monitor.utilization() == pytest.approx(0.5)


def test_utilization_monitor_reset_keeps_open_busy_interval():
    env = Environment()

    def workload(env, monitor):
        monitor.busy()
        yield env.timeout(3.0)
        monitor.reset()          # still busy across the reset
        yield env.timeout(2.0)
        monitor.idle()

    monitor = UtilizationMonitor(env)
    env.process(workload(env, monitor))
    env.run()
    assert monitor.busy_time == pytest.approx(2.0)
    assert monitor.utilization() == pytest.approx(1.0)


def test_agent_stats_reset():
    stats = AgentStats()
    stats.opens = 3
    stats.bytes_read = 1024
    stats.naks_sent = 2
    stats.reset()
    assert stats.opens == 0
    assert stats.bytes_read == 0
    assert stats.naks_sent == 0
    assert stats.reads_served == 0
    assert stats.write_ops_completed == 0
    assert stats.bytes_written == 0
    assert stats.duplicate_packets == 0


def _tiny_config():
    return SimConfig(num_disks=2, num_clients=2, num_requests=12,
                     warmup_requests=2, arrival_rate=4.0, seed=11)


def test_back_to_back_runs_are_identical():
    # With resettable counters and explicit seeds, the same config run
    # twice in one interpreter produces bit-identical results.
    first = run_once(_tiny_config())
    second = run_once(_tiny_config())
    for field in dataclasses.fields(first):
        if field.name == "config":
            continue
        a = getattr(first, field.name)
        b = getattr(second, field.name)
        assert a == b or (math.isnan(a) and math.isnan(b)), field.name

"""Dynamic happens-before race detection over live DES runs."""

import dataclasses

import pytest

from repro.check import RaceError, detect_races
from repro.des import Environment, Resource
from repro.des.stats import OnlineStats
from repro.sim.model import SwiftSimModel
from repro.sim.workload import SimConfig


def test_same_time_unordered_writes_are_a_race():
    env = Environment()
    stats = OnlineStats()

    def writer(value):
        yield env.timeout(1.0)
        stats.add(value)

    with detect_races(env, watch=[stats]) as detector:
        env.process(writer(1.0))
        env.process(writer(2.0))
        env.run()
    assert len(detector.races) == 1
    report = detector.races[0]
    assert report.time == 1.0
    assert report.label == "OnlineStats"
    # Both sides carry a stack trace pointing at the offending adds.
    assert "stats.add(value)" in report.first.stack
    assert "stats.add(value)" in report.second.stack
    with pytest.raises(RaceError):
        detector.assert_clean()


def test_event_ordered_writes_are_clean():
    # succeed() -> yield establishes happens-before: the tie-break can
    # never run `second`'s add before `first`'s.
    env = Environment()
    stats = OnlineStats()
    gate = env.event()

    def first():
        yield env.timeout(1.0)
        stats.add(1.0)
        gate.succeed()

    def second():
        yield gate
        stats.add(2.0)

    with detect_races(env, watch=[stats]) as detector:
        env.process(first())
        env.process(second())
        env.run()
    assert detector.races == []
    detector.assert_clean()


def test_distinct_timestamps_are_never_a_race():
    env = Environment()
    stats = OnlineStats()

    def writer(value, delay):
        yield env.timeout(delay)
        stats.add(value)

    with detect_races(env, watch=[stats]) as detector:
        env.process(writer(1.0, 1.0))
        env.process(writer(2.0, 2.0))
        env.run()
    assert detector.races == []


def test_resource_release_acquire_edge_orders_the_holders():
    # Two processes serialize on a capacity-1 resource; the second's
    # critical-section write happens at the same timestamp as the first's
    # (t=1.0), but the release->acquire edge orders them.  The requests
    # themselves are staggered so the only same-time pair is the one the
    # resource hand-off must order.
    env = Environment()
    lock = Resource(env, capacity=1)
    stats = OnlineStats()

    def first():
        with lock.request() as grant:
            yield grant
            yield env.timeout(1.0)
            stats.add(1.0)

    def second():
        yield env.timeout(0.5)
        with lock.request() as grant:
            yield grant
            stats.add(2.0)

    with detect_races(env, watch=[stats]) as detector:
        env.process(first())
        env.process(second())
        env.run()
    assert detector.races == [], detector.format_races()


def test_same_time_resource_enqueues_are_a_race():
    # Two requests land on one Resource at the same timestamp with no
    # ordering: the tie-break decides the FIFO ticket order, which is
    # exactly the hazard the detector must surface.
    env = Environment()
    shared = Resource(env, capacity=1)

    def claimer():
        yield env.timeout(1.0)
        with shared.request() as grant:
            yield grant
            yield env.timeout(0.5)

    with detect_races(env) as detector:
        env.process(claimer())
        env.process(claimer())
        env.run()
    assert len(detector.races) >= 1
    assert any(r.label == "Resource.request" for r in detector.races)


def test_commuting_release_and_enqueue_are_not_reported():
    # One process releases while another enqueues at the same timestamp:
    # either order yields the identical final state, so no report.
    env = Environment()
    shared = Resource(env, capacity=1)

    def holder():
        with shared.request() as grant:
            yield grant
            yield env.timeout(1.0)

    def late_claimer():
        yield env.timeout(1.0)
        with shared.request() as grant:
            yield grant

    with detect_races(env) as detector:
        env.process(holder())
        env.process(late_claimer())
        env.run()
    assert detector.races == [], detector.format_races()


def test_watch_requires_an_observer_hook():
    env = Environment()
    with pytest.raises(TypeError):
        with detect_races(env, watch=[object()]):
            pass


def test_report_formatting_names_both_sides():
    env = Environment()
    stats = OnlineStats()

    def writer(value):
        yield env.timeout(1.0)
        stats.add(value)

    with detect_races(env, watch=[stats]) as detector:
        env.process(writer(1.0))
        env.process(writer(2.0))
        env.run()
    text = detector.format_races()
    assert "1 schedule-sensitive access pair(s)" in text
    assert "first write" in text and "second write" in text


def test_figure3_workload_is_race_free():
    # The acceptance bar: the shipped end-to-end model has no
    # schedule-sensitive accesses (a scaled-down Figure 3 run).
    config = SimConfig(num_requests=40, warmup_requests=4)
    model = SwiftSimModel(config)
    watch = [value for value in vars(model).values()
             if isinstance(value, OnlineStats)]
    assert watch, "expected the model to expose stats accumulators"
    with detect_races(model.env, watch=watch) as detector:
        result = model.run()
    assert detector.races == [], detector.format_races()
    # The instrumented run still produced a meaningful result.
    assert result.completed > 0
    assert dataclasses.asdict(result)["client_data_rate"] > 0

"""The ``# repro: allow[units]`` escape hatch silences the whole pass.

Zero findings fire here: the group comment covers all three unit rules
on its line.
"""


def deliberately_mixed(latency_s, payload_bytes):
    return latency_s + payload_bytes  # repro: allow[units]


def deliberate_bit_count(frame_bytes):
    # repro: allow[unit-bitbyte]
    return frame_bytes * 8

"""Unit-clean twin: the same computations through repro.units.

Zero findings fire here — every conversion goes through a named
converter, so the fixtures above prove the *bug*, not the idiom, is
what the analyzer flags.
"""

from repro.units import ms, s_to_ms, seconds_to_send, to_bytes_per_s


def total_cost_s(latency_s, payload_bytes, link_bits_per_s):
    return latency_s + seconds_to_send(payload_bytes, link_bits_per_s)


def link_capacity(ring_bits_per_s):
    link_bytes_per_s = to_bytes_per_s(ring_bits_per_s)
    return link_bytes_per_s


def wait_for_ack(env, ack_delay_ms):
    yield env.timeout(ms(ack_delay_ms))


def report_millis(elapsed_s):
    return s_to_ms(elapsed_s)

"""Seeded bug: yields a millisecond quantity to env.timeout().

Simulated delays are seconds; exactly one ``unit-mismatch`` finding
fires here.
"""


def wait_for_ack(env, ack_delay_ms):
    yield env.timeout(ack_delay_ms)

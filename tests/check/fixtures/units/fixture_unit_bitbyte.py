"""Seeded bug: inline * 8 bit-byte conversion on a byte quantity.

Exactly one ``unit-bitbyte`` finding fires here.
"""


def frame_bit_count(frame_bytes):
    return frame_bytes * 8

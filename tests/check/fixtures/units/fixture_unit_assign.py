"""Seeded bug: stores a bit rate into a name declared bytes-per-second.

The Mb/s-into-MB/s class of bug (an 8x data-rate error).  Exactly one
``unit-mismatch`` finding fires here.
"""


def link_capacity(ring_bits_per_s):
    link_bytes_per_s = ring_bits_per_s
    return link_bytes_per_s

"""Seeded bug: adds a latency (seconds) to a payload size (bytes).

Exactly one ``unit-mismatch`` finding fires here.
"""


def total_cost(latency_s, payload_bytes):
    return latency_s + payload_bytes

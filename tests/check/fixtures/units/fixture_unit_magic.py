"""Seeded bug: magic 1000 scale factor on a seconds quantity.

Exactly one ``unit-magic`` finding fires here.
"""


def report_millis(elapsed_s):
    return elapsed_s * 1000.0

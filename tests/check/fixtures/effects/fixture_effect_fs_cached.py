"""Mutation fixture: filesystem read under a cached run.

A calibration file loaded mid-run makes the result a function of
whatever happens to be on disk — invisible to the cache key and
different on every host.
"""

from pathlib import Path


def run_cached(config):
    """repro: cached-entry"""
    return _simulate(config, _calibration())


def _calibration():
    return float(Path("/etc/swift/seek_ms").read_text())


def _simulate(config, seek_ms):
    return seek_ms * 2.0

"""Mutation fixture: module-global accumulator mutated in a sweep worker.

Pool workers are reused across tasks: the accumulator survives from one
task to the next, so a worker's result depends on which tasks its
process happened to run before — the classic hermeticity bug.
"""

_completed_rates: dict = {}


def sweep_worker(task):
    """One pool-dispatched sweep cell.

    repro: worker-entry
    """
    rate, result = _run(task)
    _record(rate, result)
    return result


def _run(task):
    return task[0], task[0] * 2.0


def _record(rate, result):
    _completed_rates[rate] = result

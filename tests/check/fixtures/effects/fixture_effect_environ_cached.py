"""Mutation fixture: ``os.environ`` read under a cached run.

An environment-tuned pipeline depth changes the simulated schedule but
is invisible to the cache key, so two hosts (or two shells) silently
share poisoned cache entries.
"""

import os


def run_cached(config):
    """repro: cached-entry"""
    return simulate(config, pipeline_depth())


def pipeline_depth():
    return int(os.environ.get("SWIFT_PIPELINE_DEPTH", "4"))


def simulate(config, depth):
    return depth * 1.0

"""Clean fixture: the sanctioned counterparts of every effects mutation.

All randomness flows through a seeded stream object handed in by the
caller, tuning comes from the config, constants are immutable
module-level values (covered by the code digest), and nothing touches
the clock, the environment, or the filesystem.
"""

BLOCK_SIZE = 4096  # immutable module constant: keyed by the code digest


def run_cached(config, streams):
    """repro: cached-entry"""
    return _simulate(config, streams)


def sweep_worker(task):
    """repro: worker-entry"""
    config, streams = task
    return run_cached(config, streams)


def bench_arrivals(count, stream):
    """repro: bench-entry"""
    return [stream.expovariate(1.0) for _ in range(count)]


def _simulate(config, streams):
    return _service_time(BLOCK_SIZE, streams)


def _service_time(nbytes, streams):
    return nbytes / 1.0e6 + streams.uniform(0.0, 1e-6)

"""Mutation fixture: cached run reads mutable module-level tuning state.

``set_tuning`` mutates the table, so its value at run time depends on
call history — state the cache key never sees.  (A module-level
*constant* would be fine: the code digest covers it.)
"""

_tuning: dict = {"batch": 8}


def set_tuning(key, value):
    _tuning[key] = value


def run_cached(config):
    """repro: cached-entry"""
    return _simulate(config)


def _simulate(config):
    return _tuning["batch"] * 1.0

"""Mutation fixture: bare ``random.random()`` in a workload generator.

Benchmark arrivals drawn from the ambient module-level RNG cannot be
replayed: every invocation reports a different curve.
"""

import random  # repro: allow[raw-random]


def bench_arrivals(count):
    """Generate the benchmark arrival gaps.

    repro: bench-entry
    """
    return [_gap() for _ in range(count)]


def _gap():
    return -0.1 * random.random()  # repro: allow[unseeded-rng]

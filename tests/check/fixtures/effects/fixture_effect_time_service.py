"""Mutation fixture: hidden wall-clock read in a disk service-time model.

The cached entry point never touches the clock itself — the violation
hides two calls down, which is exactly what the straight-line lints
cannot see and the call-graph pass must.
"""

import time


def run_cached(config):
    """One cacheable simulation run.

    repro: cached-entry
    """
    total = 0.0
    for _ in range(8):
        total += _disk_pass(config)
    return total


def _disk_pass(config):
    return service_time(4096)


def service_time(nbytes):
    jitter = time.time() % 1e-6  # repro: allow[wall-clock]
    return nbytes / 1.0e6 + jitter

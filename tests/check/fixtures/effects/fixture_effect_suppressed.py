"""Suppressed twin: the time-service violation under ``allow[effects]``.

The group alias covers every ``effect-*`` rule, so the pass reports
nothing here; the shipped tree's acceptance bar is zero of these.
"""

import time


def run_cached(config):
    """repro: cached-entry"""
    return service_time(4096)


def service_time(nbytes):
    jitter = time.time() % 1e-6  # repro: allow[effects, wall-clock]
    return nbytes / 1.0e6 + jitter

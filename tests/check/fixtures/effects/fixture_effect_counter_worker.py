"""Mutation fixture: ``itertools.count`` id counter advanced in a worker.

``next()`` on a module-global iterator is a write: ids assigned in a
reused pool process depend on how many tasks it served before, so a
result that embeds them is not reproducible.
"""

import itertools

_op_ids = itertools.count(1)


def sweep_worker(task):
    """repro: worker-entry"""
    return _stamp(task)


def _stamp(task):
    return (next(_op_ids), task)

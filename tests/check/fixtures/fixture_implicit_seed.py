"""Fixture: one StreamFactory built without a master seed."""

from repro.des import StreamFactory


def build():
    return StreamFactory()

"""Fixture: one mutable default argument in an event handler."""


def on_event(event, backlog=[]):
    backlog.append(event)
    return backlog

"""Clean fixture: sanctioned zero-copy idioms produce no findings.

repro: hot-path

Every pattern here is the blessed counterpart of a flagged one:
``.tobytes()`` for deliberate copies, preallocated buffers with slice
assignment for padding, views taken *after* the flush, and narrowing
rebinds that keep a view alive over its own backing.
"""


def sanctioned(packet, length):
    payload = packet.payload
    copy = payload.tobytes()
    padded = bytearray(length)
    padded[:len(copy)] = copy
    remaining = memoryview(copy)
    remaining = remaining[4:]
    return padded, remaining


class Flusher:
    def rewrite(self):
        self.flush()
        view = memoryview(self._write_buffer)
        return view.tobytes()

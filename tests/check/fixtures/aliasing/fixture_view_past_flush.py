"""Mutation fixture: a view of the write buffer read after flush.

``flush()`` may swap or drain the self-owned buffer wholesale, so the
view taken before it dangles.  Expected: exactly one ``view-escape``
finding.
"""


class Writer:
    def drain(self):
        view = memoryview(self._write_buffer)
        self.flush()
        return view.tobytes()

"""Mutation fixture: concatenation padding of a borrowed view.

repro: hot-path

The pre-fix shape of distribution._fetch_packet's short-read padding:
``view + b"..."`` forces a flattening copy of the payload on the read
hot path.  Expected: exactly one ``hidden-copy`` finding.
"""


def pad(packet, length):
    payload = packet.payload
    if len(payload) < length:
        payload = payload + b"\x00" * (length - len(payload))
    return payload

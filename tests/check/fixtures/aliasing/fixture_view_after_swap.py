"""Mutation fixture: backing buffer swapped out from under a live view.

Rebinding the buffer name is a buffer swap; the old backing keeps the
view alive but nothing else writes to it again.  Expected: exactly one
``view-escape`` finding.
"""


def rotate():
    buffer = bytearray(64)
    view = memoryview(buffer)
    buffer = bytearray(64)
    return view[0]

"""Mutation fixture: a borrowed packet view parked on self.

``packet.payload`` is a zero-copy slice of the sender's buffer (see the
annotation table in repro.check.aliasing); storing it on the instance
outlives the borrow.  Expected: exactly one ``view-escape`` finding.
"""


class Assembler:
    def stash(self, packet):
        view = packet.payload
        self._kept = view

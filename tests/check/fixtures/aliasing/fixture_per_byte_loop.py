"""Mutation fixture: a per-byte Python loop over a view.

repro: hot-path

Iterating a view byte-by-byte costs an object cycle per byte; hot paths
must use whole-buffer operations.  Expected: exactly one ``hidden-copy``
finding.
"""


def checksum(data):
    view = memoryview(data)
    total = 0
    for byte in view:
        total = total + byte
    return total % 251

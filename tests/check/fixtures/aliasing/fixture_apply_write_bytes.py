"""Mutation fixture: the bytes()-on-a-view copy from _apply_write.

repro: hot-path

This is the pre-fix shape of simdisk/filesystem._apply_write: flattening
the remaining view per block instead of slice-assigning into a
preallocated bytearray.  Expected: exactly one ``hidden-copy`` finding.
"""


def apply_write(store, offset, data):
    remaining = memoryview(data)
    old = store[offset]
    new = old[:4] + bytes(remaining[:4]) + old[8:]
    return new

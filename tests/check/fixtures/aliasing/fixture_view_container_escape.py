"""Mutation fixture: a borrowed view appended to a self-owned container.

The list outlives the call, so the borrow escapes its frame.  Expected:
exactly one ``view-escape`` finding.
"""


class Collector:
    def keep(self, packet):
        piece = packet.payload
        self._pieces.append(piece)

"""Suppressed fixture: ``allow[aliasing]`` silences the whole pass.

repro: hot-path

The flagged line would fire both ``view-escape`` (stale load past the
flush) and ``hidden-copy`` (``bytes()`` on a view in a hot file); the
single group comment covers both.
"""


class Writer:
    def drain(self):
        view = memoryview(self._write_buffer)
        self.flush()
        # repro: allow[aliasing]
        kept = bytes(view)
        return kept

"""Mutation fixture: a pooled event referenced past the free-list append.

After ``timeout_pool.append(event)`` the pool owns the object and may
re-arm it as a different logical event; the trailing read races that
re-arm.  Expected: exactly one ``pool-leak`` finding.
"""


def recycle(event, timeout_pool):
    event.callbacks = []
    timeout_pool.append(event)
    return event.delay

"""Mutation fixture: ljust padding builds a fresh copy.

repro: hot-path

``.ljust()`` allocates and fills a brand-new object; hot paths pad by
writing into a preallocated buffer.  Expected: exactly one
``hidden-copy`` finding.
"""


def pad_block(chunk, block_size):
    return chunk.ljust(block_size, b"\x00")

"""Fixture: two processes nesting the same resources in opposite order."""


def forward(env, disk, ring):
    with disk.request() as hold_disk:
        yield hold_disk
        with ring.request() as hold_ring:
            yield hold_ring
            yield env.timeout(0.001)


def backward(env, disk, ring):
    with ring.request() as hold_ring:
        yield hold_ring
        with disk.request() as hold_disk:
            yield hold_disk
            yield env.timeout(0.001)

"""Fixture: one draw from the OS-seeded global RNG."""

import random  # repro: allow[raw-random]


def jitter():
    return random.random()

"""Fixture: a lost-update read-modify-write spanning a yield."""


def lossy_increment(env, shared):
    snapshot = shared.total
    yield env.timeout(0.001)
    shared.total = snapshot + 1


def guarded_increment(env, shared, lock):
    # The same shape under a request() hold is serialized, hence clean.
    with lock.request() as grant:
        yield grant
        snapshot = shared.total
        yield env.timeout(0.001)
        shared.total = snapshot + 1

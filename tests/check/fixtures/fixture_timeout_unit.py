"""Fixture: one timeout constant whose name hides its unit."""

ACK_TIMEOUT = 5


def wait_for_ack(sock):
    return sock.recv_wait(ACK_TIMEOUT)

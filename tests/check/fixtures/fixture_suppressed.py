"""Fixture: a violation silenced by an allow comment (zero findings)."""

import time  # repro: allow[*]


def wall_stamp():
    return time.time()  # repro: allow[wall-clock]

"""Fixture: one unbounded retransmit loop around a guarded wait."""


def fetch(sock, request, timeout_s=0.5):
    while True:
        sock.send(request)
        reply = yield sock.recv_wait(timeout_s)
        if reply is not None:
            return reply

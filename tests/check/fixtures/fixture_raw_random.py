"""Fixture: stdlib ``random`` imported outside des/random_streams.py."""

import random


def roll(sides):
    return sides  # the import alone is the violation

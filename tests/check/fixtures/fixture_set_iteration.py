"""Fixture: one direct iteration over a set."""


def drain(pending):
    for item in set(pending):
        yield item

"""Fixture: one bare receive with no timeout guard."""


def await_reply(sock):
    datagram = yield sock.recv()
    return datagram.message

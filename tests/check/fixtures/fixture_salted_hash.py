"""Fixture: one builtin hash() used for placement."""


def shard(key, buckets):
    return hash(key) % buckets

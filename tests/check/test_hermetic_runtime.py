"""The effect/purity pass, runtime half: the hermeticity sanitizer."""

import os
import random
import time

import pytest

from repro.check.sanitize import (
    AmbientReadError,
    HermeticityError,
    HermeticitySanitizer,
    hermetic_sanitize,
)
from repro.sim.parallel import _run_config
from repro.sim.workload import SimConfig

CONFIG = SimConfig(num_disks=2, arrival_rate=5.0, num_requests=60,
                   warmup_requests=10, seed=7)


# -- ambient-read traps -------------------------------------------------------


def test_time_read_inside_block_raises():
    with pytest.raises(AmbientReadError) as excinfo:
        with hermetic_sanitize():
            time.time()
    assert "time.time()" in str(excinfo.value)
    assert "hermetic block entered at:" in str(excinfo.value)


def test_monotonic_is_trapped_but_perf_counter_is_not():
    with hermetic_sanitize():
        elapsed = time.perf_counter()  # the blessed benchmarking clock
        with pytest.raises(AmbientReadError):
            time.monotonic()
    assert elapsed > 0.0


def test_module_level_random_raises_but_seeded_instances_work():
    with hermetic_sanitize():
        rng = random.Random(42)
        value = rng.random()  # RandomStream._rng style: untouched
        with pytest.raises(AmbientReadError):
            random.random()
    assert 0.0 <= value < 1.0


def test_environ_reads_raise_via_both_spellings():
    with hermetic_sanitize():
        with pytest.raises(AmbientReadError):
            os.environ.get("HOME")
        with pytest.raises(AmbientReadError):
            os.getenv("HOME")
        with pytest.raises(AmbientReadError):
            "HOME" in os.environ


def test_traps_are_fully_restored_after_the_block():
    before_time = time.time
    before_environ = os.environ
    with hermetic_sanitize():
        pass
    assert time.time is before_time
    assert os.environ is before_environ
    assert time.time() > 0.0
    assert os.environ.get("PATH") is not None


def test_traps_restored_even_when_body_raises():
    with pytest.raises(RuntimeError):
        with hermetic_sanitize():
            raise RuntimeError("body failure")
    assert time.time() > 0.0
    assert isinstance(os.environ.get("PATH", ""), str)


def test_trap_error_carries_dual_stacks():
    try:
        with hermetic_sanitize():
            time.time()
    except AmbientReadError as error:
        message = str(error)
        assert "hermetic block entered at:" in message
        assert "use site: this exception's own traceback" in message
    else:  # pragma: no cover
        pytest.fail("trap did not fire")


# -- module-global snapshot/diff ----------------------------------------------


def test_undeclared_global_drift_raises_at_exit():
    import repro.simnet.frames as frames
    with pytest.raises(HermeticityError) as excinfo:
        with hermetic_sanitize():
            next(frames._datagram_ids)
    assert "_datagram_ids" in str(excinfo.value)
    assert "invisible to the cache key" in str(excinfo.value)


def test_blessed_memo_population_is_allowed():
    import repro.sim.cache as cache
    from repro.sim.cache import config_key
    cache._code_version_cache.clear()
    with hermetic_sanitize():
        config_key(CONFIG)
    assert cache._code_version_cache  # populated, and no error


def test_empty_allowlist_flags_the_memo_too():
    import repro.sim.cache as cache
    from repro.sim.cache import config_key
    cache._code_version_cache.clear()
    with pytest.raises(HermeticityError) as excinfo:
        with hermetic_sanitize(allowed=()):
            config_key(CONFIG)
    assert "_code_version_cache" in str(excinfo.value)


def test_explicit_watch_module_registration():
    import repro.simnet.frames as frames
    monitor = HermeticitySanitizer()
    monitor.watch_module(frames)
    assert ("repro.simnet.frames", "_datagram_ids") in monitor._watched


# -- the real cached run ------------------------------------------------------


def test_cached_model_run_is_hermetic():
    # The headline guarantee: the function ResultCache stores results of
    # runs clean under every trap and leaves every watched global alone.
    with hermetic_sanitize() as monitor:
        result = _run_config(CONFIG)
    assert result.config == CONFIG
    assert monitor.trips == 0


def test_hermetic_run_is_bit_identical_to_bare_run():
    bare = _run_config(CONFIG)
    with hermetic_sanitize():
        sanitized = _run_config(CONFIG)
    assert sanitized == bare

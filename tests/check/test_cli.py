"""`python -m repro check` behaviour: exit codes and report formats."""

import json
from pathlib import Path

import pytest

from repro.cli import main

FIXTURES = str(Path(__file__).parent / "fixtures")


def test_check_exits_zero_on_the_repository(capsys):
    assert main(["check"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s), 0 warning(s)" in out


def test_check_exits_nonzero_on_violation_fixtures(capsys):
    assert main(["check", "--root", FIXTURES]) == 1
    out = capsys.readouterr().out
    assert "wall-clock" in out
    assert "error(s)" in out


def test_json_report_is_machine_readable(capsys):
    code = main(["check", "--root", FIXTURES, "--json"])
    assert code == 1
    report = json.loads(capsys.readouterr().out)
    assert report["tool"] == "repro-check"
    assert report["format_version"] == 1
    assert report["summary"]["errors"] >= 1
    assert report["summary"]["by_rule"]["wall-clock"] == 1
    by_line = {(f["rule"], Path(f["path"]).name) for f in report["findings"]}
    assert ("salted-hash", "fixture_salted_hash.py") in by_line


def test_json_report_on_clean_repo(capsys):
    assert main(["check", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["findings"] == []
    assert report["files_checked"] > 0


def test_rule_selection(capsys):
    # Only the selected rule runs: other fixtures' hazards are invisible.
    code = main(["check", "--root", FIXTURES, "--rules", "salted-hash"])
    assert code == 1
    out = capsys.readouterr().out
    assert "salted-hash" in out
    assert "wall-clock" not in out


def test_unknown_rule_is_an_error():
    with pytest.raises(SystemExit, match="unknown rule"):
        main(["check", "--rules", "no-such-rule"])


def test_list_rules(capsys):
    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("raw-random", "wall-clock", "implicit-seed"):
        assert rule_id in out


def test_module_entry_point(capsys):
    from repro.check.cli import main as check_main
    assert check_main(["--list-rules"]) == 0
    assert "mutable-default" in capsys.readouterr().out

"""`python -m repro check` behaviour: exit codes and report formats."""

import json
from pathlib import Path

import pytest

from repro.cli import main

FIXTURES = str(Path(__file__).parent / "fixtures")


def test_check_exits_zero_on_the_repository(capsys):
    assert main(["check"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s), 0 warning(s)" in out


def test_check_exits_nonzero_on_violation_fixtures(capsys):
    assert main(["check", "--root", FIXTURES]) == 1
    out = capsys.readouterr().out
    assert "wall-clock" in out
    assert "error(s)" in out


def test_json_report_is_machine_readable(capsys):
    code = main(["check", "--root", FIXTURES, "--json"])
    assert code == 1
    report = json.loads(capsys.readouterr().out)
    assert report["tool"] == "repro-check"
    assert report["format_version"] == 2
    assert report["summary"]["errors"] >= 1
    assert report["summary"]["by_rule"]["wall-clock"] == 1
    by_line = {(f["rule"], Path(f["path"]).name) for f in report["findings"]}
    assert ("salted-hash", "fixture_salted_hash.py") in by_line


def test_json_report_on_clean_repo(capsys):
    assert main(["check", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["findings"] == []
    assert report["files_checked"] > 0


def test_rule_selection(capsys):
    # Only the selected rule runs: other fixtures' hazards are invisible.
    code = main(["check", "--root", FIXTURES, "--rules", "salted-hash"])
    assert code == 1
    out = capsys.readouterr().out
    assert "salted-hash" in out
    assert "wall-clock" not in out


def test_unknown_rule_is_an_error():
    with pytest.raises(SystemExit, match="unknown rule"):
        main(["check", "--rules", "no-such-rule"])


def test_list_rules(capsys):
    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("raw-random", "wall-clock", "implicit-seed"):
        assert rule_id in out


def test_module_entry_point(capsys):
    from repro.check.cli import main as check_main
    assert check_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "mutable-default" in out
    assert "model-deadlock" in out
    assert "protocol-conformance" in out


def test_findings_have_stable_ids(capsys):
    main(["check", "--root", FIXTURES, "--json"])
    first = json.loads(capsys.readouterr().out)
    main(["check", "--root", FIXTURES, "--json"])
    second = json.loads(capsys.readouterr().out)
    ids = [f["id"] for f in first["findings"]]
    assert all(len(i) == 10 for i in ids)
    assert ids == [f["id"] for f in second["findings"]]  # run-to-run stable


def test_text_report_carries_the_id(capsys):
    main(["check", "--root", FIXTURES])
    out = capsys.readouterr().out
    assert "(id " in out


def test_fail_on_threshold_semantics():
    from repro.check.findings import Finding, Severity
    from repro.check.report import exit_code

    warning = Finding(rule_id="x", path=Path("a.py"), line=1, message="m",
                      severity=Severity.WARNING)
    assert exit_code([warning]) == 0
    assert exit_code([warning], fail_on=Severity.WARNING) == 1
    assert exit_code([], fail_on=Severity.WARNING) == 0


def test_fail_on_flag_is_accepted(capsys):
    assert main(["check", "--fail-on", "warning"]) == 0  # clean repo
    capsys.readouterr()
    assert main(["check", "--root", FIXTURES, "--fail-on", "warning"]) == 1
    capsys.readouterr()


def test_model_smoke_run(capsys):
    # One small scenario: exhausts in well under a second, exits clean.
    assert main(["check", "--model", "--scenarios", "pair:close"]) == 0
    out = capsys.readouterr().out
    assert "exhausted" in out
    assert "retransmits<=2" in out  # bounds are reported
    assert "0 error(s)" in out


def test_model_json_report(capsys):
    code = main(["check", "--model", "--json",
                 "--scenarios", "pair:close,pair:read",
                 "--retransmits", "1", "--depth", "40"])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["model"]["exhausted"] is True
    assert "retransmits<=1" in report["model"]["bounds"]
    names = {s["name"] for s in report["model"]["scenarios"]}
    assert names == {"pair:close", "pair:read"}
    assert report["findings"] == []


def test_model_unknown_scenario_is_an_error():
    with pytest.raises(SystemExit, match="unknown model scenario"):
        main(["check", "--model", "--scenarios", "pair:bogus"])

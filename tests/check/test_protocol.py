"""Protocol checker: clean on the real sources, loud on broken ones."""

from pathlib import Path

from repro.check.protocol import (
    AGENT_SOURCE,
    VOCABULARY_SOURCE,
    check_protocol,
    extract_side,
    extract_vocabulary,
)
from repro.check.protocol import _check_machine
from repro.check.spec import (
    EXCHANGES,
    MACHINES,
    StateMachine,
    Transition,
    spec_message_names,
)

PACKAGE_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"


def _write_synthetic_tree(root: Path, *, drop_receive=None,
                          drop_timeout_guard=None, extra_agent_send=None):
    """A minimal implementation tree satisfying the spec, optionally
    broken in one precise way."""
    core = root / "core"
    core.mkdir(parents=True)
    names = sorted(spec_message_names())
    vocabulary = names + ([extra_agent_send] if extra_agent_send else [])
    (core / "agent_protocol.py").write_text(
        "\n".join(f"class {name}:\n    pass\n" for name in vocabulary))

    requests = [e.request for e in EXCHANGES]
    replies = sorted({r for e in EXCHANGES for r in e.replies})
    agent_receives = [r for r in requests if r != drop_receive]
    agent_sends = replies + ([extra_agent_send] if extra_agent_send else [])
    agent_lines = ["def serve(message):"]
    for name in agent_receives:
        agent_lines.append(f"    if isinstance(message, {name}):")
        agent_lines.append("        pass")
    agent_lines.append("def reply_all():")
    for name in agent_sends:
        agent_lines.append(f"    yield {name}()")
    (core / "storage_agent.py").write_text("\n".join(agent_lines) + "\n")

    client_lines = ["def drive(socket):"]
    for name in requests:
        client_lines.append(f"    socket.send({name}())")
    for name in replies:
        if name == drop_timeout_guard:
            # Awaited, but with a bare (unguarded) receive.
            client_lines.append(
                f"    check = isinstance(socket.message, {name})")
        else:
            client_lines.append(
                "    socket.recv_wait(0.5, predicate=lambda d: "
                f"isinstance(d.message, {name}))")
    (core / "distribution.py").write_text("\n".join(client_lines) + "\n")


def test_real_sources_satisfy_the_spec():
    assert check_protocol(PACKAGE_ROOT) == []


def test_extraction_sees_both_sides():
    vocabulary = frozenset(
        extract_vocabulary(PACKAGE_ROOT / VOCABULARY_SOURCE))
    agent = extract_side([PACKAGE_ROOT / AGENT_SOURCE], vocabulary)
    assert "WriteRequest" in agent.receives
    assert "WriteNak" in agent.sends and "WriteAck" in agent.sends


def test_synthetic_complete_tree_is_clean(tmp_path):
    _write_synthetic_tree(tmp_path)
    assert check_protocol(tmp_path) == []


def test_missing_receive_arm_is_an_illegal_transition(tmp_path):
    _write_synthetic_tree(tmp_path, drop_receive="WriteData")
    findings = check_protocol(tmp_path)
    assert any(
        f.rule_id == "protocol-transition"
        and "WriteData" in f.message
        and "no matching receive" in f.message
        for f in findings), [f.message for f in findings]


def test_unguarded_reply_wait_is_flagged(tmp_path):
    _write_synthetic_tree(tmp_path, drop_timeout_guard="WriteAck")
    findings = check_protocol(tmp_path)
    assert any(f.rule_id == "protocol-timeout" and "WriteAck" in f.message
               for f in findings), [f.message for f in findings]


def test_undeclared_agent_message_is_flagged(tmp_path):
    _write_synthetic_tree(tmp_path, extra_agent_send="RogueReply")
    findings = check_protocol(tmp_path)
    assert any(f.rule_id == "protocol-transition"
               and "RogueReply" in f.message for f in findings)
    # The rogue class is also undocumented vocabulary.
    assert any(f.rule_id == "protocol-spec" and "RogueReply" in f.message
               for f in findings)


def test_machines_are_sound():
    spec_path = Path("spec.py")
    for machine in MACHINES:
        assert _check_machine(machine, spec_path) == [], machine.name


def test_machines_cover_both_sides_of_every_exchange():
    from repro.check.spec import MACHINE_PAIRS, machine_by_name
    client_names = {name for name, _ in MACHINE_PAIRS}
    agent_names = {name for _, name in MACHINE_PAIRS}
    for client_name, agent_name in MACHINE_PAIRS:
        assert machine_by_name(client_name).side == "client"
        assert machine_by_name(agent_name).side == "agent"
    for exchange in EXCHANGES:
        senders = [m for m in MACHINES if m.side == "client" and any(
            t.event == f"send {exchange.request}" for t in m.transitions)]
        assert senders, f"no client machine sends {exchange.request}"
        assert any(m.name in client_names for m in senders)
        receivers = [m for m in MACHINES if m.side == "agent" and any(
            t.event == f"recv {exchange.request}" for t in m.transitions)]
        assert receivers, f"no agent machine receives {exchange.request}"
        assert any(m.name in agent_names for m in receivers)


def test_servers_may_await_requests_without_timeout_edges():
    # The timeout-edge requirement is reply-aware: a listen state that
    # awaits a *request* forever is sound.
    machine = StateMachine(
        name="srv", initial="LISTEN", terminals=frozenset({"LISTEN"}),
        transitions=(Transition("LISTEN", "recv StatRequest", "BUSY"),
                     Transition("BUSY", "send StatReply", "LISTEN")),
        side="agent")
    assert _check_machine(machine, Path("spec.py")) == []


def test_missing_receive_arm_is_also_a_conformance_gap(tmp_path):
    _write_synthetic_tree(tmp_path, drop_receive="WriteData")
    findings = check_protocol(tmp_path)
    assert any(
        f.rule_id == "protocol-conformance"
        and "recv WriteData" in f.message
        for f in findings), [f.message for f in findings]


def test_undeclared_send_is_a_conformance_gap(tmp_path):
    _write_synthetic_tree(tmp_path, extra_agent_send="WriteData")
    # WriteData is spec vocabulary, so the vocabulary pass stays quiet —
    # but no *agent* machine has a `send WriteData` edge.
    findings = check_protocol(tmp_path)
    assert any(
        f.rule_id == "protocol-conformance"
        and "agent code sends WriteData" in f.message
        for f in findings), [f.message for f in findings]


def test_machine_checker_catches_unreachable_state():
    machine = StateMachine(
        name="bad", initial="A", terminals=frozenset({"B"}),
        transitions=(Transition("A", "send WriteRequest", "B"),
                     Transition("C", "timeout", "B")))
    findings = _check_machine(machine, Path("spec.py"))
    assert any("unreachable" in f.message for f in findings)


def test_machine_checker_catches_missing_timeout_edge():
    machine = StateMachine(
        name="bad", initial="A", terminals=frozenset({"B"}),
        transitions=(Transition("A", "recv WriteAck", "B"),))
    findings = _check_machine(machine, Path("spec.py"))
    assert any("no timeout edge" in f.message for f in findings)


def test_machine_checker_catches_trap_state():
    machine = StateMachine(
        name="bad", initial="A", terminals=frozenset({"B"}),
        transitions=(Transition("A", "send WriteRequest", "B"),
                     Transition("A", "timeout", "C"),
                     Transition("C", "timeout", "C")))
    findings = _check_machine(machine, Path("spec.py"))
    assert any("cannot reach a terminal" in f.message for f in findings)

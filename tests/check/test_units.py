"""The dimensional-analysis pass: algebra, inference, rules, CLI."""

import ast
from pathlib import Path

import pytest

from repro.check import UNIT_RULES, unit_rule_registry
from repro.check.lint import LintEngine
from repro.check.units import (
    BITS_PER_S,
    BYTES,
    BYTES_PER_S,
    DIMENSIONLESS,
    SECONDS,
    Dim,
    analyze_units,
    name_dim,
)
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures" / "units"
PACKAGE = Path(__file__).parents[2] / "src" / "repro"

#: fixture file -> the unit rule expected to fire there exactly once.
UNIT_FIXTURES = {
    "fixture_unit_mismatch.py": "unit-mismatch",
    "fixture_unit_assign.py": "unit-mismatch",
    "fixture_unit_timeout.py": "unit-mismatch",
    "fixture_unit_bitbyte.py": "unit-bitbyte",
    "fixture_unit_magic.py": "unit-magic",
}


def _unit_engine():
    return LintEngine(rules=[rule() for rule in UNIT_RULES])


def _findings(source: str):
    return analyze_units(ast.parse(source), Path("mod.py"))


# -- the dimension algebra ----------------------------------------------------


def test_dim_algebra():
    assert BYTES.div(SECONDS) == BYTES_PER_S
    assert BYTES_PER_S.mul(SECONDS) == BYTES
    assert BYTES.div(BYTES) == DIMENSIONLESS
    assert DIMENSIONLESS.dimensionless
    assert not BYTES.dimensionless
    assert str(BYTES_PER_S) == "byte*s^-1"


def test_dim_is_immutable_and_hashable():
    with pytest.raises(AttributeError):
        BYTES.exponents = ()
    assert Dim({"byte": 1}) == BYTES
    assert len({Dim({"byte": 1}), BYTES}) == 1


def test_name_dim_priorities():
    # exact seed beats suffix: 'timeout' is seconds despite no suffix
    assert name_dim("timeout") == SECONDS
    assert name_dim("nbytes") == BYTES
    # longest suffix wins: _bits_per_s beats _s
    assert name_dim("ring_bits_per_s") == BITS_PER_S
    assert name_dim("ack_delay_s") == SECONDS
    # leading underscores and case are ignored
    assert name_dim("_Payload_Bytes") == BYTES
    # generic names stay unknown
    assert name_dim("value") is None


# -- the interpreter ----------------------------------------------------------


def test_additive_mismatch_is_found():
    findings = _findings(
        "def f(latency_s, payload_bytes):\n"
        "    return latency_s + payload_bytes\n")
    assert [rule for rule, _, _ in findings] == ["unit-mismatch"]


def test_converted_expression_is_clean():
    findings = _findings(
        "from repro.units import seconds_to_send\n"
        "def f(latency_s, payload_bytes, link_bits_per_s):\n"
        "    return latency_s + seconds_to_send(payload_bytes,\n"
        "                                       link_bits_per_s)\n")
    assert findings == []


def test_rate_times_time_is_bytes():
    # bandwidth * elapsed_s is bytes: adding nbytes to it is fine,
    # adding seconds to it is not.
    clean = _findings(
        "def f(bandwidth, elapsed_s, nbytes):\n"
        "    return bandwidth * elapsed_s + nbytes\n")
    assert clean == []
    dirty = _findings(
        "def f(bandwidth, elapsed_s, delay_s):\n"
        "    return bandwidth * elapsed_s + delay_s\n")
    assert [rule for rule, _, _ in dirty] == ["unit-mismatch"]


def test_comparison_mismatch_is_found():
    findings = _findings(
        "def f(deadline, request_size):\n"
        "    return deadline < request_size\n")
    assert [rule for rule, _, _ in findings] == ["unit-mismatch"]


def test_timeout_argument_checked_through_yield():
    findings = _findings(
        "def f(env, delay_ms):\n"
        "    yield env.timeout(delay_ms)\n")
    assert [rule for rule, _, _ in findings] == ["unit-mismatch"]
    assert "timeout" in findings[0][2]


def test_timeout_with_seconds_is_clean():
    assert _findings(
        "def f(env, delay_s):\n"
        "    yield env.timeout(delay_s)\n") == []


def test_assignment_to_declared_name_checked():
    findings = _findings(
        "def f(ring_bits_per_s):\n"
        "    goodput_bytes_per_s = ring_bits_per_s\n"
        "    return goodput_bytes_per_s\n")
    assert [rule for rule, _, _ in findings] == ["unit-mismatch"]


def test_attribute_assignment_checked():
    findings = _findings(
        "def f(obj, window_s):\n"
        "    obj.limit_bytes = window_s\n")
    assert [rule for rule, _, _ in findings] == ["unit-mismatch"]


def test_local_inference_carries_through_names():
    # 'total' has no declared suffix; its dimension is inferred from the
    # assignment and still participates in later checks.
    findings = _findings(
        "def f(nbytes, delay_s):\n"
        "    total = nbytes * 2\n"
        "    return total + delay_s\n")
    assert [rule for rule, _, _ in findings] == ["unit-mismatch"]


def test_bitbyte_factor_found_and_magic_not_doubled():
    findings = _findings(
        "def f(frame_bytes):\n"
        "    return frame_bytes * 8\n")
    assert [rule for rule, _, _ in findings] == ["unit-bitbyte"]


def test_bitbyte_on_dimensionless_is_clean():
    assert _findings(
        "def f(num_packets):\n"
        "    return num_packets * 8\n") == []


def test_magic_factor_found_including_inverse():
    findings = _findings(
        "def f(elapsed_s):\n"
        "    a = elapsed_s * 1000\n"
        "    b = elapsed_s * 1e-6\n"
        "    return a, b\n")
    assert [rule for rule, _, _ in findings] == ["unit-magic", "unit-magic"]


def test_magic_factor_on_unknown_is_clean():
    # No dimension, no finding: plain numeric code is untouched.
    assert _findings("def f(x):\n    return x * 1024\n") == []


def test_floor_division_of_same_dim_is_a_count():
    assert _findings(
        "def f(nbytes, packet_size, num_limit):\n"
        "    packets = nbytes // packet_size\n"
        "    return packets + num_limit\n") == []


def test_unknown_poisons_instead_of_guessing():
    # 'factor' is unknown, so factor * delay_s is unknown: comparing it
    # against bytes must NOT fire.
    assert _findings(
        "def f(factor, delay_s, nbytes):\n"
        "    return factor * delay_s < nbytes\n") == []


# -- rule facades over the fixtures -------------------------------------------


@pytest.mark.parametrize("fixture,rule_id", sorted(UNIT_FIXTURES.items()))
def test_unit_fixture_fires_exactly_once(fixture, rule_id):
    findings = _unit_engine().check_file(FIXTURES / fixture)
    assert [f.rule_id for f in findings] == [rule_id], findings
    assert findings[0].line > 1  # anchored at the bug, not the module


def test_clean_fixture_has_zero_findings():
    assert _unit_engine().check_file(FIXTURES / "fixture_unit_clean.py") == []


def test_allow_units_group_suppresses_all_unit_rules():
    findings = _unit_engine().check_file(
        FIXTURES / "fixture_unit_suppressed.py")
    assert findings == []


def test_units_module_itself_is_exempt():
    # repro/units.py is the one place allowed to hold raw factors.
    findings = _unit_engine().check_file(PACKAGE / "units.py")
    assert findings == []


def test_every_unit_rule_has_a_fixture():
    assert set(UNIT_FIXTURES.values()) == set(unit_rule_registry())


def test_package_is_unit_clean():
    findings = _unit_engine().check_tree(PACKAGE)
    assert findings == [], [str(f) for f in findings]


# -- CLI ----------------------------------------------------------------------


def test_cli_units_flags_fixture_dir(capsys):
    assert main(["check", "--units", str(FIXTURES)]) == 1
    out = capsys.readouterr().out
    assert "unit-mismatch" in out
    assert "unit-bitbyte" in out
    assert "unit-magic" in out


def test_cli_units_clean_on_package(capsys):
    assert main(["check", "--units", str(PACKAGE)]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_cli_units_json(capsys):
    import json
    assert main(["check", "--units", str(FIXTURES), "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    by_rule = report["summary"]["by_rule"]
    assert by_rule["unit-mismatch"] == 3
    assert by_rule["unit-bitbyte"] == 1
    assert by_rule["unit-magic"] == 1


def test_cli_list_rules_mentions_unit_rules(capsys):
    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("unit-mismatch", "unit-bitbyte", "unit-magic"):
        assert rule_id in out

"""The byte-conservation ledger: clean e2e runs, injected leaks, ledger
invariants driven synthetically."""

import pytest

from repro.check import ConservationError, ConservationLedger, conserve
from repro.core import build_local_swift
from repro.des import Environment


# -- end-to-end: the real data path is conservative ---------------------------


def test_plain_write_read_is_conservative():
    deployment = build_local_swift(num_agents=3)
    client = deployment.client()
    with conserve(deployment.env) as ledger:
        handle = client.open("obj", "w", striping_unit=4096)
        handle.pwrite(0, b"x" * 20_000)
        handle.pwrite(7_000, b"y" * 5_000)
        assert handle.pread(0, 20_000) == (
            b"x" * 7_000 + b"y" * 5_000 + b"x" * 8_000)
        handle.close()
    assert ledger.errors == []
    assert ledger.pending_ops == []
    assert ledger.events_observed > 0


def test_parity_write_read_is_conservative():
    deployment = build_local_swift(num_agents=4, parity=True)
    client = deployment.client()
    with conserve(deployment.env) as ledger:
        handle = client.open("obj", "w", parity=True, striping_unit=4096)
        handle.pwrite(0, b"a" * 30_000)
        handle.pwrite(1_234, b"b" * 7_777)  # partial stripes: read-modify-write
        handle.pread(0, 30_000)
        handle.close()
    assert ledger.errors == []
    assert ledger.pending_ops == []


def test_degraded_path_is_conservative():
    deployment = build_local_swift(num_agents=4, parity=True)
    client = deployment.client()
    handle = client.open("obj", "w", parity=True, striping_unit=4096)
    engine = handle.engine
    handle.pwrite(0, b"c" * 25_000)
    deployment.crash_agent(engine.data_channels[1].agent_host)
    engine.mark_failed(1)
    engine.read_timeout_s = 0.01
    with conserve(deployment.env) as ledger:
        assert handle.pread(0, 25_000) == b"c" * 25_000
        handle.pwrite(500, b"d" * 9_000)
        assert handle.pread(500, 9_000) == b"d" * 9_000
    assert ledger.errors == []


def test_uninstrumented_run_pays_nothing():
    # No monitor attached: no ops are even named.
    deployment = build_local_swift(num_agents=3)
    client = deployment.client()
    ledger = ConservationLedger(deployment.env)  # never installed
    handle = client.open("obj", "w", striping_unit=4096)
    handle.pwrite(0, b"x" * 10_000)
    handle.close()
    assert ledger.events_observed == 0
    assert deployment.env._transfer_monitors == []


# -- injected leaks are caught and attributed ---------------------------------


def test_one_byte_parity_truncation_is_caught(monkeypatch):
    import repro.core.distribution as distribution

    real = distribution.compute_parity

    def truncating(units, unit_size):
        return real(units, unit_size)[:-1]

    monkeypatch.setattr(distribution, "compute_parity", truncating)
    deployment = build_local_swift(num_agents=4, parity=True)
    client = deployment.client()
    with pytest.raises(ConservationError, match=r"obj#w1: parity region"):
        with conserve(deployment.env):
            handle = client.open("obj", "w", parity=True, striping_unit=4096)
            handle.pwrite(0, b"a" * 30_000)


def test_raise_on_leak_false_only_records(monkeypatch):
    import repro.core.distribution as distribution

    real = distribution.compute_parity
    monkeypatch.setattr(distribution, "compute_parity",
                        lambda units, unit_size: real(units, unit_size)[:-1])
    deployment = build_local_swift(num_agents=4, parity=True)
    client = deployment.client()
    with conserve(deployment.env, raise_on_leak=False) as ledger:
        handle = client.open("obj", "w", parity=True, striping_unit=4096)
        handle.pwrite(0, b"a" * 30_000)
    assert len(ledger.errors) == 1
    assert ledger.errors[0].startswith("obj#w1:")


def test_short_reconstruction_is_caught(monkeypatch):
    import repro.core.distribution as distribution

    real = distribution.reconstruct_unit
    monkeypatch.setattr(
        distribution, "reconstruct_unit",
        lambda survivors, parity, unit_size:
            real(survivors, parity, unit_size)[:-1])
    deployment = build_local_swift(num_agents=4, parity=True)
    client = deployment.client()
    handle = client.open("obj", "w", parity=True, striping_unit=4096)
    engine = handle.engine
    handle.pwrite(0, b"e" * 20_000)
    deployment.crash_agent(engine.data_channels[0].agent_host)
    engine.mark_failed(0)
    engine.read_timeout_s = 0.01
    with conserve(deployment.env, raise_on_leak=False) as ledger:
        handle.pread(0, 20_000)
    assert any("reconstructed unit" in error for error in ledger.errors)


# -- ledger invariants, driven synthetically ----------------------------------


def _ledger():
    env = Environment()
    return env, ConservationLedger(env).install()


def test_write_leak_detected():
    env, ledger = _ledger()
    env._notify_transfer("write-begin", op="o#w1", logical_offset=0,
                         logical_bytes=100)
    env._notify_transfer("write-region", op="o#w1", agent=0,
                         region_offset=0, nbytes=99)
    env._notify_transfer("wire-data", op="o#w1", agent=0, index=0,
                         payload_bytes=99)
    env._notify_transfer("write-end", op="o#w1")
    assert any("logical 100 bytes" in error for error in ledger.errors)


def test_wire_shortfall_detected():
    env, ledger = _ledger()
    env._notify_transfer("write-begin", op="o#w1", logical_offset=0,
                         logical_bytes=100)
    env._notify_transfer("write-region", op="o#w1", agent=0,
                         region_offset=0, nbytes=100)
    env._notify_transfer("wire-data", op="o#w1", agent=0, index=0,
                         payload_bytes=60)
    env._notify_transfer("write-end", op="o#w1")
    assert any("streamed 60 unique wire" in error for error in ledger.errors)


def test_retransmit_same_size_is_not_double_counted():
    env, ledger = _ledger()
    env._notify_transfer("write-begin", op="o#w1", logical_offset=0,
                         logical_bytes=100)
    env._notify_transfer("write-region", op="o#w1", agent=0,
                         region_offset=0, nbytes=100)
    for _ in range(3):  # original send plus two retransmits
        env._notify_transfer("wire-data", op="o#w1", agent=0, index=0,
                             payload_bytes=100)
    env._notify_transfer("write-end", op="o#w1")
    assert ledger.errors == []


def test_retransmit_with_different_size_is_an_error():
    env, ledger = _ledger()
    env._notify_transfer("write-begin", op="o#w1", logical_offset=0,
                         logical_bytes=100)
    env._notify_transfer("write-region", op="o#w1", agent=0,
                         region_offset=0, nbytes=100)
    env._notify_transfer("wire-data", op="o#w1", agent=0, index=0,
                         payload_bytes=100)
    env._notify_transfer("wire-data", op="o#w1", agent=0, index=0,
                         payload_bytes=99)
    assert any("retransmitted" in error for error in ledger.errors)


def test_read_gap_and_overlap_detected():
    env, ledger = _ledger()
    env._notify_transfer("read-begin", op="o#r1", logical_offset=0,
                         logical_bytes=100)
    env._notify_transfer("read-data", op="o#r1", agent=0,
                         logical_offset=0, nbytes=50)
    env._notify_transfer("read-data", op="o#r1", agent=1,
                         logical_offset=60, nbytes=50)
    env._notify_transfer("read-end", op="o#r1")
    assert any("gap" in error for error in ledger.errors)

    env._notify_transfer("read-begin", op="o#r2", logical_offset=0,
                         logical_bytes=100)
    env._notify_transfer("read-data", op="o#r2", agent=0,
                         logical_offset=0, nbytes=60)
    env._notify_transfer("read-data", op="o#r2", agent=1,
                         logical_offset=40, nbytes=40)
    env._notify_transfer("read-end", op="o#r2")
    assert any("overlap" in error for error in ledger.errors)


def test_event_before_begin_and_unknown_kind():
    env, ledger = _ledger()
    env._notify_transfer("write-region", op="o#w9", agent=0,
                         region_offset=0, nbytes=10)
    env._notify_transfer("no-such-kind", op="o#w9")
    assert any("before its begin" in error for error in ledger.errors)
    assert any("unknown transfer event" in error for error in ledger.errors)


def test_pending_ops_lists_unfinished_transfers():
    env, ledger = _ledger()
    env._notify_transfer("write-begin", op="o#w1", logical_offset=0,
                         logical_bytes=10)
    assert ledger.pending_ops == ["o#w1"]
    assert ledger.errors == []  # unfinished is not (yet) a leak


def test_assert_clean_raises_with_all_violations():
    env, ledger = _ledger()
    ledger.errors = ["a: leak", "b: leak"]
    with pytest.raises(ConservationError, match="2 byte-conservation"):
        ledger.assert_clean()


def test_uninstall_detaches():
    env, ledger = _ledger()
    ledger.uninstall()
    env._notify_transfer("write-begin", op="o#w1", logical_offset=0,
                         logical_bytes=10)
    assert ledger.events_observed == 0
    assert env._transfer_monitors == []

"""The zero-copy safety pass, static half: analyzer, rules, CLI."""

import ast
from pathlib import Path

import pytest

from repro.check import ALIAS_RULES, alias_rule_registry
from repro.check.aliasing import analyze_aliasing
from repro.check.lint import LintEngine
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures" / "aliasing"
PACKAGE = Path(__file__).parents[2] / "src" / "repro"

#: fixture file -> (rule expected to fire exactly once, pinned stable id).
#: The ids are the acceptance contract: a message rewording that changes
#: them must be deliberate.
ALIAS_FIXTURES = {
    "fixture_view_store_self.py": ("view-escape", "1ab6e55c64"),
    "fixture_view_past_flush.py": ("view-escape", "d59f155c03"),
    "fixture_view_after_swap.py": ("view-escape", "03ce875ea4"),
    "fixture_view_container_escape.py": ("view-escape", "3c3f64bc6d"),
    "fixture_pool_rearm.py": ("pool-leak", "e354328c20"),
    "fixture_apply_write_bytes.py": ("hidden-copy", "0d7cd2020d"),
    "fixture_hidden_add_pad.py": ("hidden-copy", "782c7e8e4b"),
    "fixture_per_byte_loop.py": ("hidden-copy", "68b130c6cf"),
    "fixture_hidden_ljust.py": ("hidden-copy", "e7619247f4"),
}


def _alias_engine():
    return LintEngine(rules=[rule() for rule in ALIAS_RULES])


def _findings(source: str, name: str = "core/distribution.py"):
    # The default pseudo-path is on the hot list so hidden-copy is live.
    return analyze_aliasing(ast.parse(source), Path(name))


# -- the dataflow analysis ----------------------------------------------------


def test_memoryview_of_local_is_tracked():
    findings = _findings(
        "def f(buf):\n"
        "    view = memoryview(buf)\n"
        "    return bytes(view)\n")
    assert [f.rule_id for f in findings] == ["hidden-copy"]


def test_slice_of_view_is_still_a_view():
    findings = _findings(
        "def f(buf):\n"
        "    view = memoryview(buf)\n"
        "    piece = view[4:8]\n"
        "    return bytes(piece)\n")
    assert [f.rule_id for f in findings] == ["hidden-copy"]


def test_slice_of_bytearray_local_is_a_view_source():
    findings = _findings(
        "def f(n):\n"
        "    buf = bytearray(n)\n"
        "    head = buf[:4]\n"
        "    buf.extend(b'xx')\n"
        "    return head\n")
    assert [f.rule_id for f in findings] == ["view-escape"]


def test_tobytes_is_never_flagged():
    assert _findings(
        "def f(buf):\n"
        "    view = memoryview(buf)\n"
        "    return view.tobytes()\n") == []


def test_bytes_of_plain_parameter_is_not_flagged():
    # buffered.write_p's deliberate snapshot: the argument is not a
    # known view, so bytes() on it is a legitimate freeze.
    assert _findings(
        "def f(data):\n"
        "    data = bytes(data)\n"
        "    return data\n") == []


def test_hidden_copy_silent_outside_hot_paths():
    assert _findings(
        "def f(buf):\n"
        "    view = memoryview(buf)\n"
        "    return bytes(view)\n",
        name="tools/offline_report.py") == []


def test_docstring_marker_opts_into_hot():
    findings = _findings(
        '"""helper\n\nrepro: hot-path\n"""\n'
        "def f(buf):\n"
        "    view = memoryview(buf)\n"
        "    return bytes(view)\n",
        name="tools/offline_report.py")
    assert [f.rule_id for f in findings] == ["hidden-copy"]


def test_mutation_of_unrelated_buffer_keeps_view_fresh():
    assert _findings(
        "def f(a, b):\n"
        "    view = memoryview(a)\n"
        "    other = bytearray(b)\n"
        "    other.extend(view)\n"
        "    return view\n") == []


def test_narrowing_rebind_is_clean():
    # _apply_write's `remaining = remaining[span:]` loop idiom.
    assert _findings(
        "def f(data):\n"
        "    remaining = memoryview(data)\n"
        "    remaining = remaining[4:]\n"
        "    return remaining\n") == []


def test_view_taken_after_flush_is_clean():
    assert _findings(
        "class C:\n"
        "    def f(self):\n"
        "        self.flush()\n"
        "        view = memoryview(self._buf)\n"
        "        return view\n") == []


def test_branch_retirement_does_not_leak_across_arms():
    # The engine drain loop: Timeout recycled in one arm, the Release
    # arm touches the same name — mutually exclusive, must stay clean.
    assert _findings(
        "def f(event, timeout_pool, release_pool, is_timeout):\n"
        "    if is_timeout:\n"
        "        timeout_pool.append(event)\n"
        "    else:\n"
        "        event.callbacks = []\n"
        "        release_pool.append(event)\n") == []


def test_pool_leak_fires_in_straight_line():
    findings = _findings(
        "def f(event, release_pool):\n"
        "    release_pool.append(event)\n"
        "    event.callbacks.append(None)\n")
    assert [f.rule_id for f in findings] == ["pool-leak"]


def test_rebinding_clears_pool_retirement():
    assert _findings(
        "def f(events, pool):\n"
        "    for event in events:\n"
        "        pool.append(event)\n"
        "    event = object()\n"
        "    return event\n") == []


# -- rule facades over the fixtures -------------------------------------------


@pytest.mark.parametrize("fixture,expected", sorted(ALIAS_FIXTURES.items()))
def test_alias_fixture_fires_exactly_once(fixture, expected):
    rule_id, fingerprint = expected
    findings = _alias_engine().check_file(FIXTURES / fixture)
    assert [f.rule_id for f in findings] == [rule_id], findings
    assert findings[0].fingerprint == fingerprint
    assert findings[0].line > 1  # anchored at the bug, not the module


def test_clean_fixture_has_zero_findings():
    assert _alias_engine().check_file(
        FIXTURES / "fixture_alias_clean.py") == []


def test_allow_aliasing_group_suppresses_all_alias_rules():
    # The flagged line fires both view-escape and hidden-copy without
    # the comment; one group suppression covers both.
    findings = _alias_engine().check_file(
        FIXTURES / "fixture_alias_suppressed.py")
    assert findings == []


def test_every_alias_rule_has_a_fixture():
    expected = {rule for rule, _ in ALIAS_FIXTURES.values()}
    assert expected == set(alias_rule_registry())


def test_package_is_alias_clean():
    findings = _alias_engine().check_tree(PACKAGE)
    assert findings == [], [str(f) for f in findings]


def test_package_has_zero_alias_suppressions():
    # check/aliasing.py documents the comment syntax in its docstring;
    # everything else must not use (or mention) it.
    hits = [path for path in PACKAGE.rglob("*.py")
            if "allow[aliasing]" in path.read_text(encoding="utf-8")
            and path.name != "aliasing.py"]
    assert hits == []


# -- CLI ----------------------------------------------------------------------


def test_cli_aliasing_flags_fixture_dir(capsys):
    assert main(["check", "--aliasing", str(FIXTURES)]) == 1
    out = capsys.readouterr().out
    assert "view-escape" in out
    assert "hidden-copy" in out
    assert "pool-leak" in out


def test_cli_aliasing_clean_on_package(capsys):
    assert main(["check", "--aliasing", str(PACKAGE)]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_cli_aliasing_json(capsys):
    import json
    assert main(["check", "--aliasing", str(FIXTURES), "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    by_rule = report["summary"]["by_rule"]
    assert by_rule["view-escape"] == 4
    assert by_rule["hidden-copy"] == 4
    assert by_rule["pool-leak"] == 1


def test_cli_aliasing_rule_selection(capsys):
    assert main(["check", "--aliasing", "--rules", "pool-leak",
                 str(FIXTURES)]) == 1
    out = capsys.readouterr().out
    assert "pool-leak" in out
    assert "view-escape" not in out


def test_cli_list_rules_mentions_alias_rules(capsys):
    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("view-escape", "hidden-copy", "pool-leak"):
        assert rule_id in out

"""The protocol model checker: exhaustive, clean, and loud on mutants."""

import pytest

from repro.check.adversary import (
    AdversaryBudget,
    channel_add,
    channel_items,
    channel_remove,
)
from repro.check.model import (
    ModelConfig,
    PairModel,
    ReadModel,
    SemanticFlags,
    WriteModel,
    check_model,
    explore,
    scenario_names,
)
from repro.check.spec import machine_by_name

#: A lean adversary for the mutation demos: big enough to surface each
#: seeded hole, small enough to explore in well under a second.
LEAN = AdversaryBudget(max_drops=0, max_duplicates=0, max_crashes=0,
                       max_stale=1)


# -- the exploration engine ---------------------------------------------------


class _ToyModel:
    """A three-state chain with one violating branch, for explorer tests."""

    def __init__(self, broken=False):
        self.broken = broken

    def initial_state(self):
        return "A"

    def is_resting(self, state):
        return state == "C"

    def check_state(self, state):
        if state == "BAD":
            return (("safety", "reached the bad state"),)
        return ()

    def successors(self, state):
        if state == "A":
            steps = [("step to B", "B")]
            if self.broken:
                steps.append(("step to BAD", "BAD"))
            return steps, []
        if state == "B":
            return [("step to C", "C")], []
        return [], []


def test_explorer_exhausts_and_reports_depth():
    result = explore(_ToyModel(), max_depth=10)
    assert result.exhausted
    assert result.states == 3
    assert result.depth_reached == 2
    assert result.violations == []


def test_explorer_depth_cap_is_reported():
    result = explore(_ToyModel(), max_depth=1)
    assert not result.exhausted


def test_explorer_traces_are_minimal():
    result = explore(_ToyModel(broken=True), max_depth=10)
    violation = next(v for v in result.violations
                     if v.invariant == "safety")
    assert violation.trace == ("step to BAD",)
    assert "1. step to BAD" in violation.format()


def test_explorer_flags_deadlock():
    class Stuck(_ToyModel):
        def is_resting(self, state):
            return False  # C has no successors and is not resting

    result = explore(Stuck(), max_depth=10)
    assert any(v.invariant == "deadlock" for v in result.violations)


# -- the adversary's channel algebra ------------------------------------------


def test_channels_are_multisets_with_capacity():
    channel = channel_add((), "A", capacity=2)
    channel = channel_add(channel, "A", capacity=2)
    assert channel == ("A", "A")
    # A full buffer drops silently, like the host's finite rx queue.
    assert channel_add(channel, "B", capacity=2) == channel
    assert channel_items(channel) == ("A",)
    assert channel_remove(channel, "A") == ("A",)


def test_channel_order_is_canonical():
    ab = channel_add(channel_add((), "B", 4), "A", 4)
    ba = channel_add(channel_add((), "A", 4), "B", 4)
    assert ab == ba  # reorderings collapse into one state


# -- the shipped spec is safe and live ----------------------------------------


def test_every_pair_scenario_exhausts_with_zero_violations():
    config = ModelConfig(
        scenarios=tuple(name for name in scenario_names()
                        if name.startswith("pair:")))
    findings, stats = check_model(config)
    assert findings == [], [f.message for f in findings]
    assert stats.exhausted
    assert {s.name for s in stats.scenarios} == set(config.scenarios)
    assert all(s.states > 0 for s in stats.scenarios)


def test_semantic_models_exhaust_with_zero_violations():
    # A slightly leaner adversary than the CLI default keeps this fast;
    # the full-budget run is `make check-model` / `repro check --model`.
    config = ModelConfig(
        retransmit_bound=1,
        budget=AdversaryBudget(max_drops=1, max_duplicates=1,
                               max_crashes=1, max_stale=1),
        scenarios=("bytes:write", "bytes:read"))
    findings, stats = check_model(config)
    assert findings == [], [f.message for f in findings]
    assert stats.exhausted
    assert stats.states > 1000  # genuinely explored, not short-circuited


def test_stats_report_bounds_and_serialise():
    config = ModelConfig(scenarios=("pair:read",))
    _, stats = check_model(config)
    assert "retransmits<=2" in stats.bounds
    assert "depth<=60" in stats.bounds
    payload = stats.to_dict()
    assert payload["exhausted"] is True
    assert payload["scenarios"][0]["name"] == "pair:read"
    text = stats.render_text()
    assert "pair:read" in text and "exhausted" in text


def test_unknown_scenario_is_an_error():
    with pytest.raises(ValueError, match="unknown model scenario"):
        check_model(ModelConfig(scenarios=("pair:bogus",)))


# -- seeded spec mutations produce counterexample traces ----------------------


def test_removing_the_ack_timeout_edge_deadlocks():
    # Without STREAMING's timeout edge the client cannot query after a
    # lost ACK: drop the ACK (or crash the agent) and the pair wedges.
    client = machine_by_name("write").without_edge("STREAMING", "timeout")
    model = PairModel(client, machine_by_name("write-server"),
                      AdversaryBudget())
    result = explore(model, max_depth=60)
    assert result.exhausted
    kinds = {v.invariant for v in result.violations}
    assert "deadlock" in kinds or "livelock" in kinds
    witness = result.violations[0]
    assert witness.trace  # a concrete minimal schedule, not just a claim
    assert "client: send WriteRequest" in witness.trace[0]


def test_removing_the_nak_edge_is_an_unhandled_message():
    # A client that cannot receive WriteNak (and does not declare it
    # ignorable) violates the no-unhandled-message invariant.
    client = machine_by_name("write").without_edge("STREAMING",
                                                  "recv WriteNak")
    client = type(client)(
        name=client.name, initial=client.initial,
        terminals=client.terminals, transitions=client.transitions,
        side=client.side, transient=client.transient,
        ignores=client.ignores - {"WriteNak"})
    model = PairModel(client, machine_by_name("write-server"),
                      AdversaryBudget())
    result = explore(model, max_depth=60)
    assert any(v.invariant == "unhandled" and "WriteNak" in v.message
               for v in result.violations)


# -- seeded guard mutations in the semantic models ----------------------------


def test_trusting_any_reply_loses_bytes():
    # Drop the op_id filter on replies: a stale ACK from a previous
    # session convinces the client its write is durable.
    model = WriteModel(LEAN, retransmit_bound=0,
                       flags=SemanticFlags(client_accepts_any_reply=True))
    result = explore(model, max_depth=60)
    assert result.exhausted
    losses = [v for v in result.violations
              if v.invariant == "safety" and "byte lost" in v.message]
    assert losses, [v.message for v in result.violations]
    assert any("stale WriteAck" in step for step in losses[0].trace)


def test_reapplying_on_status_query_duplicates_the_write():
    # Re-running the apply when a duplicate WRITE-REQ queries a
    # completed op applies the same bytes twice.
    model = WriteModel(AdversaryBudget(max_drops=0, max_duplicates=0,
                                       max_crashes=0, max_stale=0),
                       retransmit_bound=1,
                       flags=SemanticFlags(reapply_on_query=True))
    result = explore(model, max_depth=60)
    assert any(v.invariant == "safety" and "applied 2 times" in v.message
               for v in result.violations), \
        [v.message for v in result.violations]


def test_accepting_unknown_op_data_corrupts_the_disk():
    # Drop the unknown-op guard: a stale WRITE-DATA from a prior
    # session lands on disk and can overwrite current bytes.
    model = WriteModel(LEAN, retransmit_bound=0,
                       flags=SemanticFlags(accept_unknown_op_data=True))
    result = explore(model, max_depth=60)
    assert any(v.invariant == "safety" and "stale data" in v.message
               for v in result.violations), \
        [v.message for v in result.violations]


def test_accepting_any_seq_returns_stale_bytes():
    # Drop the stale-seq purge: the read completes with a prior
    # session's data packet.
    model = ReadModel(LEAN, retransmit_bound=0,
                      flags=SemanticFlags(client_accepts_any_seq=True))
    result = explore(model, max_depth=60)
    assert any(v.invariant == "safety" for v in result.violations)


def test_unmutated_semantic_models_survive_the_lean_adversary():
    # The same budgets as the mutation tests, guards intact: clean.
    for model in (WriteModel(LEAN, retransmit_bound=1),
                  ReadModel(LEAN, retransmit_bound=1)):
        result = explore(model, max_depth=60)
        assert result.exhausted
        assert result.violations == [], \
            [v.message for v in result.violations]

"""Each determinism rule fires exactly once on its fixture module."""

from pathlib import Path

import pytest

from repro.check import LintEngine, run_check
from repro.check.rules import DEFAULT_RULES, rule_registry

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture file -> the rule id expected to fire there exactly once.
RULE_FIXTURES = {
    "fixture_raw_random.py": "raw-random",
    "fixture_unseeded_rng.py": "unseeded-rng",
    "fixture_wall_clock.py": "wall-clock",
    "fixture_mutable_default.py": "mutable-default",
    "fixture_set_iteration.py": "set-iteration",
    "fixture_salted_hash.py": "salted-hash",
    "fixture_implicit_seed.py": "implicit-seed",
    "fixture_recv_unguarded.py": "recv-unguarded",
    "fixture_retransmit_unbounded.py": "retransmit-unbounded",
    "fixture_timeout_unit.py": "timeout-unit",
}


@pytest.mark.parametrize("fixture,rule_id", sorted(RULE_FIXTURES.items()))
def test_rule_fires_exactly_once(fixture, rule_id):
    findings = LintEngine().check_file(FIXTURES / fixture)
    hits = [f for f in findings if f.rule_id == rule_id]
    assert len(hits) == 1, (fixture, findings)
    assert hits[0].line > 1  # anchored at the violation, not the module
    assert hits[0].path.name == fixture


def test_every_rule_has_a_fixture():
    covered = set(RULE_FIXTURES.values())
    assert covered == set(rule_registry()), "add a fixture for new rules"
    assert len(DEFAULT_RULES) == len(rule_registry())


def test_suppression_comment_silences_findings():
    findings = LintEngine().check_file(FIXTURES / "fixture_suppressed.py")
    assert findings == []


def test_trailing_suppression_does_not_leak_to_next_line(tmp_path):
    # Inline comments cover their own line only; a standalone comment
    # line covers the statement below it.
    module = tmp_path / "mod.py"
    module.write_text(
        "import time  # repro: allow[raw-random, wall-clock]\n"
        "a = time.time()  # repro: allow[wall-clock]\n"
        "b = time.time()\n"
        "# repro: allow[wall-clock]\n"
        "c = time.time()\n")
    findings = LintEngine().check_file(module)
    assert [f.line for f in findings if f.rule_id == "wall-clock"] == [3]


def test_unsuppressed_twin_still_fires():
    # The suppressed fixture's twin (wall_clock) proves the allow comment,
    # not the rule, is what differs.
    findings = LintEngine().check_file(FIXTURES / "fixture_wall_clock.py")
    assert any(f.rule_id == "wall-clock" for f in findings)


def test_fixture_tree_fails_as_a_whole():
    findings = LintEngine().check_tree(FIXTURES)
    assert {f.rule_id for f in findings} == set(rule_registry())


def test_exemption_for_random_streams():
    # The one legitimate home of `import random` is never flagged.
    import repro.des.random_streams as module
    findings = LintEngine().check_file(Path(module.__file__))
    assert [f for f in findings if f.rule_id == "raw-random"] == []


def test_repository_lints_clean():
    # The acceptance bar: the shipped code base has zero violations.
    findings = run_check()
    assert findings == [], [f.format() for f in findings]

"""Schedule-perturbation harness: tie-break shuffles must not move metrics."""

import dataclasses

import pytest

from repro.check import (
    ScheduleRaceError,
    assert_schedule_invariant,
    run_perturbed,
)
from repro.check.perturb import derive_tie_seeds
from repro.des import Environment
from repro.des.stats import OnlineStats
from repro.sim.model import SwiftSimModel
from repro.sim.workload import SimConfig


def _racy_scenario(tie_break_seed, trace):
    """Last-writer-wins at one timestamp: the textbook tie-break race."""
    env = Environment(tie_break_seed=tie_break_seed)
    trace.attach(env)
    box = {"last": 0.0}

    def writer(value):
        yield env.timeout(1.0)
        box["last"] = value

    env.process(writer(10.0))
    env.process(writer(20.0))
    env.run()
    return {"last": box["last"]}


def _clean_scenario(tie_break_seed, trace):
    env = Environment(tie_break_seed=tie_break_seed)
    trace.attach(env)
    stats = OnlineStats()

    def writer(value, delay):
        yield env.timeout(delay)
        stats.add(value)

    env.process(writer(10.0, 1.0))
    env.process(writer(20.0, 2.0))
    env.run()
    return {"mean": stats.mean, "count": stats.count}


def test_racy_scenario_diverges_and_is_localized():
    report = run_perturbed(_racy_scenario, permutations=8)
    assert not report.invariant
    divergence = report.divergences[0]
    assert divergence.metric_diffs["last"] == (20.0, 10.0)
    # The harness pins the first calendar slot where the schedules split.
    assert divergence.first_divergent_event is not None
    assert divergence.baseline_fingerprint != divergence.perturbed_fingerprint
    text = report.format()
    assert "tie-break race" in text
    assert "schedules diverge at event" in text


def test_clean_scenario_is_invariant():
    report = assert_schedule_invariant(_clean_scenario, permutations=8)
    assert report.invariant
    assert report.baseline_metrics == {"mean": 15.0, "count": 2}
    assert "bit-identical across 8" in report.format()


def test_assert_raises_on_divergence():
    with pytest.raises(ScheduleRaceError) as caught:
        assert_schedule_invariant(_racy_scenario, permutations=4)
    assert "tie-break race" in str(caught.value)


def test_seed_derivation_is_deterministic_and_distinct():
    seeds = derive_tie_seeds(0, 8)
    assert seeds == derive_tie_seeds(0, 8)
    assert len(set(seeds)) == 8
    assert seeds != derive_tie_seeds(1, 8)


def test_permutation_count_is_validated():
    with pytest.raises(ValueError):
        run_perturbed(_clean_scenario, permutations=0)


def test_end_to_end_model_is_schedule_invariant():
    # The acceptance bar: a full (scaled-down) Figure 3 run produces
    # bit-identical metrics across 8 seeded shuffles of every calendar tie.
    def scenario(tie_break_seed, trace):
        config = SimConfig(num_requests=40, warmup_requests=4,
                           tie_break_seed=tie_break_seed)
        model = SwiftSimModel(config)
        trace.attach(model.env)
        metrics = dataclasses.asdict(model.run())
        metrics.pop("config")
        return metrics

    report = assert_schedule_invariant(scenario, permutations=8)
    assert report.invariant
    assert report.baseline_metrics["completed"] > 0

"""Runtime sanitizer: catches injected regressions, silent on clean runs."""

import heapq

import pytest

from repro.check import (
    MonotonicityError,
    ResourceLeakError,
    SharedStreamError,
    sanitize,
)
from repro.des import Environment, Resource, Store, StreamFactory


def _inject_stale_event(env):
    """Corrupt the calendar: an event timestamped before the clock."""
    event = env.event()
    event._ok = True
    heapq.heappush(env._queue, (env.now - 0.5, (1 << 62) + 10 ** 9, event))


def test_clean_run_passes():
    env = Environment()
    resource = Resource(env, capacity=1)

    def worker(env):
        with resource.request() as request:
            yield request
            yield env.timeout(1.0)

    with sanitize(env) as monitor:
        env.process(worker(env))
        env.run()
    assert monitor.events_processed > 0
    assert monitor.held_requests == 0
    assert monitor.warnings == []


def test_catches_injected_event_time_regression():
    env = Environment()

    def worker(env):
        yield env.timeout(2.0)

    env.process(worker(env))
    with pytest.raises(MonotonicityError):
        with sanitize(env):
            env.run()
            _inject_stale_event(env)
            env.run()


def test_monotonicity_fires_before_the_engine_guard():
    # Without the sanitizer the engine raises its own (vaguer) error;
    # under sanitize the typed error wins at the same event.
    env = Environment()
    _inject_stale_event(env)
    env._now = 1.0
    with pytest.raises(MonotonicityError):
        with sanitize(env):
            env.run()


def test_catches_injected_resource_leak():
    env = Environment()
    resource = Resource(env, capacity=2)

    def leaker(env):
        request = resource.request()
        yield request
        yield env.timeout(1.0)
        # never released

    with pytest.raises(ResourceLeakError) as excinfo:
        with sanitize(env):
            env.process(leaker(env))
            env.run()
    assert "never released" in str(excinfo.value)


def test_released_requests_do_not_leak():
    env = Environment()
    resource = Resource(env, capacity=1)

    def polite(env):
        request = resource.request()
        yield request
        yield env.timeout(0.5)
        resource.release(request)

    with sanitize(env) as monitor:
        for _ in range(3):
            env.process(polite(env))
        env.run()
    assert monitor.held_requests == 0


def test_detects_cross_stream_sharing():
    env = Environment()
    streams = StreamFactory(7)
    shared = streams.stream("shared")

    def drawer(env):
        yield env.timeout(shared.uniform(0.0, 1.0))

    with sanitize(env, streams) as monitor:
        env.process(drawer(env))
        env.process(drawer(env))
        env.run()
    assert monitor.shared_streams() == {"shared": 2}
    assert len(monitor.warnings) == 1
    assert "shared" in monitor.warnings[0]


def test_cross_stream_sharing_can_be_fatal():
    env = Environment()
    streams = StreamFactory(7)
    shared = streams.stream("shared")

    def drawer(env):
        yield env.timeout(shared.uniform(0.0, 1.0))

    with pytest.raises(SharedStreamError):
        with sanitize(env, streams, on_shared_stream="error"):
            env.process(drawer(env))
            env.process(drawer(env))
            env.run()


def test_per_component_streams_are_silent():
    env = Environment()
    streams = StreamFactory(7)

    def drawer(env, stream):
        yield env.timeout(stream.uniform(0.0, 1.0))

    with sanitize(env, streams) as monitor:
        env.process(drawer(env, streams.stream("a")))
        env.process(drawer(env, streams.stream("b")))
        env.run()
    assert monitor.warnings == []


def test_uninstall_restores_zero_overhead_hooks():
    env = Environment()
    streams = StreamFactory(1)
    stream = streams.stream("x")
    with sanitize(env, streams):
        pass
    assert env._step_monitors == []
    assert env._resource_monitors == []
    assert stream.observer is None


def test_sanitizer_does_not_mask_body_exceptions():
    env = Environment()
    resource = Resource(env, capacity=1)

    def leaker(env):
        request = resource.request()
        yield request

    with pytest.raises(RuntimeError, match="boom"):
        with sanitize(env):
            env.process(leaker(env))
            env.run()
            raise RuntimeError("boom")


def test_store_traffic_is_not_a_resource_leak():
    env = Environment()
    mailbox = Store(env)

    def producer(env):
        yield mailbox.put("message")

    def consumer(env):
        item = yield mailbox.get()
        assert item == "message"

    with sanitize(env) as monitor:
        env.process(producer(env))
        env.process(consumer(env))
        env.run()
    assert monitor.held_requests == 0

"""The zero-copy safety pass, runtime half: poisoned pools, stamps."""

import pytest

from repro.check import (
    AliasSanitizer,
    StaleViewError,
    UseAfterRecycleError,
    alias_sanitize,
)
from repro.core import build_local_swift
from repro.core.buffered import BufferedSwiftFile
from repro.des import Environment
from repro.des.resources import Resource


def _tick(env, rounds, delay=0.25):
    for _ in range(rounds):
        yield env.timeout(delay)


# -- use-after-recycle --------------------------------------------------------


def test_stale_value_read_raises_with_dual_stacks():
    env = Environment()
    holder = {}

    def worker(env):
        timeout = env.timeout(1.0, value="life-1")
        holder["t"] = timeout
        yield timeout
        yield env.timeout(1.0)  # the drain loop recycles the object here

    env.process(worker(env))
    with alias_sanitize(env) as monitor:
        env.run()
        assert monitor.events_recycled > 0
        with pytest.raises(UseAfterRecycleError) as excinfo:
            holder["t"].value
    message = str(excinfo.value)
    assert "recycled at:" in message          # stack one: the recycle site
    assert "engine.py" in message
    assert "use site" in message              # stack two: the raise itself


def test_rearm_while_referenced_is_caught_at_the_rearm():
    env = Environment()

    def worker(env):
        timeout = env.timeout(0.5)
        yield timeout
        yield env.timeout(0.5)  # `timeout` recycled by the drain loop
        # Injected bug: re-attach a waiter to the pooled object.
        timeout.callbacks.append(lambda event: None)
        yield env.timeout(0.5)  # pool pop re-arms it -> must trip

    env.process(worker(env))
    with pytest.raises(UseAfterRecycleError) as excinfo:
        with alias_sanitize(env):
            env.run()
    message = str(excinfo.value)
    assert "re-armed while 1 callback(s) still wait" in message
    assert "recycled at:" in message


def test_pooling_stays_enabled_under_the_sanitizer():
    # The point of the instrumented pools: _unmonitored must stay True so
    # the sanitizer watches the very fast path production runs use.
    env = Environment()
    env.process(_tick(env, 50))
    with alias_sanitize(env) as monitor:
        assert env._unmonitored
        env.run()
        assert env._unmonitored
        assert monitor.events_recycled > 0
        assert monitor.events_rearmed > 0


def test_uninstall_restores_plain_unpoisoned_pools():
    env = Environment()
    env.process(_tick(env, 10))
    with alias_sanitize(env):
        env.run()
    for pool in (env._timeout_pool, env._release_pool, env._request_pool):
        assert type(pool) is list
    # Parked events are readable again (poison removed at uninstall).
    for event in env._timeout_pool:
        assert not isinstance(event.value, Exception)


# -- guarded buffers ----------------------------------------------------------


def test_guarded_view_trips_on_real_flush():
    deployment = build_local_swift(num_agents=3)
    env = deployment.env
    handle = deployment.client().open("obj", "w", striping_unit=8192)
    buffered = BufferedSwiftFile(handle, buffer_size=4096)

    monitor = AliasSanitizer(env)
    monitor.install()
    try:
        buffered.write(b"A" * 64)
        monitor.adopt(buffered._write_buffer, "write-buffer")
        view = monitor.borrow(buffered._write_buffer)
        assert view.tobytes() == b"A" * 64  # fresh borrow reads fine
        buffered.write(b"B" * 64)           # in-place growth -> mutate
        assert view.stale
        with pytest.raises(StaleViewError) as excinfo:
            view.tobytes()
        message = str(excinfo.value)
        assert "borrowed at:" in message
        assert "invalidated at:" in message
        assert "mutated in place" in message

        # Re-borrow, then flush: the buffer is swapped out wholesale.
        view = monitor.borrow(buffered._write_buffer)
        buffered.flush()
        with pytest.raises(StaleViewError) as excinfo:
            len(view)
        assert "retired" in str(excinfo.value)
    finally:
        monitor.uninstall()


def test_borrow_requires_adoption():
    env = Environment()
    monitor = AliasSanitizer(env)
    monitor.install()
    try:
        with pytest.raises(ValueError):
            monitor.borrow(bytearray(4))
    finally:
        monitor.uninstall()


# -- pooled-event edge cases the sanitizer must bless -------------------------


def test_cancel_then_exit_recycle_is_clean():
    env = Environment()
    resource = Resource(env, capacity=1)

    def holder(env, resource):
        with resource.request() as request:
            yield request
            yield env.timeout(10.0)

    def canceller(env, resource):
        for _ in range(5):
            with resource.request() as request:
                request.cancel()  # withdrawn before the grant
                yield env.timeout(0.5)

    def churner(env, resource):
        yield env.timeout(11.0)  # after the holder releases
        for _ in range(5):
            with resource.request() as request:
                yield request
                yield env.timeout(0.1)

    env.process(holder(env, resource))
    env.process(canceller(env, resource))
    env.process(churner(env, resource))
    with alias_sanitize(env) as monitor:
        env.run()
    # Cancelled requests are never pooled; granted-with-block ones are.
    assert monitor.events_recycled > 0


def test_monitor_attached_mid_run_suspends_pooling_cleanly():
    env = Environment()
    stepped = []

    def attach_later(env):
        yield env.timeout(1.0)
        env.add_step_monitor(lambda when, event: stepped.append(when))
        yield env.timeout(1.0)

    env.process(attach_later(env))
    env.process(_tick(env, 20))
    with alias_sanitize(env) as monitor:
        env.run()
    assert stepped  # the monitor really attached mid-run
    assert monitor.events_recycled > 0  # pooling ran before the attach


def test_drain_to_empty_run_is_clean():
    env = Environment()
    resource = Resource(env, capacity=2)

    def worker(env, resource):
        for _ in range(10):
            with resource.request() as request:
                yield request
                yield env.timeout(0.05)

    for _ in range(4):
        env.process(worker(env, resource))
    with alias_sanitize(env) as monitor:
        env.run()  # until=None: the inlined drain-to-empty loop
    assert monitor.events_recycled > 0
    assert monitor.events_rearmed > 0


# -- bit-identity -------------------------------------------------------------


def _roundtrip(sanitized: bool):
    deployment = build_local_swift(num_agents=3)
    env = deployment.env
    handle = deployment.client().open("obj", "w", striping_unit=4096)
    payload = bytes(range(256)) * 64
    if sanitized:
        with alias_sanitize(env):
            handle.pwrite(0, payload)
            data = handle.pread(0, len(payload))
    else:
        handle.pwrite(0, payload)
        data = handle.pread(0, len(payload))
    return data, env.now


def test_sanitized_run_is_bit_identical():
    plain = _roundtrip(sanitized=False)
    sanitized = _roundtrip(sanitized=True)
    assert plain == sanitized

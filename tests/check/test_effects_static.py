"""The effect/purity pass, static half: call graph, contracts, CLI."""

import json
from pathlib import Path

import pytest

from repro.check import EFFECT_RULES, effect_rule_registry
from repro.check.effects import (
    ALLOWED_GLOBAL_WRITES,
    analyze_effects,
    build_program,
    compute_summaries,
    _discover_entries,
    _reachable,
)
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures" / "effects"
PACKAGE = Path(__file__).parents[2] / "src" / "repro"

#: fixture file -> (rule expected to fire exactly once, pinned stable id).
#: The ids are the acceptance contract: a message rewording that changes
#: them must be deliberate.
EFFECT_FIXTURES = {
    "fixture_effect_time_service.py": ("effect-ambient-read", "ffae2b198c"),
    "fixture_effect_environ_cached.py": ("effect-ambient-read",
                                         "cb7f8ff80e"),
    "fixture_effect_fs_cached.py": ("effect-ambient-read", "a5d3dcb5ee"),
    "fixture_effect_global_worker.py": ("effect-global-write",
                                        "1b64e8415c"),
    "fixture_effect_counter_worker.py": ("effect-global-write",
                                         "527d994792"),
    "fixture_effect_random_workload.py": ("effect-unseeded-random",
                                          "1d9b47472c"),
    "fixture_effect_unkeyed_cached.py": ("effect-unkeyed-input",
                                         "786c3c576a"),
}


# -- fixtures -----------------------------------------------------------------


@pytest.mark.parametrize("fixture,expected", sorted(EFFECT_FIXTURES.items()))
def test_effect_fixture_fires_exactly_once(fixture, expected):
    rule_id, fingerprint = expected
    findings, _ = analyze_effects([FIXTURES / fixture])
    assert [f.rule_id for f in findings] == [rule_id], findings
    assert findings[0].fingerprint == fingerprint
    assert findings[0].line > 1  # anchored at the bug, not the module
    assert "call chain:" in findings[0].message


def test_clean_fixture_has_zero_findings():
    findings, stats = analyze_effects([FIXTURES / "fixture_effect_clean.py"])
    assert findings == []
    # The clean fixture declares all three entry kinds via markers.
    assert stats.cached_entries and stats.worker_entries
    assert stats.bench_entries


def test_allow_effects_group_suppresses_the_pass():
    findings, _ = analyze_effects(
        [FIXTURES / "fixture_effect_suppressed.py"])
    assert findings == []


def test_every_effect_rule_has_a_fixture():
    expected = {rule for rule, _ in EFFECT_FIXTURES.values()}
    assert expected == set(effect_rule_registry())
    assert expected == {rule.rule_id for rule in EFFECT_RULES}


def test_finding_is_anchored_at_the_violation_not_the_entry():
    findings, _ = analyze_effects(
        [FIXTURES / "fixture_effect_time_service.py"])
    (finding,) = findings
    source = (FIXTURES / "fixture_effect_time_service.py").read_text()
    flagged = source.splitlines()[finding.line - 1]
    assert "time.time()" in flagged


# -- the call graph -----------------------------------------------------------


def test_call_chain_crosses_two_hops():
    findings, _ = analyze_effects(
        [FIXTURES / "fixture_effect_time_service.py"])
    chain = findings[0].message.splitlines()[1]
    assert "run_cached" in chain
    assert "_disk_pass" in chain
    assert "service_time" in chain


def test_package_entry_discovery_finds_declared_and_syntactic_entries():
    program = build_program([PACKAGE])
    entries = _discover_entries(program)
    assert "repro.sim.parallel._run_config" in entries["cached"]
    assert "repro.sim.model.SwiftSimModel.run" in entries["cached"]
    # Workers discovered syntactically from the pool.map dispatch sites.
    assert "repro.sim.parallel._run_config" in entries["worker"]
    assert "repro.sim.parallel._run_max_sustainable" in entries["worker"]
    assert "repro.sim.figures.figure3_series" in entries["bench"]


def test_cached_reachability_covers_the_model_internals():
    program = build_program([PACKAGE])
    entries = _discover_entries(program)
    reachable = _reachable(program, entries["cached"])
    for expected in ("repro.sim.model.SwiftSimModel._generator",
                     "repro.sim.model.SwiftSimModel._request",
                     "repro.simdisk.disk.Disk.__init__"):
        assert expected in reachable, expected


def test_function_level_import_resolves_the_lazy_cycle_break():
    # `_run_max_sustainable` imports find_max_sustainable inside the
    # function body (the lazy-import idiom); the edge must still exist.
    program = build_program([PACKAGE])
    info = program.functions["repro.sim.parallel._run_max_sustainable"]
    assert "repro.sim.sweep.find_max_sustainable" in info.calls


def test_summaries_propagate_effects_bottom_up():
    program = build_program([FIXTURES / "fixture_effect_time_service.py"])
    summaries = compute_summaries(program)
    entry = next(name for name in summaries if name.endswith("run_cached"))
    assert "time" in summaries[entry]


def test_blessed_memo_is_the_only_package_global_write():
    # With an *empty* allowlist the pass must surface exactly the
    # `_code_version_cache` memo — proof the analysis walks the real
    # worker -> sweep -> cache chain, and that the tree has no other
    # reachable global mutation.
    findings, _ = analyze_effects([PACKAGE], allowed_globals={})
    assert [f.rule_id for f in findings] == ["effect-global-write"]
    assert "_code_version_cache" in findings[0].message
    assert "config_key" in findings[0].message  # the chain is reported


def test_allowed_global_writes_is_declared_with_a_reason():
    for qualname, reason in ALLOWED_GLOBAL_WRITES.items():
        assert qualname.startswith("repro.")
        assert len(reason) > 20  # a real justification, not a stub


# -- the shipped tree ---------------------------------------------------------


def test_package_is_effect_clean():
    findings, _ = analyze_effects([PACKAGE])
    assert findings == [], [str(f) for f in findings]


def test_package_has_zero_effect_suppressions():
    # check/effects.py documents the comment syntax in its docstring;
    # everything else must not use (or mention) it.
    hits = [path for path in PACKAGE.rglob("*.py")
            if "allow[effects]" in path.read_text(encoding="utf-8")
            and path.name != "effects.py"]
    assert hits == []


# -- CLI ----------------------------------------------------------------------


def test_cli_effects_flags_fixture_dir(capsys):
    assert main(["check", "--effects", str(FIXTURES)]) == 1
    out = capsys.readouterr().out
    assert "effect-ambient-read" in out
    assert "effect-global-write" in out
    assert "effect-unseeded-random" in out
    assert "effect-unkeyed-input" in out


def test_cli_effects_clean_on_package(capsys):
    assert main(["check", "--effects", str(PACKAGE)]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_cli_effects_json_carries_stats(capsys):
    assert main(["check", "--effects", str(FIXTURES), "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    by_rule = report["summary"]["by_rule"]
    assert by_rule["effect-ambient-read"] == 3
    assert by_rule["effect-global-write"] == 2
    assert by_rule["effect-unseeded-random"] == 1
    assert by_rule["effect-unkeyed-input"] == 1
    assert report["effects"]["functions"] > 0
    assert report["effects"]["entries"]["cached"]


def test_cli_effects_rule_selection(capsys):
    assert main(["check", "--effects", "--rules", "effect-global-write",
                 str(FIXTURES)]) == 1
    out = capsys.readouterr().out
    assert "effect-global-write" in out
    assert "effect-ambient-read" not in out


def test_cli_effects_rejects_unknown_rule():
    with pytest.raises(SystemExit):
        main(["check", "--effects", "--rules", "no-such-rule",
              str(FIXTURES)])


def test_cli_list_rules_mentions_effect_rules(capsys):
    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in effect_rule_registry():
        assert rule_id in out


# -- --all --------------------------------------------------------------------


def test_cli_all_merges_passes_and_reports_timing(capsys):
    assert main(["check", "--all", "--retransmits", "1", "--json",
                 str(PACKAGE)]) == 0
    report = json.loads(capsys.readouterr().out)
    names = [entry["name"] for entry in report["passes"]]
    assert names == ["determinism", "races", "units", "aliasing",
                     "model", "effects"]
    for entry in report["passes"]:
        assert entry["seconds"] >= 0.0
        assert entry["findings"] == 0
    assert report["model"]["scenarios"] if "model" in report else True
    assert report["effects"]["functions"] > 0


def test_cli_all_fails_on_any_pass(capsys):
    # Pointed at the effects fixtures, the merged run must fail and the
    # effects pass must be the one reporting.
    assert main(["check", "--all", "--retransmits", "1", "--json",
                 str(FIXTURES)]) == 1
    report = json.loads(capsys.readouterr().out)
    by_pass = {entry["name"]: entry["findings"]
               for entry in report["passes"]}
    assert by_pass["effects"] == 7

"""Static interleaving lints (yield-rmw, lock-order) and the --races CLI."""

from pathlib import Path

from repro.check import RACE_RULES, race_rule_registry
from repro.check.cli import RACE_SCAN_SUBDIRS, main
from repro.check.lint import LintEngine

FIXTURES = Path(__file__).parent / "fixtures"
PACKAGE = Path(__file__).parents[2] / "src" / "repro"


def _race_engine():
    return LintEngine(rules=[rule() for rule in RACE_RULES])


def test_yield_rmw_fires_exactly_once_on_its_fixture():
    findings = _race_engine().check_file(FIXTURES / "fixture_yield_rmw.py")
    hits = [f for f in findings if f.rule_id == "yield-rmw"]
    assert len(hits) == 1, findings
    # The unguarded write-back line, not the guarded twin below it.
    assert hits[0].line == 7
    assert "stale" in hits[0].message


def test_guarded_rmw_is_clean():
    # fixture_yield_rmw.py's second function holds a request() across the
    # read and the write-back; only the unguarded one may fire.
    findings = _race_engine().check_file(FIXTURES / "fixture_yield_rmw.py")
    assert len(findings) == 1


def test_lock_order_reports_the_cycle_once():
    findings = _race_engine().check_file(FIXTURES / "fixture_lock_order.py")
    hits = [f for f in findings if f.rule_id == "lock-order"]
    assert len(hits) == 1, findings
    message = hits[0].message
    assert "disk" in message and "ring" in message


def test_consistent_nesting_order_is_clean():
    source = (
        "def one(env, a, b):\n"
        "    with a.request() as ga:\n"
        "        yield ga\n"
        "        with b.request() as gb:\n"
        "            yield gb\n"
        "\n"
        "def two(env, a, b):\n"
        "    with a.request() as ga:\n"
        "        yield ga\n"
        "        with b.request() as gb:\n"
        "            yield gb\n"
    )
    import ast
    findings = list(RACE_RULES[1]().check(ast.parse(source), Path("x.py")))
    assert findings == []


def test_allow_comment_suppresses_race_findings(tmp_path):
    source = (
        "def lossy(env, shared):\n"
        "    snapshot = shared.total\n"
        "    yield env.timeout(0.001)\n"
        "    shared.total = snapshot + 1  # repro: allow[yield-rmw]\n"
    )
    path = tmp_path / "suppressed.py"
    path.write_text(source)
    assert _race_engine().check_file(path) == []


def test_race_fixtures_do_not_trip_the_determinism_rules():
    # The default pass must stay blind to the race fixtures, so the
    # existing fixture-tree invariants keep holding.
    for name in ("fixture_yield_rmw.py", "fixture_lock_order.py"):
        assert LintEngine().check_file(FIXTURES / name) == []


def test_shipped_des_facing_code_is_race_clean():
    engine = _race_engine()
    findings = []
    for sub in RACE_SCAN_SUBDIRS:
        root = PACKAGE / sub
        assert root.is_dir(), root
        findings.extend(engine.check_tree(root))
    assert findings == [], [f.format() for f in findings]


def test_registry_exposes_both_rules():
    assert set(race_rule_registry()) == {"yield-rmw", "lock-order"}


def test_cli_races_pass_is_clean_on_the_repository(capsys):
    assert main(["--races"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_cli_races_pass_fails_on_the_fixtures(capsys):
    assert main(["--races", "--root", str(FIXTURES)]) == 1
    out = capsys.readouterr().out
    assert "yield-rmw" in out
    assert "lock-order" in out


def test_cli_races_rule_selection(capsys):
    # Selecting just lock-order must not report the RMW fixture.
    assert main(["--races", "--root", str(FIXTURES),
                 "--rules", "lock-order"]) == 1
    out = capsys.readouterr().out
    assert "lock-order" in out
    assert "yield-rmw" not in out


def test_cli_list_rules_includes_the_race_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "yield-rmw" in out
    assert "lock-order" in out

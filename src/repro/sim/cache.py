"""Result caching for simulation sweeps: content-addressed SimResults.

Sweeps and figure series re-run identical configurations constantly —
bisection probes revisit rates, figure grids share baselines, and repeated
benchmark invocations redo the whole grid.  Every run is a pure function of
``(SimConfig, code version)``: the model draws all randomness from a
:class:`~repro.des.random_streams.StreamFactory` seeded by ``config.seed``,
so a completed :class:`~repro.sim.model.SimResult` can be replayed from
disk bit-for-bit.

The cache key is a SHA-256 digest over the canonical JSON form of the
config plus the cache format number, the serialisation schema (dataclass
field names), and a digest of the ``repro`` package sources, so *any*
source or schema change invalidates every entry — coarse, but sound: no
stale results can survive a model change.  Entries only exist for plain runs (no
``storage_factory``, no ``trace``): callables and traces are not part of
the key, so runs using them are never cached.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Optional

from ..simdisk import DiskSpec
from .model import SimResult
from .workload import SimConfig

__all__ = ["ResultCache", "config_key", "deployment_key", "code_version",
           "cache_schema", "RUN_ONLY_FIELDS"]

#: Bumping this invalidates every cache entry even without a source change
#: (e.g. when the serialisation format itself evolves).
CACHE_FORMAT = 1

_code_version_cache: dict[str, str] = {}


def _digest_sources(root: Path, sources) -> str:
    """Digest path-relative names + contents of ``sources`` (iterated in
    the order given; callers sort).  Factored out so tests can prove the
    digest is a function of the *set* of (name, bytes) pairs and nothing
    else — not of enumeration order, not of the absolute checkout path.
    """
    digest = hashlib.sha256()
    for source in sources:
        digest.update(source.relative_to(root).as_posix().encode())
        digest.update(b"\x00")
        digest.update(source.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()


def code_version(root: Optional[Path] = None) -> str:
    """Digest of every ``repro`` source file; memoised per process.

    Hashes path-relative names and file contents of all ``.py`` files
    under the package root in sorted order, so the result is independent
    of filesystem enumeration order and of where the tree is checked out.
    ``root`` overrides the package root (tests digest scratch trees
    without touching the memo).
    """
    if root is not None:
        return _digest_sources(root, sorted(Path(root).rglob("*.py")))
    cached = _code_version_cache.get("digest")
    if cached is not None:
        return cached
    package_root = Path(__file__).resolve().parents[1]
    version = _digest_sources(package_root,
                              sorted(package_root.rglob("*.py")))
    _code_version_cache["digest"] = version
    return version


def cache_schema() -> dict:
    """The serialisation schema: field names of every dataclass a cache
    entry round-trips through.

    Folded into :func:`config_key` so adding/renaming/removing a field on
    :class:`SimResult`, :class:`SimConfig` or :class:`DiskSpec` changes
    every key even when no source byte under ``repro/`` changed (e.g. a
    field injected by test monkey-patching, or a future schema loaded
    from config) — and so the *schema* dependency is explicit rather
    than riding along with the code digest.
    """
    return {
        "result": [f.name for f in dataclasses.fields(SimResult)],
        "config": [f.name for f in dataclasses.fields(SimConfig)],
        "disk": [f.name for f in dataclasses.fields(DiskSpec)],
    }


def config_key(config: SimConfig, version: Optional[str] = None) -> str:
    """The cache key of one run: sha256 of (format, schema, code,
    canonical config).

    ``version`` defaults to :func:`code_version`; tests inject fixed
    strings to probe key stability without hashing the tree.
    """
    payload = {
        "format": CACHE_FORMAT,
        "schema": cache_schema(),
        "code": code_version() if version is None else version,
        "config": dataclasses.asdict(config),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


#: SimConfig fields that shape only a run's *workload*, not the built
#: deployment (the Environment / host / ring / disk object graph).  Two
#: configs differing only in these fields share a deployment, so a sweep
#: may warm-start the second run from the first's built model
#: (:meth:`repro.sim.model.SwiftSimModel.warm_reset`).  ``tie_break_seed``
#: is run-only because ``warm_reset`` re-applies it to the engine;
#: ``seed`` is **not** (the StreamFactory bakes it into every stream).
RUN_ONLY_FIELDS = frozenset({
    "arrival_rate", "read_fraction", "num_requests", "warmup_requests",
    "transfer_unit", "request_size", "tie_break_seed", "disk_scheduling",
    "deadline_s", "realtime_fraction", "background_deadline_factor",
})


def deployment_key(config: SimConfig, version: Optional[str] = None) -> str:
    """Digest of the deployment-shaping half of ``config``.

    Same digest machinery as :func:`config_key` (format + schema + code
    version + canonical JSON) over the config with the
    :data:`RUN_ONLY_FIELDS` removed.  Adjacent sweep grid points compare
    deployment keys to decide whether the previous run's built model can
    be warm-started for the next one; matching keys guarantee rebuilding
    would produce an identical object graph.
    """
    deployment = {key: value
                  for key, value in dataclasses.asdict(config).items()
                  if key not in RUN_ONLY_FIELDS}
    payload = {
        "format": CACHE_FORMAT,
        "schema": cache_schema(),
        "code": code_version() if version is None else version,
        "deployment": deployment,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def result_to_jsonable(result: SimResult) -> dict:
    """A SimResult as a plain JSON-serialisable dict (nested dataclasses
    included)."""
    return dataclasses.asdict(result)


def result_from_jsonable(payload: dict) -> SimResult:
    """Inverse of :func:`result_to_jsonable`: rebuild the frozen dataclass
    chain (DiskSpec inside SimConfig inside SimResult)."""
    config_fields = dict(payload["config"])
    config_fields["disk"] = DiskSpec(**config_fields["disk"])
    rest = {key: value for key, value in payload.items() if key != "config"}
    return SimResult(config=SimConfig(**config_fields), **rest)


class ResultCache:
    """A directory of ``<key>.json`` files, one completed run each.

    Safe for concurrent writers: entries are written to a per-process
    temporary name and atomically renamed into place, and a torn or
    corrupt entry is treated as a miss (and removed) rather than an error.
    """

    def __init__(self, root: Path | str):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[SimResult]:
        """The cached result under ``key``, or None on a miss."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            result = result_from_jsonable(payload)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, KeyError, TypeError):
            # Torn write or stale format: drop the entry, report a miss.
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: SimResult) -> None:
        """Store ``result`` under ``key`` (atomic rename; last writer
        wins, which is harmless because all writers store the same
        deterministic result)."""
        path = self._path(key)
        temporary = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        temporary.write_text(json.dumps(result_to_jsonable(result),
                                        sort_keys=True))
        os.replace(temporary, path)

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

"""Configuration and workload for the §5 simulation study.

§5.1: "A generator process creates client requests using an exponential
distribution for request interarrival times.  The client requests are
differentiated according to a read-to-write ratio.  In each of the ...
figures, this ratio has been conservatively estimated to be 4:1."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..simdisk import DISK_CATALOG, DiskSpec

__all__ = ["SimConfig"]


@dataclass(frozen=True)
class SimConfig:
    """Everything one simulation run needs.

    Defaults are the Figure 3 baseline: 1 gigabit/second token ring,
    100 MIPS hosts, Fujitsu M2372K disks, 1-megabyte client requests,
    4:1 read:write.
    """

    num_disks: int = 8
    disk: DiskSpec = field(
        default_factory=lambda: DISK_CATALOG["Fujitsu M2372K"])
    transfer_unit: int = 32 * 1024
    request_size: int = 1 << 20
    arrival_rate: float = 5.0          # requests/second
    read_fraction: float = 0.8         # the paper's 4:1 ratio
    num_clients: int = 4
    ring_bits_per_second: float = 1e9
    host_mips: float = 100.0
    num_requests: int = 400            # completions measured per run
    warmup_requests: int = 40
    seed: int = 0
    # Schedule-perturbation mode (repro.check.perturb): a non-None seed
    # deterministically shuffles same-(time, priority) calendar ties so
    # the harness can prove the metrics don't lean on the tie-break.
    tie_break_seed: int | None = None
    # §6.1.2 extension: real-time disk scheduling for data-rate guarantees.
    # A ``realtime_fraction`` of requests are continuous-media transfers
    # that must complete within ``deadline_s`` of arrival; the rest are
    # background traffic with a deadline ``background_deadline_factor``
    # times looser.  "edf" orders every disk queue by absolute deadline
    # (earliest first); "fifo" is the §5 baseline.  Miss statistics are
    # kept for the real-time class.
    disk_scheduling: str = "fifo"      # "fifo" | "edf"
    deadline_s: float | None = None
    realtime_fraction: float = 1.0
    background_deadline_factor: float = 10.0

    def __post_init__(self):
        if self.num_disks < 1:
            raise ValueError("need at least one disk")
        if self.transfer_unit < 1 or self.request_size < 1:
            raise ValueError("sizes must be positive")
        if self.arrival_rate <= 0:
            raise ValueError("arrival rate must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read fraction must be in [0, 1]")
        if self.num_clients < 1:
            raise ValueError("need at least one client")
        if self.num_requests <= self.warmup_requests:
            raise ValueError("num_requests must exceed warmup_requests")
        if self.disk_scheduling not in ("fifo", "edf"):
            raise ValueError(
                f"unknown disk scheduling {self.disk_scheduling!r}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline must be positive")
        if not 0.0 <= self.realtime_fraction <= 1.0:
            raise ValueError("realtime fraction must be in [0, 1]")
        if self.background_deadline_factor < 1.0:
            raise ValueError("background deadlines cannot be tighter than "
                             "real-time ones")

    @property
    def total_blocks(self) -> int:
        """Blocks per client request (ceil of size / unit)."""
        return -(-self.request_size // self.transfer_unit)

    def blocks_per_agent(self, start_agent: int = 0) -> list[int]:
        """How many of a request's blocks each agent serves.

        Blocks are dealt round-robin starting at ``start_agent`` so that
        successive requests spread their load across all the disks even
        when a request has fewer blocks than there are disks.
        """
        counts = [0] * self.num_disks
        for index in range(self.total_blocks):
            counts[(start_agent + index) % self.num_disks] += 1
        return counts

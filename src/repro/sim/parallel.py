"""Parallel sweep execution: fan simulation runs out across processes.

Each simulation run is sealed: it builds its own
:class:`~repro.des.Environment` and draws every variate from a
:class:`~repro.des.random_streams.StreamFactory` seeded by
``config.seed``.  Runs therefore commute — executing them in worker
processes, in any order, yields bit-identical :class:`SimResult` values
to the serial loop.  That identity is the correctness contract of this
module (and is pinned by tests/sim/test_parallel.py).

Workers are plain ``multiprocessing`` pool processes; the unit of work is
one whole run (seconds of CPU), so pickling one frozen ``SimConfig`` per
task is noise.  ``workers <= 1`` short-circuits to the serial loop with no
pool at all, which keeps single-core containers and nested-process-averse
environments on the exact code path they had before.

An optional :class:`~repro.sim.cache.ResultCache` short-circuits runs
whose ``(config, code-version)`` key already has a stored result.  The
cache is only consulted for plain runs — a ``storage_factory`` or
``trace`` changes the model in ways the key cannot see, so those runs
always execute (and are never stored).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
from pathlib import Path
from typing import Optional, Sequence

from .cache import ResultCache, config_key
from .model import SimResult, SwiftSimModel
from .workload import SimConfig

__all__ = ["run_many", "parallel_load_sweep", "find_max_sustainable_many"]


def _pool_context():
    """Fork where available (cheap, inherits the imported package); spawn
    otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def _run_config(config: SimConfig) -> SimResult:
    """Module-level worker body: one plain run (picklable by name)."""
    return SwiftSimModel(config).run()


def run_many(configs: Sequence[SimConfig],
             workers: int = 1,
             cache: Optional[ResultCache] = None) -> list[SimResult]:
    """Run every config, in input order, optionally in parallel and cached.

    Cached results are filled in first; only the misses are executed
    (serially for ``workers <= 1`` or a single miss, otherwise on a
    process pool).  Freshly computed results are stored back before
    returning.  Output order always matches ``configs``.
    """
    configs = list(configs)
    results: list[Optional[SimResult]] = [None] * len(configs)
    misses: list[int] = []
    keys: dict[int, str] = {}
    for index, config in enumerate(configs):
        if cache is not None:
            key = config_key(config)
            keys[index] = key
            cached = cache.get(key)
            if cached is not None:
                results[index] = cached
                continue
        misses.append(index)

    if misses:
        miss_configs = [configs[index] for index in misses]
        if workers <= 1 or len(misses) == 1:
            computed = [_run_config(config) for config in miss_configs]
        else:
            context = _pool_context()
            with context.Pool(min(workers, len(misses))) as pool:
                computed = pool.map(_run_config, miss_configs)
        for index, result in zip(misses, computed):
            results[index] = result
            if cache is not None:
                cache.put(keys[index], result)
    return results  # type: ignore[return-value]


def parallel_load_sweep(base: SimConfig,
                        arrival_rates: Sequence[float],
                        workers: int = 1,
                        cache: Optional[ResultCache] = None
                        ) -> list[SimResult]:
    """The :func:`~repro.sim.sweep.load_sweep` grid, fanned out."""
    configs = [dataclasses.replace(base, arrival_rate=rate)
               for rate in arrival_rates]
    return run_many(configs, workers=workers, cache=cache)


def _run_max_sustainable(task) -> SimResult:
    """Worker body for one full bisection (picklable by name).

    ``task`` is ``(base, rate_low, rate_high, iterations, cache_root)``;
    the cache is reopened by path because ResultCache holds no picklable
    state worth shipping — the directory *is* the cache.
    """
    from .sweep import find_max_sustainable
    base, rate_low, rate_high, iterations, cache_root = task
    cache = ResultCache(cache_root) if cache_root is not None else None
    return find_max_sustainable(base, rate_low=rate_low,
                                rate_high=rate_high,
                                iterations=iterations, cache=cache)


def find_max_sustainable_many(bases: Sequence[SimConfig],
                              rate_low: float = 0.05,
                              rate_high: float = 400.0,
                              iterations: int = 10,
                              workers: int = 1,
                              cache: Optional[ResultCache] = None
                              ) -> list[SimResult]:
    """§5.2 maximum-sustainable-load search over many base configs.

    The bisection itself is inherently sequential (each probe rate depends
    on the previous verdict), so parallelism comes from fanning out the
    *independent* searches — one per figure-grid cell — across workers.
    Results keep the order of ``bases``.
    """
    bases = list(bases)
    cache_root: Optional[Path] = cache.root if cache is not None else None
    tasks = [(base, rate_low, rate_high, iterations, cache_root)
             for base in bases]
    if workers <= 1 or len(tasks) == 1:
        return [_run_max_sustainable(task) for task in tasks]
    context = _pool_context()
    with context.Pool(min(workers, len(tasks))) as pool:
        return pool.map(_run_max_sustainable, tasks)

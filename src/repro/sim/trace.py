"""Trace-driven workloads: the §6.1.1 "variable loads" future work.

§5.1 notes the authors had no file-system traces and fell back to Poisson
arrivals; §6.1.1 plans to "study different resource allocation policies,
with the goal of understanding how to handle variable loads."  This module
supplies that capability: request traces as plain data, a synthesiser for
*bursty* (two-state Markov-modulated) arrivals with a controllable
burstiness at a fixed mean rate, and adapters so the §5 model can replay
them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..des import RandomStream

__all__ = [
    "TraceRecord",
    "synthesize_poisson_trace",
    "synthesize_bursty_trace",
    "trace_mean_rate",
]


@dataclass(frozen=True)
class TraceRecord:
    """One client request in a workload trace."""

    time_s: float
    is_read: bool

    def __post_init__(self):
        if self.time_s < 0:
            raise ValueError("trace times must be non-negative")


def synthesize_poisson_trace(rate: float, count: int, seed: int = 0,
                             read_fraction: float = 0.8
                             ) -> list[TraceRecord]:
    """The §5 workload as an explicit trace (for apples-to-apples runs)."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    if count < 1:
        raise ValueError("count must be >= 1")
    stream = RandomStream(seed)
    records = []
    clock = 0.0
    for _ in range(count):
        clock += stream.exponential(1.0 / rate)
        records.append(TraceRecord(
            time_s=clock,
            is_read=stream.uniform(0.0, 1.0) < read_fraction))
    return records


def synthesize_bursty_trace(mean_rate: float, count: int,
                            burstiness: float = 4.0,
                            busy_fraction: float = 0.25,
                            cycle_s: float = 2.0,
                            seed: int = 0,
                            read_fraction: float = 0.8
                            ) -> list[TraceRecord]:
    """A two-state (ON/OFF) arrival process with the given *mean* rate.

    During ON periods requests arrive at ``burstiness / busy_fraction``
    times the quiet rate, so the long-run average stays at ``mean_rate``
    while short-term load swings hard — the "variable loads" §6.1.1 worries
    about.  ``cycle_s`` sets the average ON+OFF period length.
    """
    if mean_rate <= 0 or count < 1:
        raise ValueError("mean_rate must be positive and count >= 1")
    if burstiness < 1.0:
        raise ValueError("burstiness must be >= 1 (1 = Poisson-like)")
    if not 0.0 < busy_fraction <= 1.0:
        raise ValueError("busy_fraction must be in (0, 1]")
    if cycle_s <= 0:
        raise ValueError("cycle_s must be positive")
    stream = RandomStream(seed)
    # Split the mass: ON periods carry `burstiness`x the mean rate; the
    # OFF rate absorbs the remainder (>= 0 requires burstiness <=
    # 1/busy_fraction, clamped below).
    burstiness = min(burstiness, 1.0 / busy_fraction)
    on_rate = mean_rate * burstiness
    off_weight = 1.0 - burstiness * busy_fraction
    off_rate = (mean_rate * off_weight / (1.0 - busy_fraction)
                if busy_fraction < 1.0 else on_rate)

    records = []
    clock = 0.0
    in_burst = False
    phase_end = 0.0
    while len(records) < count:
        if clock >= phase_end:
            in_burst = not in_burst
            mean_phase = (cycle_s * busy_fraction if in_burst
                          else cycle_s * (1.0 - busy_fraction))
            phase_end = clock + stream.exponential(mean_phase)
        rate = on_rate if in_burst else off_rate
        if rate <= 0:
            clock = phase_end
            continue
        step = stream.exponential(1.0 / rate)
        if clock + step > phase_end:
            clock = phase_end
            continue
        clock += step
        records.append(TraceRecord(
            time_s=clock,
            is_read=stream.uniform(0.0, 1.0) < read_fraction))
    return records


def trace_mean_rate(trace: Iterable[TraceRecord]) -> float:
    """Long-run arrival rate of a trace (requests/second)."""
    records = list(trace)
    if len(records) < 2:
        raise ValueError("need at least two records")
    span = records[-1].time_s - records[0].time_s
    if span <= 0:
        raise ValueError("trace has zero duration")
    return (len(records) - 1) / span

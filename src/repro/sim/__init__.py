"""The §5 simulation study: Swift on a gigabit token ring (Figures 3-6)."""

from .figures import (
    FIG3_BLOCK_SIZES,
    FIG3_DISK_COUNTS,
    FIG4_DISK_COUNTS,
    FIG56_DISK_COUNTS,
    FigurePoint,
    figure3_series,
    figure4_series,
    figure5_series,
    figure6_series,
)
from .cache import ResultCache, code_version, config_key
from .model import SimResult, SwiftSimModel
from .parallel import (
    find_max_sustainable_many,
    parallel_load_sweep,
    run_many,
)
from .sweep import find_max_sustainable, load_sweep, run_once
from .trace import (
    TraceRecord,
    synthesize_bursty_trace,
    synthesize_poisson_trace,
    trace_mean_rate,
)
from .workload import SimConfig

__all__ = [
    "SimConfig",
    "TraceRecord",
    "synthesize_poisson_trace",
    "synthesize_bursty_trace",
    "trace_mean_rate",
    "SwiftSimModel",
    "SimResult",
    "run_once",
    "load_sweep",
    "find_max_sustainable",
    "run_many",
    "parallel_load_sweep",
    "find_max_sustainable_many",
    "ResultCache",
    "config_key",
    "code_version",
    "FigurePoint",
    "figure3_series",
    "figure4_series",
    "figure5_series",
    "figure6_series",
    "FIG3_BLOCK_SIZES",
    "FIG3_DISK_COUNTS",
    "FIG4_DISK_COUNTS",
    "FIG56_DISK_COUNTS",
]

"""Analytic cross-checks for the §5 simulation model.

A simulator is only trustworthy if its light-load behaviour matches what
can be computed by hand.  This module provides closed-form estimates the
tests compare simulation output against:

* the expected positioned-access time of one block (the figure captions'
  arithmetic — e.g. "transferring 32 kilobytes required about 37
  milliseconds on the average");
* the zero-load completion time of a read request (disk chain + ring
  transfer + protocol processing);
* per-disk utilization under a given arrival rate (an open-network flow
  balance).
"""

from __future__ import annotations

from ..units import seconds_to_send, to_bits_per_s, us
from .model import CONTROL_PACKET_SIZE_BYTES
from .workload import SimConfig

__all__ = [
    "mean_block_service_s",
    "expected_max_positioning_s",
    "zero_load_read_response_s",
    "disk_utilization_estimate",
    "offered_load_fraction",
]


def mean_block_service_s(config: SimConfig) -> float:
    """Expected seek + rotation + transfer for one transfer unit."""
    return config.disk.mean_access_time(config.transfer_unit)


def _packet_cpu_s(config: SimConfig, size: int) -> float:
    """§5.1 protocol cost: 1500 instructions + 1 per byte."""
    return (1500.0 + size) / (config.host_mips * 1e6)


def expected_max_positioning_s(config: SimConfig, n: int) -> float:
    """E[max over n agents] of one positioning draw (seek + rotation).

    Seek ~ U(0, 2*avg_seek) and rotation ~ U(0, 2*avg_rotation) are
    independent (§5.1), so their sum has the classic trapezoidal CDF; the
    expected maximum of n draws is ∫ (1 - F(x)^n) dx, integrated
    numerically over the exact piecewise CDF.  This is what makes a
    32-agent request noticeably slower than the *mean* block time — the
    request waits for its unluckiest agent.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    a = 2.0 * config.disk.avg_seek_s
    b = 2.0 * config.disk.avg_rotation_s
    if a < b:
        a, b = b, a
    if a == 0.0:
        return 0.0

    def cdf(x: float) -> float:
        if x <= 0.0:
            return 0.0
        if b == 0.0:
            return min(1.0, x / a)
        if x <= b:
            return x * x / (2.0 * a * b)
        if x <= a:
            return (x - b / 2.0) / a
        if x <= a + b:
            return 1.0 - (a + b - x) ** 2 / (2.0 * a * b)
        return 1.0

    steps = 4000
    total = a + b
    dx = total / steps
    expectation = 0.0
    for index in range(steps):
        x = (index + 0.5) * dx
        expectation += (1.0 - cdf(x) ** n) * dx
    return expectation


def _ring_time_s(config: SimConfig, size: int) -> float:
    """Token wait plus serialisation (mirrors TokenRing.transmission_time
    with the default 20 microsecond rotation)."""
    return us(10.0) + seconds_to_send(size, config.ring_bits_per_second)


def zero_load_read_response_s(config: SimConfig) -> float:
    """Completion time of one read on an otherwise idle system.

    The busiest agent reads its blocks back to back (multiblock hold);
    transmissions overlap the disk except for the last block, which still
    has to cross the ring and the client CPU after it leaves the platter.
    """
    shares = config.blocks_per_agent(0)
    busiest = max(shares)
    active = sum(1 for share in shares if share)
    unit = config.transfer_unit
    request_path = (_packet_cpu_s(config, CONTROL_PACKET_SIZE_BYTES)
                    + _ring_time_s(config, CONTROL_PACKET_SIZE_BYTES)
                    + _packet_cpu_s(config, CONTROL_PACKET_SIZE_BYTES))
    # The request completes when its *slowest* agent chain finishes: the
    # chain mean is busiest x mean service, and the agent-to-agent spread
    # is dominated by one positioning draw's order statistics.
    mean_positioning = (config.disk.avg_seek_s + config.disk.avg_rotation_s)
    disk_chain = (busiest * mean_block_service_s(config)
                  + expected_max_positioning_s(config, active)
                  - mean_positioning)
    last_block_out = (_packet_cpu_s(config, unit)
                      + _ring_time_s(config, unit)
                      + _packet_cpu_s(config, unit))
    return request_path + disk_chain + last_block_out


def disk_utilization_estimate(config: SimConfig) -> float:
    """Flow balance: block arrivals per disk x mean service time.

    Valid below saturation; at or above 1.0 the configuration cannot keep
    up (the open queue grows without bound).
    """
    blocks_per_second = config.arrival_rate * config.total_blocks
    per_disk = blocks_per_second / config.num_disks
    return per_disk * mean_block_service_s(config)


def offered_load_fraction(config: SimConfig) -> float:
    """Offered ring load as a fraction of its capacity."""
    bytes_per_second = config.arrival_rate * config.request_size
    return to_bits_per_s(bytes_per_second) / config.ring_bits_per_second

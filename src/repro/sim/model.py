"""The §5 discrete-event model: Swift on a gigabit token ring.

§5.1, verbatim mechanics:

* **read** — "a small request packet is multicast to the storage agents.
  The client then waits for the data to be transmitted by the storage
  agents."  Each agent holds its disk for its share of the blocks
  (multiblock requests complete before the resource is relinquished); "once
  a block has been read from disk it is scheduled for transmission over the
  network."
* **write** — "transmits the data to each of the storage agents.  Once the
  blocks have been transmitted the client awaits an acknowledgement from
  the storage agents that the data have been written to disk."
* per-packet cost: "1,500 instructions plus one instruction per byte in
  the packet" on 100-MIPS hosts; transmitting takes protocol processing,
  token acquisition, and transmission time;
* no caching, no parity computation, no resource preallocation, no storage
  mediator — exactly the stated simplifications.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass

from ..des import CallbackProcess, Environment, OnlineStats, StreamFactory
from ..simdisk import Disk
from ..simnet import Host, TokenRing, mips_cost_model
from .workload import SimConfig

__all__ = ["SwiftSimModel", "SimResult"]

#: Wire size of a request / acknowledgement packet.
CONTROL_PACKET_SIZE_BYTES = 64

#: Pre-suffix-convention alias.
CONTROL_PACKET_SIZE = CONTROL_PACKET_SIZE_BYTES


@dataclass(frozen=True)
class SimResult:
    """What one simulation run produced."""

    config: SimConfig
    completed: int
    mean_completion_s: float
    stdev_completion_s: float
    max_completion_s: float
    duration_s: float
    mean_interarrival_s: float
    client_data_rate: float      # bytes/second observed by the clients
    mean_disk_utilization: float
    ring_utilization: float
    deadline_misses: int = 0
    deadline_total: int = 0
    p99_completion_s: float = 0.0

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of measured requests that blew their deadline."""
        if not self.deadline_total:
            return 0.0
        return self.deadline_misses / self.deadline_total

    @property
    def sustainable(self) -> bool:
        """The paper's criterion: completion time <= interarrival time."""
        return self.mean_completion_s <= self.mean_interarrival_s


class SwiftSimModel:
    """One simulation run of the token-ring Swift.

    ``storage_factory(env, index, streams)`` may supply any Disk-duck-typed
    storage device per agent — e.g. :class:`repro.simdisk.raid.RaidArray`
    for the §6 "collection of Raids" configuration.  The default is the
    configured plain disk.

    ``cohort_dispatch=False`` forces the engine's one-heap reference
    scheduler; results are bit-identical either way (the A/B contract
    ``benchmarks/bench_kernel_batched.py`` measures and pins).

    ``process_mode`` selects how the per-request hot loops execute:
    ``"callback"`` (the default) runs them as slotted
    :class:`~repro.des.callback.CallbackProcess` state machines with
    quiet releases, inline joins and — when no monitor forbids it —
    event-span coalescing of the write path's deterministic disk chain;
    ``"generator"`` is the yield-based reference.  Results are
    bit-identical between modes (the A/B contract
    ``benchmarks/bench_process_modes.py`` measures and pins), so the
    mode is an execution detail, deliberately *not* part of
    :class:`SimConfig` and invisible to the result cache.
    """

    def __init__(self, config: SimConfig, storage_factory=None,
                 trace=None, cohort_dispatch: bool = True,
                 process_mode: str = "callback"):
        if process_mode not in ("callback", "generator"):
            raise ValueError(
                f"process_mode must be 'callback' or 'generator', "
                f"got {process_mode!r}")
        self.process_mode = process_mode
        self.config = config
        self.env = Environment(tie_break_seed=config.tie_break_seed,
                               cohort_dispatch=cohort_dispatch)
        self.streams = StreamFactory(config.seed)
        cost = mips_cost_model(config.host_mips)
        self.ring = TokenRing(self.env, "ring",
                              bits_per_second=config.ring_bits_per_second)
        self.clients = [
            Host(self.env, f"client{i}", send_cost=cost, recv_cost=cost)
            for i in range(config.num_clients)
        ]
        self.trace = list(trace) if trace is not None else None
        if storage_factory is None:
            def storage_factory(env, index, streams):
                return Disk(env, config.disk,
                            stream=streams.stream(f"disk/{index}"))
        self.agents: list[tuple[Host, Disk]] = []
        for index in range(config.num_disks):
            host = Host(self.env, f"agent{index}",
                        send_cost=cost, recv_cost=cost)
            disk = storage_factory(self.env, index, self.streams)
            self.agents.append((host, disk))
        self._arrivals = self.streams.stream("arrivals")
        self._mix = self.streams.stream("read-write-mix")
        self._class_mix = self.streams.stream("deadline-class")
        self._completions = OnlineStats()
        self._completed = 0
        self._started = 0
        self._bytes_delivered = 0
        self._next_start_agent = 0
        self._window_start: float | None = None
        self._window_end = 0.0
        self._deadline_misses = 0
        self._deadline_total = 0
        self._completion_samples: list[float] = []

    # -- warm-start -------------------------------------------------------------

    def warm_reset(self, config: SimConfig) -> "SwiftSimModel":
        """Re-arm the built deployment for a fresh run under ``config``.

        Only valid when ``config`` shares this model's deployment digest
        (:func:`repro.sim.cache.deployment_key`): same disk fleet, hosts,
        ring and master seed, so that rebuilding from scratch would
        produce an identical object graph.  Engine clock and calendar,
        resource queues, utilization windows, random streams and all
        counters are rewound in place — every object identity survives —
        and ``run()`` then reproduces the cold-built result byte for
        byte (pinned by tests/sim/test_warm_start.py).  Trace replays
        are not supported (they are never cached or warm-started).

        Storage devices supplied by a ``storage_factory`` must implement
        the Disk duck-type's ``reset()``; the sweep entry points only
        enable warm-start for plain runs, matching the cache contract.
        """
        if self.trace is not None:
            raise RuntimeError("trace replays cannot be warm-started")
        self.config = config
        # A horizon-stopped run leaves suspended process generators
        # behind (waiting on calendar events or resource grants).  Their
        # eventual garbage collection throws GeneratorExit into them,
        # running `finally` clauses and with-block exits that release
        # resources and mark monitors idle — against *these* components,
        # at whatever moment the collector happens to fire.  Force that
        # finalization now, against the dead run's state, then wipe
        # everything the finalizers touched; otherwise the next run's
        # accounting depends on allocation history.  (Callers that hold
        # their own references to a dead run's processes defeat this —
        # the sweep paths hold none.)
        self.env.reset()
        gc.collect()
        self.env.reset()
        self.env.tie_break_seed = config.tie_break_seed
        self.streams.reset()
        self.ring.reset()
        for client in self.clients:
            client.reset()
        for host, disk in self.agents:
            host.reset()
            disk.reset()
        self._completions.reset()
        self._completed = 0
        self._started = 0
        self._bytes_delivered = 0
        self._next_start_agent = 0
        self._window_start = None
        self._window_end = 0.0
        self._deadline_misses = 0
        self._deadline_total = 0
        self._completion_samples.clear()
        return self

    # -- running ---------------------------------------------------------------

    def run(self) -> SimResult:
        """Generate, serve and measure the configured number of requests."""
        config = self.config
        done = self.env.event()
        self.env.process(self._generator(done))
        # Guard against saturated configurations that would never finish:
        # cap the horizon at several times the nominal span.
        nominal_span = config.num_requests / config.arrival_rate
        self.env.run(until=self._first_of(done, nominal_span * 8.0))
        duration = self.env.now
        completed = self._completions.count
        mean = self._completions.mean if completed else float("inf")
        stdev = self._completions.stdev if completed > 1 else 0.0
        maximum = self._completions.maximum if completed else float("inf")
        disk_utils = [disk.utilization() for _, disk in self.agents]
        return SimResult(
            config=config,
            completed=completed,
            mean_completion_s=mean,
            stdev_completion_s=stdev,
            max_completion_s=maximum,
            duration_s=duration,
            mean_interarrival_s=1.0 / config.arrival_rate,
            client_data_rate=self._measured_data_rate(),
            mean_disk_utilization=sum(disk_utils) / len(disk_utils),
            ring_utilization=self.ring.utilization(),
            deadline_misses=self._deadline_misses,
            deadline_total=self._deadline_total,
            p99_completion_s=self._percentile(0.99),
        )

    def _percentile(self, fraction: float) -> float:
        """Completion-time percentile over the measured samples."""
        if not self._completion_samples:
            return float("inf")
        ordered = sorted(self._completion_samples)
        index = min(len(ordered) - 1,
                    max(0, int(fraction * len(ordered)) - 1))
        return ordered[index]

    def _measured_data_rate(self) -> float:
        """Bytes/second over the measured window (warmup excluded)."""
        if self._window_start is None:
            return 0.0
        window = self._window_end - self._window_start
        if window <= 0:
            return 0.0
        return self._bytes_delivered / window

    def _first_of(self, event, horizon_s: float):
        guard = self.env.timeout(horizon_s)
        return self.env.any_of([event, guard])

    # -- workload ---------------------------------------------------------------

    def _generator(self, done):
        config = self.config
        target = config.num_requests + config.warmup_requests
        if self.trace is not None:
            # Trace replay (§6.1.1 variable loads): arrival times and the
            # read/write mix come from the records.
            for record in self.trace[:target]:
                delay = record.time_s - self.env.now
                if delay > 0:
                    yield self.env.timeout(delay)
                client = self.clients[self._started % len(self.clients)]
                self.env.process(
                    self._request(client, record.is_read, done))
                self._started += 1
            return
        while self._started < target:
            yield self.env.timeout(
                self._arrivals.exponential(1.0 / config.arrival_rate))
            client = self.clients[self._started % len(self.clients)]
            is_read = self._mix.uniform(0.0, 1.0) < config.read_fraction
            self.env.process(self._request(client, is_read, done))
            self._started += 1
        # 'done' fires from the completion side; keep the generator alive
        # so the run() horizon guard decides when to stop if saturated.

    def _request(self, client: Host, is_read: bool, done):
        config = self.config
        arrived = self.env.now
        is_realtime = (config.deadline_s is not None and
                       self._class_mix.uniform(0.0, 1.0)
                       < config.realtime_fraction)
        priority = self._disk_priority(arrived, is_realtime)
        start_agent = self._next_start_agent
        self._next_start_agent = (start_agent + 1) % config.num_disks
        shares = config.blocks_per_agent(start_agent)
        if self.process_mode == "callback":
            # Immediate start mirrors the generator path's `yield from`:
            # the op's first CPU request is created in this very
            # dispatch, so grant queueing is identical between modes.
            if is_read:
                yield _ReadOp(self.env, self, client, shares, priority)
            else:
                yield _WriteOp(self.env, self, client, shares, priority)
        elif is_read:
            yield from self._read(client, shares, priority)
        else:
            yield from self._write(client, shares, priority)
        self._completed += 1
        if self._completed > config.warmup_requests:
            if self._window_start is None:
                self._window_start = arrived
            self._window_end = self.env.now
            self._completions.add(self.env.now - arrived)
            self._completion_samples.append(self.env.now - arrived)
            self._bytes_delivered += config.request_size
            if is_realtime:
                self._deadline_total += 1
                if self.env.now - arrived > config.deadline_s:
                    self._deadline_misses += 1
        if (self._completions.count >= config.num_requests
                and not done.triggered):
            done.succeed()

    # -- read path ------------------------------------------------------------------

    def _disk_priority(self, arrived: float, is_realtime: bool) -> float:
        """Disk queue priority for a request that arrived at ``arrived``.

        FIFO keeps the §5 model (ties broken by queue order); EDF orders
        by absolute deadline — tight for the real-time class, loose for
        background traffic — the §6.1.2 real-time extension.
        """
        config = self.config
        if config.disk_scheduling != "edf" or config.deadline_s is None:
            return 0.0
        deadline = config.deadline_s
        if not is_realtime:
            deadline *= config.background_deadline_factor
        return arrived + deadline

    def _read(self, client: Host, shares: list[int], priority: float = 0.0):
        # Multicast the small request: one packet on the ring.
        yield from client.consume_cpu(
            client.send_cost.time(CONTROL_PACKET_SIZE))
        yield from self.ring.occupy(
            self.ring.transmission_time(CONTROL_PACKET_SIZE))
        servers = [
            self.env.process(self._agent_read(index, blocks, client,
                                              priority))
            for index, blocks in enumerate(shares) if blocks
        ]
        yield self.env.all_of(servers)

    def _agent_read(self, index: int, blocks: int, client: Host,
                    priority: float = 0.0):
        host, disk = self.agents[index]
        unit = self.config.transfer_unit
        yield from host.consume_cpu(
            host.recv_cost.time(CONTROL_PACKET_SIZE))
        transmissions = []
        with disk.resource.request(priority=priority) as grant:
            yield grant
            disk.monitor.busy()
            try:
                for _ in range(blocks):
                    yield self.env.timeout(disk.block_service_time(unit))
                    disk.blocks_served += 1
                    disk.bytes_served += unit
                    # "Once a block has been read from disk it is scheduled
                    # for transmission over the network."
                    transmissions.append(
                        self.env.process(self._send_block(host, client, unit)))
            finally:
                if disk.resource.queue_length == 0:
                    disk.monitor.idle()
        yield self.env.all_of(transmissions)

    def _send_block(self, host: Host, client: Host, size: int):
        yield from host.consume_cpu(host.send_cost.time(size))
        yield from self.ring.occupy(self.ring.transmission_time(size))
        yield from client.consume_cpu(client.recv_cost.time(size))

    # -- write path ------------------------------------------------------------------

    def _write(self, client: Host, shares: list[int], priority: float = 0.0):
        agents_done = []
        unit = self.config.transfer_unit
        # "A write request transmits the data to each of the storage
        # agents" — every block pays client CPU and ring time serially at
        # the client, arriving at its agent as it is sent.
        for index, blocks in enumerate(shares):
            if not blocks:
                continue
            for _ in range(blocks):
                yield from client.consume_cpu(client.send_cost.time(unit))
                yield from self.ring.occupy(self.ring.transmission_time(unit))
            agents_done.append(self.env.process(
                self._agent_write(index, blocks, client, priority)))
        # "Once the blocks have been transmitted the client awaits an
        # acknowledgement from the storage agents that the data have been
        # written to disk."
        yield self.env.all_of(agents_done)

    def _agent_write(self, index: int, blocks: int, client: Host,
                     priority: float = 0.0):
        host, disk = self.agents[index]
        unit = self.config.transfer_unit
        for _ in range(blocks):
            yield from host.consume_cpu(host.recv_cost.time(unit))
        with disk.resource.request(priority=priority) as grant:
            yield grant
            disk.monitor.busy()
            try:
                for _ in range(blocks):
                    yield self.env.timeout(disk.block_service_time(unit))
                    disk.blocks_served += 1
                    disk.bytes_served += unit
            finally:
                if disk.resource.queue_length == 0:
                    disk.monitor.idle()
        # The acknowledgement.
        yield from host.consume_cpu(host.send_cost.time(CONTROL_PACKET_SIZE))
        yield from self.ring.occupy(
            self.ring.transmission_time(CONTROL_PACKET_SIZE))
        yield from client.consume_cpu(
            client.recv_cost.time(CONTROL_PACKET_SIZE))


# -- callback execution mode --------------------------------------------------
#
# State-machine twins of the generator request path above, one class per
# generator method, mirrored step for step: every resource request is
# created at the same dispatch, every service time is drawn at the same
# point in the same stream order, every busy/idle transition lands on the
# same timestamp.  The deliberate divergences — quiet releases, inline
# join counters instead of AllOf events, and the coalesced write-path
# disk chain — are result-neutral and pinned bit-identical by
# tests/sim/test_process_modes.py and benchmarks/bench_process_modes.py.


class _ReadOp(CallbackProcess):
    """Callback twin of ``SwiftSimModel._read`` (started immediately)."""

    __slots__ = ("model", "client", "shares", "priority")

    def __init__(self, env, model, client, shares, priority):
        self.model = model
        self.client = client
        self.shares = shares
        self.priority = priority
        super().__init__(env, immediate=True)

    def _start(self, value):
        client = self.client
        self.hold(client.cpu,
                  client.send_cost.time(CONTROL_PACKET_SIZE),
                  self._multicast)

    def _multicast(self, value):
        ring = self.model.ring
        self.hold(ring.cable,
                  ring.transmission_time(CONTROL_PACKET_SIZE),
                  self._fan_out, monitor=ring.monitor)

    def _fan_out(self, value):
        env = self.env
        model = self.model
        for index, blocks in enumerate(self.shares):
            if blocks:
                self.adopt(_AgentRead(env, model, index, blocks,
                                      self.client, self.priority))
        self.join(self._served)

    def _served(self, value):
        self._finish()


class _AgentRead(CallbackProcess):
    """Callback twin of ``SwiftSimModel._agent_read``."""

    __slots__ = ("model", "index", "blocks", "client", "priority",
                 "_host", "_disk", "_grant", "_left", "_unit")

    def __init__(self, env, model, index, blocks, client, priority):
        self.model = model
        self.index = index
        self.blocks = blocks
        self.client = client
        self.priority = priority
        self._unit = model.config.transfer_unit
        super().__init__(env, immediate=True)

    def _start(self, value):
        host, disk = self.model.agents[self.index]
        self._host = host
        self._disk = disk
        self.hold(host.cpu,
                  host.recv_cost.time(CONTROL_PACKET_SIZE),
                  self._request_disk)

    def _request_disk(self, value):
        resource = self._disk.resource
        if resource.try_acquire():
            self._grant = None
            self._granted(None)
        else:
            self._grant = grant = resource.request(self.priority)
            self.wait(grant, self._granted)

    def _granted(self, value):
        disk = self._disk
        disk.monitor.busy()
        self._left = self.blocks
        # Reads never coalesce: each block completion spawns a network
        # transmission at its own intermediate timestamp.
        self.wait_timeout(
            disk.block_service_time(self._unit),
            self._block_done)

    def _block_done(self, value):
        disk = self._disk
        unit = self._unit
        disk.blocks_served += 1
        disk.bytes_served += unit
        # "Once a block has been read from disk it is scheduled for
        # transmission over the network."
        self.adopt(_SendBlock(self.env, self.model, self._host,
                              self.client, unit))
        self._left -= 1
        if self._left:
            self.wait_timeout(disk.block_service_time(unit),
                              self._block_done)
            return
        if disk.resource.queue_length == 0:
            disk.monitor.idle()
        if self._grant is None:
            disk.resource.release_slot()
        else:
            disk.resource.release_quiet(self._grant)
            self._grant = None
        self.join(self._transmitted)

    def _transmitted(self, value):
        self._finish()


class _SendBlock(CallbackProcess):
    """Callback twin of ``SwiftSimModel._send_block``."""

    __slots__ = ("model", "host", "client", "size")

    def __init__(self, env, model, host, client, size):
        self.model = model
        self.host = host
        self.client = client
        self.size = size
        super().__init__(env, immediate=True)

    def _start(self, value):
        host = self.host
        self.hold(host.cpu, host.send_cost.time(self.size), self._on_ring)

    def _on_ring(self, value):
        ring = self.model.ring
        self.hold(ring.cable, ring.transmission_time(self.size),
                  self._delivered, monitor=ring.monitor)

    def _delivered(self, value):
        client = self.client
        self.hold(client.cpu, client.recv_cost.time(self.size), self._done)

    def _done(self, value):
        self._finish()


class _WriteOp(CallbackProcess):
    """Callback twin of ``SwiftSimModel._write`` (started immediately)."""

    __slots__ = ("model", "client", "priority", "_pairs", "_pos",
                 "_blocks_left", "_unit")

    def __init__(self, env, model, client, shares, priority):
        self.model = model
        self.client = client
        self.priority = priority
        self._pairs = [(index, blocks)
                       for index, blocks in enumerate(shares) if blocks]
        self._pos = 0
        self._unit = model.config.transfer_unit
        super().__init__(env, immediate=True)

    def _start(self, value):
        self._next_agent(None)

    def _next_agent(self, value):
        if self._pos == len(self._pairs):
            # "Once the blocks have been transmitted the client awaits an
            # acknowledgement from the storage agents."
            self.join(self._acknowledged)
            return
        self._blocks_left = self._pairs[self._pos][1]
        self._send_block(None)

    def _send_block(self, value):
        client = self.client
        self.hold(client.cpu,
                  client.send_cost.time(self._unit),
                  self._block_on_ring)

    def _block_on_ring(self, value):
        ring = self.model.ring
        self.hold(ring.cable,
                  ring.transmission_time(self._unit),
                  self._block_sent, monitor=ring.monitor)

    def _block_sent(self, value):
        self._blocks_left -= 1
        if self._blocks_left:
            self._send_block(None)
            return
        index, blocks = self._pairs[self._pos]
        self.adopt(_AgentWrite(self.env, self.model, index, blocks,
                               self.client, self.priority))
        self._pos += 1
        self._next_agent(None)

    def _acknowledged(self, value):
        self._finish()


class _AgentWrite(CallbackProcess):
    """Callback twin of ``SwiftSimModel._agent_write``.

    The disk chain here is the model's span-coalescing site: B blocks
    hit the platter back to back under one spindle hold with no
    intervening choice, so when the engine permits
    (:attr:`~repro.des.engine.Environment.span_coalescing`) the B
    service times are pre-drawn in reference stream order — legal
    because this process holds the spindle, and per-disk streams are
    drawn only by the spindle holder — accumulated with the exact float
    additions the expanded chain would perform, and landed as one
    :meth:`~repro.des.engine.Environment.timeout_at` completion instead
    of B calendar entries.
    """

    __slots__ = ("model", "index", "blocks", "client", "priority",
                 "_host", "_disk", "_grant", "_left", "_unit")

    def __init__(self, env, model, index, blocks, client, priority):
        self.model = model
        self.index = index
        self.blocks = blocks
        self.client = client
        self.priority = priority
        self._unit = model.config.transfer_unit
        super().__init__(env, immediate=True)

    def _start(self, value):
        host, disk = self.model.agents[self.index]
        self._host = host
        self._disk = disk
        self._left = self.blocks
        self._recv_block(None)

    def _recv_block(self, value):
        host = self._host
        self.hold(host.cpu,
                  host.recv_cost.time(self._unit),
                  self._block_received)

    def _block_received(self, value):
        self._left -= 1
        if self._left:
            self._recv_block(None)
            return
        resource = self._disk.resource
        if resource.try_acquire():
            self._grant = None
            self._granted(None)
        else:
            self._grant = grant = resource.request(self.priority)
            self.wait(grant, self._granted)

    def _granted(self, value):
        env = self.env
        disk = self._disk
        unit = self._unit
        disk.monitor.busy()
        if env._span_fast:
            when = env.now
            for _ in range(self.blocks):
                when += disk.block_service_time(unit)
            self.wait(env.timeout_at(when), self._span_done)
            return
        self._left = self.blocks
        self.wait_timeout(disk.block_service_time(unit),
                          self._block_written)

    def _block_written(self, value):
        disk = self._disk
        unit = self._unit
        disk.blocks_served += 1
        disk.bytes_served += unit
        self._left -= 1
        if self._left:
            self.wait_timeout(disk.block_service_time(unit),
                              self._block_written)
            return
        self._release_disk()

    def _span_done(self, value):
        disk = self._disk
        disk.blocks_served += self.blocks
        disk.bytes_served += self.blocks * self._unit
        self._release_disk()

    def _release_disk(self):
        disk = self._disk
        if disk.resource.queue_length == 0:
            disk.monitor.idle()
        if self._grant is None:
            disk.resource.release_slot()
        else:
            disk.resource.release_quiet(self._grant)
            self._grant = None
        # The acknowledgement.
        host = self._host
        self.hold(host.cpu,
                  host.send_cost.time(CONTROL_PACKET_SIZE),
                  self._ack_on_ring)

    def _ack_on_ring(self, value):
        ring = self.model.ring
        self.hold(ring.cable,
                  ring.transmission_time(CONTROL_PACKET_SIZE),
                  self._ack_sent, monitor=ring.monitor)

    def _ack_sent(self, value):
        client = self.client
        self.hold(client.cpu,
                  client.recv_cost.time(CONTROL_PACKET_SIZE),
                  self._done)

    def _done(self, value):
        self._finish()

"""Series generators for Figures 3-6, with the captions' exact parameters.

* **Figure 3** — "Average time to complete a client request.  average seek
  time = 16 ms, average rotational delay = 8.3 ms, transfer rate = 2.5
  megabytes/second, client request = 1 megabyte, disk transfer unit =
  {4, 16, 32} kilobytes"; disks ∈ {4, 8, 16, 32}.
* **Figure 4** — same but "transfer rate = 1.5 megabytes/second, client
  request = 128 kilobytes, disk transfer unit = 4 kilobytes"; disks ∈
  {1, 2, 4, 8, 16, 32}.
* **Figure 5** — "Observed client data-rate at maximum sustainable load.
  client request = 128 kilobytes, disk transfer unit = 4 kilobytes", for
  six disk models.
* **Figure 6** — same with "client request = 1 megabyte, disk transfer
  unit = 32 kilobytes".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..simdisk import DISK_CATALOG, FIGURE_5_6_DISKS
from ..units import s_to_ms
from .model import SimResult
from .sweep import find_max_sustainable, load_sweep
from .workload import SimConfig

__all__ = [
    "FigurePoint",
    "figure3_series",
    "figure4_series",
    "figure5_series",
    "figure6_series",
    "FIG3_BLOCK_SIZES",
    "FIG3_DISK_COUNTS",
    "FIG4_DISK_COUNTS",
    "FIG56_DISK_COUNTS",
]

KB = 1 << 10
MB = 1 << 20

FIG3_BLOCK_SIZES = (4 * KB, 16 * KB, 32 * KB)
FIG3_DISK_COUNTS = (4, 8, 16, 32)
FIG4_DISK_COUNTS = (1, 2, 4, 8, 16, 32)
FIG56_DISK_COUNTS = (1, 2, 4, 8, 16, 32)
DEFAULT_RATES = (1.0, 2.5, 5.0, 7.5, 10.0, 15.0, 20.0, 25.0, 30.0)


@dataclass(frozen=True)
class FigurePoint:
    """One plotted point of a figure."""

    series: str
    x: float
    y: float
    result: SimResult


def _response_time_series(base: SimConfig, series_name: str,
                          rates: Sequence[float],
                          workers: int = 1,
                          cache=None) -> list[FigurePoint]:
    points = []
    for result in load_sweep(base, rates, workers=workers, cache=cache):
        points.append(FigurePoint(
            series=series_name,
            x=result.config.arrival_rate,
            y=s_to_ms(result.mean_completion_s),  # the figures plot ms
            result=result,
        ))
    return points


def figure3_series(rates: Sequence[float] = DEFAULT_RATES,
                   disk_counts: Sequence[int] = FIG3_DISK_COUNTS,
                   block_sizes: Sequence[int] = FIG3_BLOCK_SIZES,
                   num_requests: int = 400,
                   seed: int = 0,
                   workers: int = 1,
                   cache=None) -> list[FigurePoint]:
    """Mean time to complete a 1 MB request vs. load (M2372K disks).

    ``workers``/``cache`` fan the grid out and reuse stored runs — the
    points are bit-identical to the serial, uncached computation.
    """
    points = []
    for unit in block_sizes:
        for disks in disk_counts:
            base = SimConfig(
                num_disks=disks,
                disk=DISK_CATALOG["Fujitsu M2372K"],
                transfer_unit=unit,
                request_size=1 * MB,
                num_requests=num_requests,
                warmup_requests=num_requests // 10,
                seed=seed,
            )
            name = f"{unit // KB}KB blocks, {disks} disks"
            points.extend(_response_time_series(base, name, rates,
                                                workers=workers, cache=cache))
    return points


def figure4_series(rates: Sequence[float] = DEFAULT_RATES,
                   disk_counts: Sequence[int] = FIG4_DISK_COUNTS,
                   num_requests: int = 400,
                   seed: int = 0,
                   workers: int = 1,
                   cache=None) -> list[FigurePoint]:
    """Mean time to complete a 128 KB request vs. load (1.5 MB/s disks)."""
    points = []
    for disks in disk_counts:
        base = SimConfig(
            num_disks=disks,
            disk=DISK_CATALOG["Fujitsu M2372K (1.5MB/s)"],
            transfer_unit=4 * KB,
            request_size=128 * KB,
            num_requests=num_requests,
            warmup_requests=num_requests // 10,
            seed=seed,
        )
        name = f"{disks} disk" + ("s" if disks > 1 else "")
        points.extend(_response_time_series(base, name, rates,
                                            workers=workers, cache=cache))
    return points


def _sustainable_series(request_size: int, transfer_unit: int,
                        disk_counts: Sequence[int],
                        disk_names: Sequence[str],
                        num_requests: int,
                        iterations: int,
                        seed: int,
                        workers: int = 1,
                        cache=None) -> list[FigurePoint]:
    bases = []
    cells = []
    for disk_name in disk_names:
        for disks in disk_counts:
            bases.append(SimConfig(
                num_disks=disks,
                disk=DISK_CATALOG[disk_name],
                transfer_unit=transfer_unit,
                request_size=request_size,
                num_requests=num_requests,
                warmup_requests=num_requests // 10,
                seed=seed,
            ))
            cells.append((disk_name, disks))
    if workers > 1 or cache is not None:
        from .parallel import find_max_sustainable_many
        results = find_max_sustainable_many(bases, iterations=iterations,
                                            workers=workers, cache=cache)
    else:
        results = [find_max_sustainable(base, iterations=iterations)
                   for base in bases]
    return [
        FigurePoint(series=disk_name, x=disks,
                    y=result.client_data_rate, result=result)
        for (disk_name, disks), result in zip(cells, results)
    ]


def figure5_series(disk_counts: Sequence[int] = FIG56_DISK_COUNTS,
                   disk_names: Sequence[str] = tuple(FIGURE_5_6_DISKS),
                   num_requests: int = 250,
                   iterations: int = 8,
                   seed: int = 0,
                   workers: int = 1,
                   cache=None) -> list[FigurePoint]:
    """Max sustainable data-rate, 128 KB requests / 4 KB units."""
    return _sustainable_series(128 * KB, 4 * KB, disk_counts, disk_names,
                               num_requests, iterations, seed,
                               workers=workers, cache=cache)


def figure6_series(disk_counts: Sequence[int] = FIG56_DISK_COUNTS,
                   disk_names: Sequence[str] = tuple(FIGURE_5_6_DISKS),
                   num_requests: int = 250,
                   iterations: int = 8,
                   seed: int = 0,
                   workers: int = 1,
                   cache=None) -> list[FigurePoint]:
    """Max sustainable data-rate, 1 MB requests / 32 KB units."""
    return _sustainable_series(1 * MB, 32 * KB, disk_counts, disk_names,
                               num_requests, iterations, seed,
                               workers=workers, cache=cache)

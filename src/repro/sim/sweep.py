"""Parameter sweeps: load curves and the maximum sustainable data-rate.

Figures 3 and 4 plot mean time-to-complete against the request arrival
rate; Figures 5 and 6 plot, per disk count and disk model, "the data-rate
observed by the client when the average time to complete a request is the
same as the average time between requests" (§5.2) — found here by bisection
on the arrival rate.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from .model import SimResult, SwiftSimModel
from .workload import SimConfig

__all__ = ["run_once", "load_sweep", "find_max_sustainable"]


def run_once(config: SimConfig, storage_factory=None,
             trace=None) -> SimResult:
    """One simulation run (custom agent storage / trace replay optional)."""
    return SwiftSimModel(config, storage_factory=storage_factory,
                         trace=trace).run()


def load_sweep(base: SimConfig,
               arrival_rates: Sequence[float],
               storage_factory=None,
               workers: int = 1,
               cache=None,
               warm_start: bool = False) -> list[SimResult]:
    """Mean completion time across a grid of arrival rates.

    ``workers > 1`` fans the (independent, deterministic) runs out over a
    process pool; ``cache`` (a :class:`~repro.sim.cache.ResultCache`)
    short-circuits runs already on disk.  ``warm_start=True`` carries the
    built model from one grid point to the next whenever their deployment
    digests (:func:`~repro.sim.cache.deployment_key`) match, rewinding it
    in place instead of cold-building — worthwhile exactly when the grid
    varies only run-shaping fields, as a rate sweep does.  All three
    apply only to plain runs: a ``storage_factory`` is not part of the
    cache key and cannot be pickled reliably, so its presence forces the
    serial, uncached, cold-built path.  Warm start is serial by nature
    (the model is carried across runs), so it is ignored when the sweep
    is fanned out over workers.  Results are bit-identical across all
    paths.
    """
    if storage_factory is None and workers > 1:
        from .parallel import parallel_load_sweep
        return parallel_load_sweep(base, arrival_rates, workers=workers,
                                   cache=cache)
    if storage_factory is None and warm_start:
        return _warm_sweep(base, arrival_rates, cache)
    if storage_factory is None and cache is not None:
        from .parallel import parallel_load_sweep
        return parallel_load_sweep(base, arrival_rates, workers=workers,
                                   cache=cache)
    results = []
    for rate in arrival_rates:
        config = dataclasses.replace(base, arrival_rate=rate)
        results.append(run_once(config, storage_factory=storage_factory))
    return results


def _warm_sweep(base: SimConfig,
                arrival_rates: Sequence[float],
                cache=None) -> list[SimResult]:
    """Serial sweep that warm-starts adjacent grid points.

    The previous point's built model is reused whenever the next config
    carries the same deployment digest; cache hits skip the run entirely
    while the carried model stays warm for the next miss.
    """
    from .cache import config_key, deployment_key

    results = []
    model = None
    model_key = None
    for rate in arrival_rates:
        config = dataclasses.replace(base, arrival_rate=rate)
        if cache is not None:
            key = config_key(config)
            cached = cache.get(key)
            if cached is not None:
                results.append(cached)
                continue
        dep = deployment_key(config)
        if model is not None and dep == model_key:
            model.warm_reset(config)
        else:
            model = SwiftSimModel(config)
            model_key = dep
        result = model.run()
        if cache is not None:
            cache.put(key, result)
        results.append(result)
    return results


def find_max_sustainable(base: SimConfig,
                         rate_low: float = 0.05,
                         rate_high: float = 400.0,
                         iterations: int = 10,
                         storage_factory=None,
                         cache=None,
                         warm_start: bool = False) -> SimResult:
    """Bisect for the §5.2 maximum-sustainable-load point.

    Returns the result at the highest arrival rate found whose mean
    completion time does not exceed the mean interarrival time.  The
    search is sequential (each probe depends on the last verdict), but a
    ``cache`` makes repeated searches resolve instantly, and
    ``warm_start=True`` carries one built model across every probe (all
    probes share a deployment digest, since only the rate moves); to
    parallelise *across* base configs use
    :func:`~repro.sim.parallel.find_max_sustainable_many`.
    """
    if rate_low <= 0 or rate_high <= rate_low:
        raise ValueError("need 0 < rate_low < rate_high")
    if storage_factory is not None:
        cache = None  # the factory is invisible to the cache key
        warm_start = False  # custom storage may lack the reset duck-type
    probe_state: dict = {"model": None, "key": None}

    def compute(config: SimConfig) -> SimResult:
        if not warm_start:
            return run_once(config, storage_factory=storage_factory)
        from .cache import deployment_key
        dep = deployment_key(config)
        if probe_state["model"] is not None and probe_state["key"] == dep:
            probe_state["model"].warm_reset(config)
        else:
            probe_state["model"] = SwiftSimModel(config)
            probe_state["key"] = dep
        return probe_state["model"].run()

    def sustainable(rate: float) -> tuple[bool, SimResult]:
        config = dataclasses.replace(base, arrival_rate=rate)
        if cache is not None:
            from .cache import config_key
            key = config_key(config)
            result = cache.get(key)
            if result is None:
                result = compute(config)
                cache.put(key, result)
        else:
            result = compute(config)
        return result.sustainable, result

    ok_low, best = sustainable(rate_low)
    if not ok_low:
        # Even the lightest load is unsustainable; report it as the bound.
        return best
    # Exponential search for the first unsustainable rate, then bisect
    # inside that (tight) bracket — far better resolution than bisecting
    # the whole [rate_low, rate_high] span.
    low, high = rate_low, None
    rate = rate_low
    while rate * 2.0 <= rate_high:
        rate *= 2.0
        ok, result = sustainable(rate)
        if ok:
            low, best = rate, result
        else:
            high = rate
            break
    if high is None:
        ok, result = sustainable(rate_high)
        if ok:
            return result
        high = rate_high
    for _ in range(iterations):
        mid = (low + high) / 2.0
        ok, result = sustainable(mid)
        if ok:
            low, best = mid, result
        else:
            high = mid
    return best

"""``python -m repro`` — the command-line entry point.

Tables, figures, the demo, and ``python -m repro check`` (determinism &
protocol-invariant static analysis; see docs/CHECKING.md).
"""

import sys

from .cli import main

sys.exit(main())

"""repro — a reproduction of the Swift distributed-striping architecture.

Cabrera & Long, *Exploiting Multiple I/O Streams to Provide High
Data-Rates*, USENIX 1991.

Quick start::

    from repro import build_local_swift

    deployment = build_local_swift(num_agents=3)
    client = deployment.client()
    with client.open("movie", "w") as f:
        f.write(b"frame data ...")

Package map:

* :mod:`repro.des` — discrete-event simulation kernel
* :mod:`repro.simdisk` — disks, buffer cache, block file system
* :mod:`repro.simnet` — Ethernet / token-ring media, hosts, sockets
* :mod:`repro.core` — the Swift architecture itself
* :mod:`repro.baselines` — local SCSI and NFS comparators
* :mod:`repro.prototype` — the §3-§4 Ethernet testbed (Tables 1-4)
* :mod:`repro.sim` — the §5 token-ring simulation study (Figures 3-6)
"""

from .core import (
    AdmissionError,
    BufferedSwiftFile,
    AgentFailure,
    DistributionAgent,
    ObjectNotFound,
    SessionClosed,
    StorageAgent,
    StorageMediator,
    StripeLayout,
    SwiftClient,
    SwiftDeployment,
    SwiftError,
    SwiftFile,
    TransferError,
    TransferPlan,
    build_local_swift,
)

__version__ = "1.0.0"

__all__ = [
    "build_local_swift",
    "SwiftDeployment",
    "SwiftClient",
    "SwiftFile",
    "BufferedSwiftFile",
    "SwiftError",
    "StorageAgent",
    "StorageMediator",
    "StripeLayout",
    "DistributionAgent",
    "TransferPlan",
    "AdmissionError",
    "AgentFailure",
    "ObjectNotFound",
    "SessionClosed",
    "TransferError",
    "__version__",
]

"""10 Mb/s Ethernet segment — the prototype's interconnect.

Transmission time accounts for IP fragmentation of large UDP datagrams into
MTU-sized link frames, each paying Ethernet framing overhead (preamble,
header, CRC) and the inter-frame gap.  With 8 KB datagrams this yields a
raw-wire goodput of ~1.2 MB/s; the *measured* maximum capacity of
1.12 MB/s quoted in §4 emerges once host per-packet costs are added (see
``prototype/calibration.py``).

A :class:`BackgroundLoad` process reproduces the "shared departmental
Ethernet ... less than 5% of its capacity" conditions of the NFS and
second-segment measurements.
"""

from __future__ import annotations

import math

from ..des import Environment, RandomStream
from ..units import seconds_to_send, to_bytes_per_s
from .medium import Medium

__all__ = ["Ethernet", "BackgroundLoad", "ETHERNET_MTU_PAYLOAD"]

#: IP payload bytes per link frame (1500 MTU minus 20-byte IP header).
ETHERNET_MTU_PAYLOAD = 1480

#: Ethernet framing bytes per frame: preamble 8 + header 14 + CRC 4 + IP 20.
_FRAME_OVERHEAD_BYTES = 46

#: 9.6 microsecond inter-frame gap at 10 Mb/s.
_INTERFRAME_GAP_S = 9.6e-6


#: CSMA/CD slot time at 10 Mb/s (512 bit times).
SLOT_TIME_S = 51.2e-6


class Ethernet(Medium):
    """A single shared 10 Mb/s Ethernet segment.

    With ``contention=True`` the model charges CSMA/CD collision-resolution
    time: each frame sent while other stations are queued pays an extra
    backoff drawn per waiting station (an aggregate approximation of
    truncated binary exponential backoff).  Off by default — the base
    model is a collision-free ideal cable, which matches the paper's
    measured capacity well below saturation.
    """

    def __init__(self, env: Environment, name: str = "ethernet",
                 bits_per_second: float = 10_000_000.0,
                 loss_probability: float = 0.0,
                 loss_stream: RandomStream | None = None,
                 contention: bool = False,
                 contention_stream: RandomStream | None = None):
        super().__init__(env, name, loss_probability, loss_stream)
        if bits_per_second <= 0:
            raise ValueError("bits_per_second must be positive")
        if contention and contention_stream is None:
            raise ValueError("contention modelling needs a random stream")
        self.bits_per_second = bits_per_second
        self.contention = contention
        self.contention_stream = contention_stream

    def contention_penalty(self, sender_host: str) -> float:
        """Collision-resolution time for one contended transmission.

        Scales with the number of *other stations* currently fighting for
        the cable — a lone station streaming back-to-back never collides.
        """
        if not self.contention:
            return 0.0
        others = self.contending_stations(sender_host)
        if others <= 0:
            return 0.0
        slots = self.contention_stream.uniform(0.0, 4.0 * min(others, 5))
        return slots * SLOT_TIME_S

    def nominal_capacity(self) -> float:
        return to_bytes_per_s(self.bits_per_second)

    def transmission_time(self, size: int) -> float:
        """Cable time for one datagram, including fragmentation overhead."""
        if size <= 0:
            raise ValueError("size must be positive")
        fragments = max(1, math.ceil(size / ETHERNET_MTU_PAYLOAD))
        wire_bytes = size + fragments * _FRAME_OVERHEAD_BYTES
        return seconds_to_send(wire_bytes, self.bits_per_second) \
            + fragments * _INTERFRAME_GAP_S

    def goodput_upper_bound(self, datagram_size: int) -> float:
        """Best-case bytes/second for back-to-back datagrams of that size."""
        return datagram_size / self.transmission_time(datagram_size)


class BackgroundLoad:
    """Occupies a fraction of a segment — the 'lightly loaded shared' net.

    Holds the cable for ``fraction`` of each (jittered) period, modelling
    other departmental traffic competing with the measured transfer.
    """

    def __init__(self, env: Environment, medium: Medium, fraction: float,
                 stream: RandomStream, period_s: float = 0.005):
        if not 0.0 <= fraction < 1.0:
            raise ValueError(f"fraction must be in [0, 1), got {fraction}")
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.env = env
        self.medium = medium
        self.fraction = fraction
        self.stream = stream
        self.period_s = period_s
        self.process = env.process(self._run()) if fraction > 0 else None

    def _run(self):
        while True:
            gap = self.stream.exponential(self.period_s)
            yield self.env.timeout(gap)
            busy = gap * self.fraction / max(1e-12, 1.0 - self.fraction)
            yield from self.medium.occupy(busy)

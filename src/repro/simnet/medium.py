"""Abstract interconnection medium.

A medium is a broadcast domain: interfaces attach to it, and a datagram
transmitted on it is delivered to the interface of the destination host.
Concrete media (Ethernet, token ring) define the transmission-time
arithmetic; this base class owns the shared-cable queueing, loss injection,
utilization accounting and delivery.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..des import (
    CallbackProcess,
    Environment,
    RandomStream,
    Resource,
    UtilizationMonitor,
)
from .frames import Datagram

if TYPE_CHECKING:  # pragma: no cover
    from .host import Interface

__all__ = ["Medium", "MediumStats", "TransmitOp"]


class MediumStats:
    """Traffic counters for one medium."""

    def __init__(self):
        self.datagrams_carried = 0
        self.bytes_carried = 0
        self.datagrams_lost = 0
        self.undeliverable = 0


class Medium:
    """Base class for shared interconnects."""

    def __init__(self, env: Environment, name: str,
                 loss_probability: float = 0.0,
                 loss_stream: Optional[RandomStream] = None):
        if loss_probability and loss_stream is None:
            raise ValueError("loss injection needs a random stream")
        self.env = env
        self.name = name
        self.loss_probability = loss_probability
        self.loss_stream = loss_stream
        self.cable = Resource(env, capacity=1)
        self.monitor = UtilizationMonitor(env)
        self.stats = MediumStats()
        self._interfaces: dict[str, "Interface"] = {}
        #: Stations currently transmitting or waiting for the cable,
        #: used by contention models (a station never collides with
        #: itself).
        self._active_by_host: dict[str, int] = {}

    def reset(self) -> None:
        """Forget all traffic state (warm-start): cable queue, utilization
        window, counters and contention tracking.  Attached interfaces
        survive — attachment is deployment, not run state."""
        self.cable.reset()
        self.monitor.clear()
        self.stats = MediumStats()
        self._active_by_host.clear()

    # -- attachment -----------------------------------------------------------

    def attach(self, interface: "Interface") -> None:
        """Attach a host interface; one interface per host per medium."""
        host_name = interface.host.name
        if host_name in self._interfaces:
            raise ValueError(
                f"host {host_name!r} already attached to {self.name!r}")
        self._interfaces[host_name] = interface

    def reaches(self, host_name: str) -> bool:
        """True if a host of that name is attached."""
        return host_name in self._interfaces

    @property
    def attached_hosts(self) -> list[str]:
        """Names of attached hosts, sorted."""
        return sorted(self._interfaces)

    # -- timing ---------------------------------------------------------------

    def transmission_time(self, size: int) -> float:
        """Seconds of cable occupancy for a ``size``-byte datagram."""
        raise NotImplementedError

    def contention_penalty(self, sender_host: str) -> float:
        """Extra occupancy when stations contend (CSMA/CD); 0 by default."""
        return 0.0

    def contending_stations(self, sender_host: str) -> int:
        """Other stations currently fighting for the cable."""
        return sum(1 for host, active in self._active_by_host.items()
                   if active > 0 and host != sender_host)

    def nominal_capacity(self) -> float:
        """Raw signalling rate in bytes/second."""
        raise NotImplementedError

    # -- the data path ----------------------------------------------------------

    def transmit(self, datagram: Datagram):
        """Process method: occupy the cable, then deliver.

        Called by the sending interface's transmitter process.  Returns True
        if the datagram was delivered to the destination host's interface
        (loss injection and unknown destinations both yield False).
        """
        sender = datagram.src.host
        self._active_by_host[sender] = \
            self._active_by_host.get(sender, 0) + 1
        try:
            with self.cable.request() as grant:
                yield grant
                self.monitor.busy()
                try:
                    service = self.transmission_time(datagram.size)
                    service += self.contention_penalty(sender)
                    yield self.env.timeout(service)
                finally:
                    if self.cable.queue_length == 0:
                        self.monitor.idle()
        finally:
            self._active_by_host[sender] -= 1
        self.stats.datagrams_carried += 1
        self.stats.bytes_carried += datagram.size
        if self.loss_probability and self.loss_stream.bernoulli(self.loss_probability):
            self.stats.datagrams_lost += 1
            return False
        target = self._interfaces.get(datagram.dst.host)
        if target is None:
            self.stats.undeliverable += 1
            return False
        target.receive(datagram)
        return True

    def transmit_op(self, datagram: Datagram) -> "TransmitOp":
        """Callback-mode :meth:`transmit`: same cable occupancy and
        delivery, dispatched as a :class:`TransmitOp` state machine
        (value: True when delivered).  The interface transmit pump uses
        this; ``transmit`` remains the generator reference."""
        return TransmitOp(self, datagram)

    def occupy(self, duration: float):
        """Process method: hold the cable for ``duration`` (background load)."""
        with self.cable.request() as grant:
            yield grant
            self.monitor.busy()
            try:
                yield self.env.timeout(duration)
            finally:
                if self.cable.queue_length == 0:
                    self.monitor.idle()

    def utilization(self) -> float:
        """Busy fraction of the cable since construction."""
        return self.monitor.utilization()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} hosts={len(self._interfaces)}>"


class TransmitOp(CallbackProcess):
    """Callback twin of :meth:`Medium.transmit` (started immediately).

    Step for step the generator's sequence: contention registration at
    entry, cable occupancy with the service time computed *at grant*
    (transmission time plus the medium's contention penalty, which
    depends on who is fighting for the cable at that instant), idle
    check before release, deregistration, then stats, loss draw and
    delivery.  The cable hold needs grant-time state, so it is written
    as explicit states rather than :meth:`~repro.des.callback.CallbackProcess.hold`.
    """

    __slots__ = ("medium", "datagram", "_grant", "_holding")

    def __init__(self, medium: Medium, datagram: Datagram):
        self.medium = medium
        self.datagram = datagram
        self._grant = None
        self._holding = False
        super().__init__(medium.env, immediate=True)

    def _start(self, value):
        medium = self.medium
        sender = self.datagram.src.host
        active = medium._active_by_host
        active[sender] = active.get(sender, 0) + 1
        cable = medium.cable
        if cable.try_acquire():
            self._granted(None)
        else:
            self._grant = grant = cable.request()
            self.wait(grant, self._granted)

    def _granted(self, value):
        medium = self.medium
        self._holding = True
        medium.monitor.busy()
        datagram = self.datagram
        service = medium.transmission_time(datagram.size) \
            + medium.contention_penalty(datagram.src.host)
        self.wait_timeout(service, self._sent)

    def _sent(self, value):
        medium = self.medium
        self._release_cable()
        datagram = self.datagram
        medium._active_by_host[datagram.src.host] -= 1
        stats = medium.stats
        stats.datagrams_carried += 1
        stats.bytes_carried += datagram.size
        if medium.loss_probability \
                and medium.loss_stream.bernoulli(medium.loss_probability):
            stats.datagrams_lost += 1
            self._finish(False)
            return
        target = medium._interfaces.get(datagram.dst.host)
        if target is None:
            stats.undeliverable += 1
            self._finish(False)
            return
        target.receive(datagram)
        self._finish(True)

    def _release_cable(self):
        medium = self.medium
        cable = medium.cable
        if cable.queue_length == 0:
            medium.monitor.idle()
        self._holding = False
        if self._grant is None:
            cable.release_slot()
        else:
            cable.release_quiet(self._grant)
            self._grant = None

    def _on_failure(self, exc):
        # The generator's finally chain: idle check and release while
        # holding, withdraw while queued, deregister either way.
        medium = self.medium
        if self._holding:
            self._release_cable()
        elif self._grant is not None:
            medium.cable.release_quiet(self._grant)
            self._grant = None
        medium._active_by_host[self.datagram.src.host] -= 1
        raise exc

"""Host model: CPU, network interfaces, datagram sockets.

The host CPU is a single shared resource; every datagram sent or received
charges it according to a :class:`CostModel` (a fixed per-packet cost plus a
per-byte cost — §5.1 charges "1,500 instructions plus one instruction per
byte in the packet", and the prototype hosts use costs calibrated to the
measured SunOS data path).

The send path mirrors SunOS behaviour the paper fought with:

* each interface has a finite transmit queue; when it overflows the datagram
  is *silently dropped* ("the kernel would drop packets and claim that they
  had been sent");
* each socket has a finite receive buffer; overflow drops the datagram
  ("packet loss rates caused by lack of buffer space in the SunOS kernel").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..des import CallbackProcess, Environment, Resource, Store
from .frames import Address, Datagram, HEADER_SIZE
from .medium import Medium

__all__ = ["CostModel", "Host", "Interface", "DatagramSocket",
           "SocketSend", "mips_cost_model"]


@dataclass(frozen=True)
class CostModel:
    """CPU time to push one datagram through a protocol stack."""

    per_packet_s: float = 0.0
    per_byte_s: float = 0.0

    def __post_init__(self):
        if self.per_packet_s < 0 or self.per_byte_s < 0:
            raise ValueError("costs must be non-negative")

    def time(self, nbytes: int) -> float:
        """CPU seconds for a datagram of ``nbytes``."""
        return self.per_packet_s + self.per_byte_s * nbytes


def mips_cost_model(mips: float, instructions_per_packet: float = 1500.0,
                    instructions_per_byte: float = 1.0) -> CostModel:
    """The §5.1 cost model: 1500 instructions + 1 instruction/byte.

    ``mips`` is the host's processor speed in millions of instructions per
    second (the simulation study uses 100 MIPS hosts).
    """
    if mips <= 0:
        raise ValueError("mips must be positive")
    per_second = mips * 1e6
    return CostModel(
        per_packet_s=instructions_per_packet / per_second,
        per_byte_s=instructions_per_byte / per_second,
    )


class Host:
    """A machine with one CPU, some interfaces, and a socket table."""

    def __init__(self, env: Environment, name: str,
                 send_cost: CostModel = CostModel(),
                 recv_cost: CostModel = CostModel(),
                 noise_fraction: float = 0.0,
                 noise_stream=None):
        if noise_fraction and noise_stream is None:
            raise ValueError("CPU noise needs a random stream")
        if not 0.0 <= noise_fraction < 1.0:
            raise ValueError("noise_fraction must be in [0, 1)")
        self.env = env
        self.name = name
        self.send_cost = send_cost
        self.recv_cost = recv_cost
        self.noise_fraction = noise_fraction
        self.noise_stream = noise_stream
        # A per-run speed factor models run-to-run machine variation (cache
        # state, daemons): it gives repeated measurements the sample spread
        # real systems show.
        self._speed_factor = (
            1.0 + noise_stream.uniform(-noise_fraction, noise_fraction) / 2.0
            if noise_stream is not None and noise_fraction else 1.0)
        self.cpu = Resource(env, capacity=1)
        self.interfaces: list[Interface] = []
        self._sockets: dict[int, DatagramSocket] = {}
        self._next_ephemeral_port = 32768

    def reset(self) -> None:
        """Forget run state (warm-start): the CPU queue.

        Interfaces, sockets and the OS-noise speed factor are deployment
        state and survive.  Hosts with attached interfaces cannot be
        warm-started (their transmitter processes died with the old
        engine run); the §5 simulation model uses bare hosts.
        """
        if self.interfaces:
            raise RuntimeError(
                f"host {self.name!r} has attached interfaces and cannot "
                "be warm-started")
        self.cpu.reset()

    def jittered(self, cost_s: float) -> float:
        """Apply the host's OS-noise jitter to a CPU cost."""
        if not self.noise_fraction:
            return cost_s
        return cost_s * self._speed_factor * (1.0 + self.noise_stream.uniform(
            -self.noise_fraction, self.noise_fraction))

    # -- interfaces -------------------------------------------------------------

    def attach(self, medium: Medium, cpu_cost_scale: float = 1.0,
               tx_queue_packets: int = 16) -> "Interface":
        """Attach this host to a medium via a new interface."""
        interface = Interface(self, medium, cpu_cost_scale, tx_queue_packets)
        self.interfaces.append(interface)
        medium.attach(interface)
        return interface

    def route(self, dst_host: str) -> "Interface":
        """The interface whose medium reaches ``dst_host``."""
        for interface in self.interfaces:
            if interface.medium.reaches(dst_host):
                return interface
        raise LookupError(f"{self.name!r} has no route to {dst_host!r}")

    # -- sockets -----------------------------------------------------------------

    def bind(self, port: Optional[int] = None,
             buffer_packets: int = 8) -> "DatagramSocket":
        """Create a socket on ``port`` (or an ephemeral one)."""
        if port is None:
            port = self.allocate_port()
        if port in self._sockets:
            raise ValueError(f"port {port} already bound on {self.name!r}")
        socket = DatagramSocket(self, port, buffer_packets)
        self._sockets[port] = socket
        return socket

    def allocate_port(self) -> int:
        """A fresh ephemeral port number."""
        while self._next_ephemeral_port in self._sockets:
            self._next_ephemeral_port += 1
        port = self._next_ephemeral_port
        self._next_ephemeral_port += 1
        return port

    def close_socket(self, socket: "DatagramSocket") -> None:
        """Release a socket's port."""
        self._sockets.pop(socket.port, None)

    def socket_on(self, port: int) -> Optional["DatagramSocket"]:
        """The socket bound to ``port``, if any."""
        return self._sockets.get(port)

    # -- CPU accounting ------------------------------------------------------------

    def consume_cpu(self, seconds: float):
        """Process method: hold the CPU for ``seconds``."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        with self.cpu.request() as grant:
            yield grant
            yield self.env.timeout(seconds)

    def __repr__(self) -> str:
        return f"<Host {self.name} ifaces={len(self.interfaces)}>"


class Interface:
    """One NIC: a transmit queue drained onto the medium.

    ``cpu_cost_scale`` models slower attachment points — the prototype's
    second Ethernet interface sat on the S-bus, "known to achieve lower
    data-rates than the on-board interface" (§4.1).
    """

    def __init__(self, host: Host, medium: Medium,
                 cpu_cost_scale: float = 1.0, tx_queue_packets: int = 16):
        if cpu_cost_scale <= 0:
            raise ValueError("cpu_cost_scale must be positive")
        if tx_queue_packets < 1:
            raise ValueError("tx queue must hold at least one packet")
        self.host = host
        self.medium = medium
        self.cpu_cost_scale = cpu_cost_scale
        self.tx_queue_packets = tx_queue_packets
        self._tx_queue = Store(host.env)
        self.tx_dropped = 0
        self.rx_dropped_no_socket = 0
        _Transmitter(self)

    # -- transmit side -----------------------------------------------------------

    def enqueue(self, datagram: Datagram) -> bool:
        """Queue a datagram for the wire; silently drop when full.

        Returns False on drop — but note the *protocol* code never sees
        this (SunOS "claimed they had been sent"); only tests and stats do.
        """
        if self._tx_queue.size >= self.tx_queue_packets:
            self.tx_dropped += 1
            return False
        self._tx_queue.put(datagram)
        return True

    @property
    def tx_backlog(self) -> int:
        """Datagrams waiting in the transmit queue."""
        return self._tx_queue.size

    # -- receive side -------------------------------------------------------------

    def receive(self, datagram: Datagram) -> None:
        """Called by the medium on delivery; charges the receiving CPU."""
        _Receiver(self, datagram)


class _Transmitter(CallbackProcess):
    """The interface transmit pump, callback-mode.

    Deferred start (like the generator it replaces, spawned via
    ``env.process``), then an endless drain loop: dequeue, put the
    datagram on the medium (:class:`~repro.simnet.medium.TransmitOp`),
    repeat.
    """

    __slots__ = ("interface",)

    def __init__(self, interface: "Interface"):
        self.interface = interface
        super().__init__(interface.host.env)

    def _start(self, value):
        self._drain(None)

    def _drain(self, _value):
        self.wait(self.interface._tx_queue.get(), self._got)

    def _got(self, datagram):
        self.wait(self.interface.medium.transmit_op(datagram), self._drain)


class _Receiver(CallbackProcess):
    """Per-datagram receive path, callback-mode.

    Deferred start on purpose: the jittered CPU-cost draw happens when
    the process *starts*, exactly where the generator version drew it —
    immediate start would reorder draws against other same-host work.
    """

    __slots__ = ("interface", "datagram")

    def __init__(self, interface: "Interface", datagram: Datagram):
        self.interface = interface
        self.datagram = datagram
        super().__init__(interface.host.env)

    def _start(self, value):
        interface = self.interface
        host = interface.host
        cost = host.jittered(
            host.recv_cost.time(self.datagram.size) * interface.cpu_cost_scale)
        self.hold(host.cpu, cost, self._charged)

    def _charged(self, value):
        interface = self.interface
        datagram = self.datagram
        socket = interface.host.socket_on(datagram.dst.port)
        if socket is None:
            interface.rx_dropped_no_socket += 1
        else:
            socket.deliver(datagram)
        self._finish()


class DatagramSocket:
    """A UDP-like socket with a finite receive buffer."""

    def __init__(self, host: Host, port: int, buffer_packets: int):
        if buffer_packets < 1:
            raise ValueError("socket buffer must hold at least one packet")
        self.host = host
        self.port = port
        self.buffer_packets = buffer_packets
        self._rx = Store(host.env)
        self.rx_dropped = 0
        self.closed = False

    @property
    def address(self) -> Address:
        """This socket's (host, port) address."""
        return Address(self.host.name, self.port)

    # -- sending ------------------------------------------------------------------

    def send(self, dst: Address, message: Any = None,
             payload_size: int = 0):
        """Process method: pay send CPU, then queue on the routed interface.

        ``payload_size`` is the number of payload bytes on the wire (headers
        are added here).  Always "succeeds" from the caller's perspective,
        exactly like the prototype's kernel.
        """
        if self.closed:
            raise RuntimeError("socket is closed")
        if payload_size < 0:
            raise ValueError("payload_size must be non-negative")
        interface = self.host.route(dst.host)
        size = payload_size + HEADER_SIZE
        datagram = Datagram(src=self.address, dst=dst, size=size,
                            message=message)
        cost = self.host.jittered(
            self.host.send_cost.time(size) * interface.cpu_cost_scale)
        yield from self.host.consume_cpu(cost)
        interface.enqueue(datagram)

    def send_op(self, dst: Address, message: Any = None,
                payload_size: int = 0) -> "SocketSend":
        """Callback-mode :meth:`send`: same CPU charge and enqueue,
        dispatched as a :class:`SocketSend` state machine.  Generator
        callers ``yield`` the returned op where they had
        ``yield from socket.send(...)``."""
        return SocketSend(self, dst, message, payload_size)

    # -- receiving ------------------------------------------------------------------

    def deliver(self, datagram: Datagram) -> None:
        """Interface-side delivery into the receive buffer (drop if full)."""
        if self.closed or self._rx.size >= self.buffer_packets:
            self.rx_dropped += 1
            return
        self._rx.put(datagram)

    def recv(self, predicate=None):
        """Event: the next buffered datagram (optionally filtered)."""
        return self._rx.get(predicate)

    def purge(self, predicate) -> int:
        """Drop buffered datagrams matching ``predicate`` (stale packets)."""
        return self._rx.purge(predicate)

    def recv_wait(self, timeout_s: float, predicate=None):
        """Process method: matching datagram or None after ``timeout_s``.

        The paper's protocol resubmits requests when packets are lost; this
        is the timeout primitive it uses.
        """
        get = self.recv(predicate)
        expiry = self.host.env.timeout(timeout_s)
        yield self.host.env.any_of([get, expiry])
        if get.triggered:
            return get.value
        get.cancel()
        return None

    def close(self) -> None:
        """Release the port; further sends raise, arrivals are dropped."""
        self.closed = True
        self.host.close_socket(self)

    @property
    def pending(self) -> int:
        """Datagrams buffered and not yet received."""
        return self._rx.size


class SocketSend(CallbackProcess):
    """Callback twin of :meth:`DatagramSocket.send` (started immediately).

    Validation, routing and datagram construction happen at the call
    site — the same dispatch point where a ``yield from socket.send``
    would have run them — then the jittered CPU charge holds the host
    CPU and the datagram joins the interface queue.
    """

    __slots__ = ("socket", "interface", "datagram")

    def __init__(self, socket: DatagramSocket, dst: Address,
                 message: Any = None, payload_size: int = 0):
        if socket.closed:
            raise RuntimeError("socket is closed")
        if payload_size < 0:
            raise ValueError("payload_size must be non-negative")
        host = socket.host
        self.socket = socket
        self.interface = host.route(dst.host)
        size = payload_size + HEADER_SIZE
        self.datagram = Datagram(src=socket.address, dst=dst, size=size,
                                 message=message)
        super().__init__(host.env, immediate=True)

    def _start(self, value):
        host = self.socket.host
        cost = host.jittered(
            host.send_cost.time(self.datagram.size)
            * self.interface.cpu_cost_scale)
        self.hold(host.cpu, cost, self._charged)

    def _charged(self, value):
        self.interface.enqueue(self.datagram)
        self._finish()

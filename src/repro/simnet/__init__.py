"""Network substrate: datagrams, shared media, hosts, sockets, topologies."""

from .ethernet import ETHERNET_MTU_PAYLOAD, BackgroundLoad, Ethernet
from .frames import HEADER_SIZE, Address, Datagram
from .host import CostModel, DatagramSocket, Host, Interface, mips_cost_model
from .medium import Medium, MediumStats
from .token_ring import TokenRing
from .topology import Network

__all__ = [
    "Address",
    "Datagram",
    "HEADER_SIZE",
    "Medium",
    "MediumStats",
    "Ethernet",
    "BackgroundLoad",
    "ETHERNET_MTU_PAYLOAD",
    "TokenRing",
    "Host",
    "Interface",
    "DatagramSocket",
    "CostModel",
    "mips_cost_model",
    "Network",
]

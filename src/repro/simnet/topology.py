"""Network builder: hosts wired to segments, as in Figure 2 of the paper.

The prototype's lab is "a Sparcstation 2 client [on] a dedicated laboratory
Ethernet with Sparcstation SLC servers, plus a second, shared departmental
Ethernet reaching more SLC servers".  :class:`Network` builds and owns such
configurations for both the prototype emulation and the token-ring study.
"""

from __future__ import annotations

from typing import Optional

from ..des import Environment, StreamFactory
from .ethernet import BackgroundLoad, Ethernet
from .host import CostModel, Host
from .medium import Medium
from .token_ring import TokenRing

__all__ = ["Network"]


class Network:
    """A collection of named hosts and media in one environment."""

    def __init__(self, env: Environment, streams: Optional[StreamFactory] = None):
        self.env = env
        self.streams = streams or StreamFactory(0)
        self.hosts: dict[str, Host] = {}
        self.media: dict[str, Medium] = {}
        self._background: list[BackgroundLoad] = []

    # -- construction ------------------------------------------------------------

    def add_host(self, name: str, send_cost: CostModel = CostModel(),
                 recv_cost: CostModel = CostModel(),
                 noise_fraction: float = 0.0) -> Host:
        """Create a host (names are unique)."""
        if name in self.hosts:
            raise ValueError(f"duplicate host name {name!r}")
        noise_stream = (self.streams.stream(f"noise/{name}")
                        if noise_fraction else None)
        host = Host(self.env, name, send_cost, recv_cost,
                    noise_fraction=noise_fraction,
                    noise_stream=noise_stream)
        self.hosts[name] = host
        return host

    def add_ethernet(self, name: str, loss_probability: float = 0.0,
                     background_fraction: float = 0.0,
                     contention: bool = False) -> Ethernet:
        """Create a 10 Mb/s Ethernet segment, optionally pre-loaded."""
        if name in self.media:
            raise ValueError(f"duplicate medium name {name!r}")
        loss_stream = (self.streams.stream(f"loss/{name}")
                       if loss_probability else None)
        contention_stream = (self.streams.stream(f"contention/{name}")
                             if contention else None)
        medium = Ethernet(self.env, name, loss_probability=loss_probability,
                          loss_stream=loss_stream, contention=contention,
                          contention_stream=contention_stream)
        self.media[name] = medium
        if background_fraction:
            self._background.append(BackgroundLoad(
                self.env, medium, background_fraction,
                self.streams.stream(f"background/{name}")))
        return medium

    def add_token_ring(self, name: str,
                       bits_per_second: float = 1_000_000_000.0) -> TokenRing:
        """Create a token ring (default: the §5 gigabit ring)."""
        if name in self.media:
            raise ValueError(f"duplicate medium name {name!r}")
        medium = TokenRing(self.env, name, bits_per_second=bits_per_second)
        self.media[name] = medium
        return medium

    def connect(self, host_name: str, medium_name: str,
                cpu_cost_scale: float = 1.0,
                tx_queue_packets: int = 16):
        """Attach a host to a medium; returns the new interface."""
        host = self.hosts[host_name]
        medium = self.media[medium_name]
        return host.attach(medium, cpu_cost_scale=cpu_cost_scale,
                           tx_queue_packets=tx_queue_packets)

    # -- queries ------------------------------------------------------------------

    def host(self, name: str) -> Host:
        """Look up a host by name."""
        return self.hosts[name]

    def medium(self, name: str) -> Medium:
        """Look up a medium by name."""
        return self.media[name]

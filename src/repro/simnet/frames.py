"""Datagrams: the unit of transfer on the simulated networks.

A :class:`Datagram` is what the prototype's light-weight protocol calls a
"packet": a UDP datagram that the medium fragments into link frames
internally (the media models account for the per-fragment framing overhead
in their transmission-time arithmetic, so fragments are never materialised).

``message`` carries an arbitrary protocol object — for data packets it holds
real payload bytes, so data integrity is checked end to end.  ``size`` is
the on-the-wire size in bytes; header-only messages have a small size
regardless of the Python object inside.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Address", "Datagram", "HEADER_SIZE"]

#: UDP/IP header bytes carried by every datagram.
HEADER_SIZE = 28

_datagram_ids = itertools.count(1)


@dataclass(frozen=True)
class Address:
    """A (host, port) endpoint."""

    host: str
    port: int

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"


@dataclass
class Datagram:
    """One datagram in flight."""

    src: Address
    dst: Address
    size: int  # bytes on the wire, headers included
    message: Any = None
    uid: int = field(default_factory=lambda: next(_datagram_ids))

    def __post_init__(self):
        if self.size < HEADER_SIZE:
            raise ValueError(
                f"datagram size {self.size} smaller than header {HEADER_SIZE}"
            )

    def __repr__(self) -> str:
        kind = type(self.message).__name__ if self.message is not None else "raw"
        return (f"<Datagram #{self.uid} {self.src}->{self.dst} "
                f"{self.size}B {kind}>")

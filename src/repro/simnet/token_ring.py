"""The 1 gigabit/second token-ring LAN of the §5 simulation study.

§5.1: "Transmitting a message on the network requires protocol processing,
time to acquire the token, and transmission time.  ...  The time to transmit
the packet is based on the network transfer rate."  Protocol processing is
charged at the hosts (see :mod:`repro.simnet.host`); this medium charges the
token acquisition and the wire time.

Token acquisition is modelled as half a token-rotation on an idle ring (the
expected wait for the token to come around), on top of the usual queueing
for the shared ring.
"""

from __future__ import annotations

from ..des import Environment, RandomStream
from ..units import seconds_to_send, to_bytes_per_s
from .medium import Medium

__all__ = ["TokenRing"]


class TokenRing(Medium):
    """A shared token ring."""

    def __init__(self, env: Environment, name: str = "token-ring",
                 bits_per_second: float = 1_000_000_000.0,
                 token_rotation_s: float = 20e-6,
                 loss_probability: float = 0.0,
                 loss_stream: RandomStream | None = None):
        super().__init__(env, name, loss_probability, loss_stream)
        if bits_per_second <= 0:
            raise ValueError("bits_per_second must be positive")
        if token_rotation_s < 0:
            raise ValueError("token rotation time must be non-negative")
        self.bits_per_second = bits_per_second
        self.token_rotation_s = token_rotation_s

    def nominal_capacity(self) -> float:
        return to_bytes_per_s(self.bits_per_second)

    def transmission_time(self, size: int) -> float:
        if size <= 0:
            raise ValueError("size must be positive")
        token_wait = self.token_rotation_s / 2.0
        return token_wait + seconds_to_send(size, self.bits_per_second)

"""The simulation engine: a calendar of events and the loop that drains it.

Typical use::

    env = Environment()

    def worker(env):
        yield env.timeout(3.0)
        return "done"

    proc = env.process(worker(env))
    env.run()
    assert env.now == 3.0
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Optional

from .events import (
    _NORMAL_KEY_BASE,
    _POOL_LIMIT,
    _PRIORITY_SHIFT,
    AllOf,
    AnyOf,
    Event,
    Timeout,
)
from .process import Process, ProcessGenerator
from .resources import Release

__all__ = ["Environment", "EmptySchedule", "StopSimulation", "tie_break_key"]

_FNV_OFFSET = 2166136261
_FNV_PRIME = 16777619
_FNV_MASK = (1 << 64) - 1

class EmptySchedule(Exception):
    """Raised internally when the calendar runs dry."""


class StopSimulation(Exception):
    """Raised to terminate :meth:`Environment.run` early."""


def _fnv_fold(digest: int, text: str) -> int:
    """Fold ``text`` into a running 64-bit-masked FNV-1a digest."""
    for char in text:
        digest = ((digest ^ ord(char)) * _FNV_PRIME) & _FNV_MASK
    return digest


def _tie_prefix(seed: int) -> int:
    """The FNV-1a digest of ``f"{seed}:"`` — the per-seed constant part.

    Hashed once per :class:`Environment` (or per distinct seed through
    :func:`tie_break_key`) instead of re-mixing the seed's digits on
    every scheduled event.
    """
    return _fnv_fold(_FNV_OFFSET, f"{seed}:")


#: Memoised per-seed prefixes for the standalone :func:`tie_break_key`.
_PREFIX_CACHE: dict[int, int] = {}


def tie_break_key(seed: int, eid: int) -> tuple[int, int]:
    """Deterministic shuffle key for one calendar entry.

    An FNV-1a mix of ``(seed, eid)``: same-``(time, priority)`` entries
    sort by the hash instead of by insertion order, so each seed yields
    one fixed permutation of every tie.  The trailing ``eid`` keeps the
    key total even on hash collisions.

    The digest is bit-identical to hashing ``f"{seed}:{eid}"`` from
    scratch (the pre-optimization implementation): FNV-1a folds left to
    right, so the seed-and-colon prefix can be hashed once and only the
    ``eid`` digits folded per call.
    """
    prefix = _PREFIX_CACHE.get(seed)
    if prefix is None:
        prefix = _PREFIX_CACHE[seed] = _tie_prefix(seed)
    return (_fnv_fold(prefix, str(eid)), eid)


class Environment:
    """Execution environment for a single simulation run.

    Time is a float in *seconds* throughout this project (disk and network
    models convert from ms/µs at their boundaries).

    Calendar entries sort by ``(time, priority, eid)`` — equal-time,
    equal-priority events run in the order they were scheduled.  Passing
    ``tie_break_seed`` replaces the ``eid`` component with a seeded hash
    of it, deterministically shuffling every same-``(time, priority)``
    tie: the schedule-perturbation harness (:mod:`repro.check.perturb`)
    runs the same scenario under several seeds and asserts the metrics do
    not move, which proves no result leans on tie-break order.

    **Cohort dispatch.**  Most events in a hot run are scheduled *at the
    current timestamp* (resource grants, releases, ``succeed()`` fan-out):
    they join the same-time cohort the engine is already draining.  With
    ``cohort_dispatch=True`` (the default) and no tie shuffle or schedule
    monitors, those events skip the heap entirely — no key packing, no
    entry tuple, no sift — and land on an append-ordered ready deque.
    The drain order is provably the heap order: every ready entry carries
    a larger event id than every same-time heap entry (heap entries at
    the current time were necessarily scheduled earlier, or are urgent
    and outrank normal events anyway), so "heap first while its top is at
    ``now``, then the deque in append order" reproduces ``(time,
    priority, eid)`` exactly.  ``cohort_dispatch=False`` forces every
    event through the one-heap reference path — the A/B side of
    ``benchmarks/bench_kernel_batched.py``'s bit-identity check — and
    attaching a schedule monitor or a tie-break seed disables the cohort
    fast path implicitly, exactly as pooling is disabled, so detectors
    always observe the fully ordered, individually dispatched engine.
    """

    #: Events scheduled with urgent priority run before normal events that
    #: share the same timestamp (used for interrupts).
    PRIORITY_URGENT = 0
    PRIORITY_NORMAL = 1

    def __init__(self, initial_time: float = 0.0,
                 tie_break_seed: Optional[int] = None,
                 cohort_dispatch: bool = True):
        self._now = float(initial_time)
        self._queue: list = []
        # Same-timestamp cohort: events scheduled at the current time by
        # a fast path wait here in append (= eid) order instead of in the
        # heap.  Only ever non-empty while _schedule_fast holds; a
        # monitor attaching mid-run spills it back into the heap (see
        # _refresh_fast_flags).
        self._ready: deque = deque()
        self._cohort = bool(cohort_dispatch)
        self._eid = 0
        self._active_process: Optional[Process] = None
        # Free lists of processed Timeout / Release / Request objects
        # (see timeout(), Resource.release() and Resource.request()).
        self._timeout_pool: list = []
        self._release_pool: list = []
        self._request_pool: list = []
        # Monitoring hooks (repro.check.sanitize and repro.check.hb attach
        # here).  All lists are empty in normal runs so the hot loop pays
        # only a truthiness test per event.
        self._step_monitors: list = []
        self._resource_monitors: list = []
        self._schedule_monitors: list = []
        self._access_monitors: list = []
        self._transfer_monitors: list = []
        self._alias_monitors: list = []
        # The setter below also caches the seed-dependent half of
        # tie_break_key so schedule() folds only the eid digits per event
        # (None = ties sort by raw eid, the default contract), and
        # refreshes the two derived fast-path flags:
        #   _schedule_fast — triggering code may push a
        #       (now+delay, _NORMAL_KEY_BASE+eid, event) entry directly,
        #       bypassing schedule(): no shuffle, no schedule monitors.
        #   _unmonitored — no step/schedule/resource/access monitors at
        #       all, so event pooling and the inlined monitor-free
        #       resource paths are allowed.
        # Both are recomputed on every monitor attach/detach, turning
        # several per-event list-truthiness tests into one slot read.
        self.tie_break_seed = tie_break_seed

    # -- clock ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def tie_break_seed(self) -> Optional[int]:
        """Seed of the deterministic tie shuffle (None = insertion order)."""
        return self._tie_break_seed

    @tie_break_seed.setter
    def tie_break_seed(self, seed: Optional[int]) -> None:
        self._tie_break_seed = seed
        self._tie_seed_prefix = None if seed is None else _tie_prefix(seed)
        self._refresh_fast_flags()

    def _refresh_fast_flags(self) -> None:
        """Recompute the cached hot-path gates (see __init__)."""
        self._schedule_fast = (self._cohort
                               and self._tie_seed_prefix is None
                               and not self._schedule_monitors)
        self._unmonitored = not (self._step_monitors
                                 or self._schedule_monitors
                                 or self._resource_monitors
                                 or self._access_monitors)
        # Event-span coalescing (callback processes replacing a chain of
        # k deterministic timeouts with one computed completion) demands
        # the strictest gate of all: any observer — including the
        # transfer ledger and the aliasing sanitizer, which deliberately
        # leave _unmonitored alone — must see the chain fully expanded,
        # event by event.
        self._span_fast = (self._schedule_fast
                           and self._unmonitored
                           and not self._transfer_monitors
                           and not self._alias_monitors)
        if not self._schedule_fast and self._ready:
            # A monitor (or shuffle seed) arrived while a cohort was
            # pending: spill it into the heap so the one-queue reference
            # path sees every event.  Fresh ids keep append order and
            # stay above every same-time key already in the heap.
            ready = self._ready
            queue = self._queue
            now = self._now
            while ready:
                eid = self._eid = self._eid + 1
                heappush(queue, (now, _NORMAL_KEY_BASE + eid,
                                 ready.popleft()))

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped (None between steps)."""
        return self._active_process

    def reset(self, initial_time: float = 0.0) -> None:
        """Rewind the engine to its freshly constructed state (warm-start).

        Clears the calendar, the ready cohort, the clock and the event-id
        counter so a re-seeded scenario replays exactly as on a brand-new
        Environment.  Three things deliberately survive: monitor hooks
        and the tie-break seed (attachment state the caller owns), and
        the event free lists (pooling is result-neutral — bit-identity
        with pooling on/off is pinned by the PR 4 tests — so retained
        pool entries only save allocations).  Processes of the dead run
        that never finished are orphaned, not resumed: their events are
        gone from the calendar.
        """
        self._now = float(initial_time)
        self._queue.clear()
        self._ready.clear()
        self._eid = 0
        self._active_process = None

    # -- monitoring hooks ---------------------------------------------------

    def add_step_monitor(self, callback) -> None:
        """Call ``callback(when, event)`` as each event is popped.

        The callback runs *before* the clock advances and before the
        event's callbacks, so a monitor sees (and may veto, by raising)
        any non-monotonic timestamp the engine itself would trip over.
        """
        self._step_monitors.append(callback)
        self._refresh_fast_flags()

    def remove_step_monitor(self, callback) -> None:
        """Detach a step monitor (no-op if absent)."""
        try:
            self._step_monitors.remove(callback)
        except ValueError:
            pass
        self._refresh_fast_flags()

    def add_resource_monitor(self, callback) -> None:
        """Call ``callback(action, resource, request)`` on every grant or
        release of any :class:`~repro.des.resources.Resource` in this
        environment (``action`` is ``"acquire"`` or ``"release"``)."""
        self._resource_monitors.append(callback)
        self._refresh_fast_flags()

    def remove_resource_monitor(self, callback) -> None:
        """Detach a resource monitor (no-op if absent)."""
        try:
            self._resource_monitors.remove(callback)
        except ValueError:
            pass
        self._refresh_fast_flags()

    def _notify_resource(self, action: str, resource, request) -> None:
        for callback in self._resource_monitors:
            callback(action, resource, request)

    def add_schedule_monitor(self, callback) -> None:
        """Call ``callback(event, active_process)`` whenever an event is
        placed on the calendar.

        ``active_process`` is the process whose segment scheduled the
        event (None for callback-phase or setup-time scheduling).  The
        happens-before tracker uses this to stamp each event with the
        logical clock of the segment that caused it.
        """
        self._schedule_monitors.append(callback)
        self._refresh_fast_flags()

    def remove_schedule_monitor(self, callback) -> None:
        """Detach a schedule monitor (no-op if absent)."""
        try:
            self._schedule_monitors.remove(callback)
        except ValueError:
            pass
        self._refresh_fast_flags()

    def add_access_monitor(self, callback) -> None:
        """Call ``callback(obj, label, is_write)`` on every instrumented
        shared-state access (:class:`~repro.des.resources.Resource` queue
        mutations, :class:`~repro.des.resources.Store` puts/gets/purges).
        """
        self._access_monitors.append(callback)
        self._refresh_fast_flags()

    def remove_access_monitor(self, callback) -> None:
        """Detach an access monitor (no-op if absent)."""
        try:
            self._access_monitors.remove(callback)
        except ValueError:
            pass
        self._refresh_fast_flags()

    def _notify_access(self, obj, label: str, is_write: bool) -> None:
        for callback in self._access_monitors:
            callback(obj, label, is_write)

    def add_transfer_monitor(self, callback) -> None:
        """Call ``callback(kind, **info)`` on every data-path accounting
        event an instrumented component emits (striped write/read begin
        and end, per-agent regions, wire payloads, parity reconstruction).
        The conservation ledger (:mod:`repro.check.conserve`) attaches
        here; emitters guard on ``env._transfer_monitors`` so the data
        path pays one falsy test when no ledger is installed.  Attaching
        disables event-span coalescing (``_span_fast``) so the ledger
        sees every per-block event, but leaves pooling and the inlined
        resource paths on.
        """
        self._transfer_monitors.append(callback)
        self._refresh_fast_flags()

    def remove_transfer_monitor(self, callback) -> None:
        """Detach a transfer monitor (no-op if absent)."""
        try:
            self._transfer_monitors.remove(callback)
        except ValueError:
            pass
        self._refresh_fast_flags()

    def _notify_transfer(self, kind: str, **info) -> None:
        for callback in self._transfer_monitors:
            callback(kind, **info)

    def add_alias_monitor(self, callback) -> None:
        """Call ``callback(kind, buffer)`` on every buffer-lifecycle event
        an instrumented component emits (``"buffer-mutate"`` when a
        shared write buffer grows in place, ``"buffer-retire"`` when it
        is swapped out at flush).  The aliasing sanitizer
        (:mod:`repro.check.sanitize`) attaches here; like the transfer
        hook this deliberately does **not** flip ``_unmonitored``, so
        event pooling and the inlined fast paths stay active and the
        sanitizer observes exactly the production engine.  It does
        disable event-span coalescing (``_span_fast``): coalesced chains
        skip per-block events the sanitizer may want to order against.
        """
        self._alias_monitors.append(callback)
        self._refresh_fast_flags()

    def remove_alias_monitor(self, callback) -> None:
        """Detach an alias monitor (no-op if absent)."""
        try:
            self._alias_monitors.remove(callback)
        except ValueError:
            pass
        self._refresh_fast_flags()

    def _notify_alias(self, kind: str, buffer) -> None:
        for callback in self._alias_monitors:
            callback(kind, buffer)

    # -- event factories --------------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now.

        Processed Timeouts are recycled through a small free list: once a
        Timeout has fired and its callbacks have run, a later ``timeout()``
        call may return the same object re-armed.  Holding a reference to
        a fired Timeout and inspecting it after the simulation has moved
        on is therefore unsupported (see docs/PERFORMANCE.md).  Recycling
        is suspended while step or schedule monitors are attached, since
        detectors key state by event identity.
        """
        pool = self._timeout_pool
        if pool and self._unmonitored:
            if delay < 0:
                raise ValueError(f"negative delay {delay}")
            # Pooled instances arrive with an empty callbacks list (see
            # the run-loop recycler), so re-arming writes four slots and
            # allocates nothing.
            # A processed successful Timeout already has _ok True and
            # _defused False; only delay and value change between lives.
            timeout = pool.pop()
            timeout.delay = delay
            timeout._value = value
            # No monitors to notify (checked above); push directly.
            if self._schedule_fast:
                now = self._now
                when = now + delay
                eid = self._eid = self._eid + 1
                if when == now:
                    # Same-timestamp cohort: join the ready deque.
                    self._ready.append(timeout)
                else:
                    heappush(self._queue,
                             (when, _NORMAL_KEY_BASE + eid, timeout))
            else:
                self.schedule(timeout, delay=delay)
            return timeout
        return Timeout(self, delay, value)

    @property
    def span_coalescing(self) -> bool:
        """True when event-span coalescing is currently permitted.

        Callback processes about to emit a deterministic chain of k
        timeouts consult this: when True they may pre-draw the k service
        times in reference order and schedule one completion via
        :meth:`timeout_at`; when False (any monitor attached, tie-break
        shuffling, or ``cohort_dispatch=False``) they must expand the
        chain event for event so every observer sees the reference
        sequence.
        """
        return self._span_fast

    def timeout_at(self, when: float, value: Any = None) -> Timeout:
        """A Timeout at the *absolute* calendar time ``when``.

        The landing point for event-span coalescing: a chain of k
        timeouts reaches ``((now + s1) + s2) ... + sk`` under float
        accumulation, and scheduling ``timeout(t_final - now)`` would
        round differently (``now + (t_final - now) != t_final`` in
        general).  Callers accumulate ``when`` with the exact reference
        additions and this places the event at that exact float, keeping
        the coalesced completion bit-identical to the expanded chain's
        last event.  Pooling and recycling follow :meth:`timeout`.
        """
        now = self._now
        if when < now:
            raise ValueError(f"timeout_at({when}) is in the past (now={now})")
        pool = self._timeout_pool
        if pool and self._unmonitored:
            timeout = pool.pop()
            timeout.delay = when - now
            timeout._value = value
            if self._schedule_fast:
                eid = self._eid = self._eid + 1
                if when == now:
                    self._ready.append(timeout)
                else:
                    heappush(self._queue,
                             (when, _NORMAL_KEY_BASE + eid, timeout))
            else:
                self._schedule_at(timeout, when)
            return timeout
        timeout = Timeout.__new__(Timeout)
        timeout.env = self
        timeout.callbacks = []
        timeout._defused = False
        timeout._stale = None
        timeout.delay = when - now
        timeout._ok = True
        timeout._value = value
        self._schedule_at(timeout, when)
        return timeout

    def process(self, generator: ProcessGenerator) -> Process:
        """Register ``generator`` as a new process starting now."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """Event that fires when every event in ``events`` has succeeded."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event that fires when any event in ``events`` has succeeded."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def schedule(
        self,
        event: Event,
        delay: float = 0.0,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Place a triggered event on the calendar ``delay`` seconds ahead.

        Calendar entries are ``(time, key, event)``: ``key`` packs the
        priority above the event id (or above the seeded FNV digest and
        id when tie-break shuffling is on), so entries sort by
        ``(time, priority, tie)`` with a single integer comparison.
        """
        eid = self._eid = self._eid + 1
        if self._schedule_monitors:
            for monitor in self._schedule_monitors:
                monitor(event, self._active_process)
        prefix = self._tie_seed_prefix
        if prefix is None:
            when = self._now + delay
            if (when == self._now and priority == 1
                    and self._schedule_fast):
                # Same-timestamp, normal-priority, no monitors: the event
                # joins the cohort currently being drained.
                self._ready.append(event)
                return
            key = (priority << _PRIORITY_SHIFT) + eid
        else:
            when = self._now + delay
            key = (priority, _fnv_fold(prefix, str(eid)), eid)
        heappush(self._queue, (when, key, event))

    def _schedule_at(self, event: Event, when: float,
                     priority: int = PRIORITY_NORMAL) -> None:
        """:meth:`schedule` at an absolute time (no ``now + delay`` round).

        Only :meth:`timeout_at` routes here; the relative-delay
        :meth:`schedule` stays the single hot entry point.
        """
        eid = self._eid = self._eid + 1
        if self._schedule_monitors:
            for monitor in self._schedule_monitors:
                monitor(event, self._active_process)
        prefix = self._tie_seed_prefix
        if prefix is None:
            if (when == self._now and priority == 1
                    and self._schedule_fast):
                self._ready.append(event)
                return
            key = (priority << _PRIORITY_SHIFT) + eid
        else:
            key = (priority, _fnv_fold(prefix, str(eid)), eid)
        heappush(self._queue, (when, key, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._ready:
            # A pending cohort runs at the current time unless the heap
            # holds something even earlier (a past-time artifact).
            if self._queue and self._queue[0][0] < self._now:
                return self._queue[0][0]
            return self._now
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event from the calendar."""
        queue = self._queue
        if self._ready and not (queue and queue[0][0] <= self._now):
            event = self._ready.popleft()
            when = self._now
        else:
            try:
                when, _, event = heappop(queue)
            except IndexError:
                raise EmptySchedule() from None
        if self._step_monitors:
            for monitor in self._step_monitors:
                monitor(when, event)
        if when < self._now:  # pragma: no cover - heap guarantees ordering
            raise RuntimeError("event scheduled in the past")
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise RuntimeError(f"unhandled failed event: {event!r}")
        self._maybe_recycle(event)

    def _maybe_recycle(self, event: Event) -> None:
        """Return a processed Timeout or Release to its free list.

        Only exact Timeout/Release instances are pooled (subclasses may
        carry extra state), the pools are bounded, and recycling is
        disabled entirely while step or schedule monitors are attached —
        the happens-before detector and the sanitizer key per-event
        state by object identity, which reuse would alias.
        """
        if not self._unmonitored:
            return
        cls = type(event)
        if cls is Timeout:
            pool = self._timeout_pool
        elif cls is Release:
            pool = self._release_pool
        else:
            return
        if len(pool) < _POOL_LIMIT:
            event.callbacks = []  # pool invariant: empty list, not None
            pool.append(event)

    # -- run loop -----------------------------------------------------------

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` runs until the calendar is empty.  A number runs until
            simulated time reaches it.  An :class:`Event` runs until that
            event is processed and returns its value.
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is not None:
                stop_event.callbacks.append(self._stop_callback)
            elif stop_event.triggered:
                return stop_event.value
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until ({stop_time}) must not be in the past "
                    f"(now={self._now})"
                )

        # The drain loop is step() inlined: cohort dispatch first (pop
        # the ready deque while the heap has nothing due), then one
        # heappop to refill or advance, with the queue, the deque, the
        # monitor lists and the event pools bound to locals.  Monitors
        # mutate those lists in place, so the aliases stay live.  Ready
        # entries skip the per-event clock write — their timestamp *is*
        # the current time — and the heap-top guard before each cohort
        # pop keeps urgent arrivals (smaller key, scheduled mid-cohort)
        # ahead of the rest of the cohort, preserving exact (time,
        # priority, eid) order.
        queue = self._queue
        ready = self._ready
        ready_pop = ready.popleft
        step_monitors = self._step_monitors
        schedule_monitors = self._schedule_monitors
        timeout_pool = self._timeout_pool
        release_pool = self._release_pool
        now = self._now
        try:
            while True:
                if ready:
                    if queue and queue[0][0] <= now:
                        when, _, event = heappop(queue)
                        if when != now:
                            self._now = now = when
                    else:
                        event = ready_pop()
                        when = now
                elif queue:
                    when = queue[0][0]
                    if when > stop_time:
                        self._now = stop_time
                        return None
                    when, _, event = heappop(queue)
                    self._now = now = when
                else:
                    if stop_time != float("inf"):
                        self._now = stop_time
                        return None
                    raise EmptySchedule()
                if step_monitors:
                    for monitor in step_monitors:
                        monitor(when, event)
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    for callback in callbacks:
                        callback(event)
                if event._ok:
                    cls = type(event)
                    if (cls is Timeout
                            and len(timeout_pool) < _POOL_LIMIT
                            and not step_monitors
                            and not schedule_monitors):
                        # Pool invariant: a pooled Timeout carries an
                        # *empty* callbacks list, recycled from the one
                        # just drained, so timeout() re-arms it without
                        # allocating.
                        callbacks.clear()
                        event.callbacks = callbacks
                        timeout_pool.append(event)
                    elif (cls is Release
                            and len(release_pool) < _POOL_LIMIT
                            and not step_monitors
                            and not schedule_monitors):
                        callbacks.clear()
                        event.callbacks = callbacks
                        release_pool.append(event)
                elif not event._defused:
                    exc = event._value
                    if isinstance(exc, BaseException):
                        raise exc
                    raise RuntimeError(f"unhandled failed event: {event!r}")
        except StopSimulation as stop:
            return stop.args[0] if stop.args else None
        except EmptySchedule:
            if stop_event is not None and not stop_event.triggered:
                raise RuntimeError(
                    "run(until=event) but the event was never triggered and "
                    "the schedule is empty"
                ) from None
            return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        if event._ok:
            raise StopSimulation(event._value)
        event._defused = False  # let step() re-raise the failure

"""The simulation engine: a calendar of events and the loop that drains it.

Typical use::

    env = Environment()

    def worker(env):
        yield env.timeout(3.0)
        return "done"

    proc = env.process(worker(env))
    env.run()
    assert env.now == 3.0
"""

from __future__ import annotations

import heapq
from typing import Any, Optional

from .events import AllOf, AnyOf, Event, Timeout
from .process import Process, ProcessGenerator

__all__ = ["Environment", "EmptySchedule", "StopSimulation", "tie_break_key"]


class EmptySchedule(Exception):
    """Raised internally when the calendar runs dry."""


class StopSimulation(Exception):
    """Raised to terminate :meth:`Environment.run` early."""


def tie_break_key(seed: int, eid: int) -> tuple[int, int]:
    """Deterministic shuffle key for one calendar entry.

    An FNV-1a mix of ``(seed, eid)``: same-``(time, priority)`` entries
    sort by the hash instead of by insertion order, so each seed yields
    one fixed permutation of every tie.  The trailing ``eid`` keeps the
    key total even on hash collisions.
    """
    digest = 2166136261
    for char in f"{seed}:{eid}":
        digest = ((digest ^ ord(char)) * 16777619) % (1 << 64)
    return (digest, eid)


class Environment:
    """Execution environment for a single simulation run.

    Time is a float in *seconds* throughout this project (disk and network
    models convert from ms/µs at their boundaries).

    Calendar entries sort by ``(time, priority, eid)`` — equal-time,
    equal-priority events run in the order they were scheduled.  Passing
    ``tie_break_seed`` replaces the ``eid`` component with a seeded hash
    of it, deterministically shuffling every same-``(time, priority)``
    tie: the schedule-perturbation harness (:mod:`repro.check.perturb`)
    runs the same scenario under several seeds and asserts the metrics do
    not move, which proves no result leans on tie-break order.
    """

    #: Events scheduled with urgent priority run before normal events that
    #: share the same timestamp (used for interrupts).
    PRIORITY_URGENT = 0
    PRIORITY_NORMAL = 1

    def __init__(self, initial_time: float = 0.0,
                 tie_break_seed: Optional[int] = None):
        self._now = float(initial_time)
        self._queue: list = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        self.tie_break_seed = tie_break_seed
        # Monitoring hooks (repro.check.sanitize and repro.check.hb attach
        # here).  All lists are empty in normal runs so the hot loop pays
        # only a truthiness test per event.
        self._step_monitors: list = []
        self._resource_monitors: list = []
        self._schedule_monitors: list = []
        self._access_monitors: list = []
        self._transfer_monitors: list = []

    # -- clock ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped (None between steps)."""
        return self._active_process

    # -- monitoring hooks ---------------------------------------------------

    def add_step_monitor(self, callback) -> None:
        """Call ``callback(when, event)`` as each event is popped.

        The callback runs *before* the clock advances and before the
        event's callbacks, so a monitor sees (and may veto, by raising)
        any non-monotonic timestamp the engine itself would trip over.
        """
        self._step_monitors.append(callback)

    def remove_step_monitor(self, callback) -> None:
        """Detach a step monitor (no-op if absent)."""
        try:
            self._step_monitors.remove(callback)
        except ValueError:
            pass

    def add_resource_monitor(self, callback) -> None:
        """Call ``callback(action, resource, request)`` on every grant or
        release of any :class:`~repro.des.resources.Resource` in this
        environment (``action`` is ``"acquire"`` or ``"release"``)."""
        self._resource_monitors.append(callback)

    def remove_resource_monitor(self, callback) -> None:
        """Detach a resource monitor (no-op if absent)."""
        try:
            self._resource_monitors.remove(callback)
        except ValueError:
            pass

    def _notify_resource(self, action: str, resource, request) -> None:
        for callback in self._resource_monitors:
            callback(action, resource, request)

    def add_schedule_monitor(self, callback) -> None:
        """Call ``callback(event, active_process)`` whenever an event is
        placed on the calendar.

        ``active_process`` is the process whose segment scheduled the
        event (None for callback-phase or setup-time scheduling).  The
        happens-before tracker uses this to stamp each event with the
        logical clock of the segment that caused it.
        """
        self._schedule_monitors.append(callback)

    def remove_schedule_monitor(self, callback) -> None:
        """Detach a schedule monitor (no-op if absent)."""
        try:
            self._schedule_monitors.remove(callback)
        except ValueError:
            pass

    def add_access_monitor(self, callback) -> None:
        """Call ``callback(obj, label, is_write)`` on every instrumented
        shared-state access (:class:`~repro.des.resources.Resource` queue
        mutations, :class:`~repro.des.resources.Store` puts/gets/purges).
        """
        self._access_monitors.append(callback)

    def remove_access_monitor(self, callback) -> None:
        """Detach an access monitor (no-op if absent)."""
        try:
            self._access_monitors.remove(callback)
        except ValueError:
            pass

    def _notify_access(self, obj, label: str, is_write: bool) -> None:
        for callback in self._access_monitors:
            callback(obj, label, is_write)

    def add_transfer_monitor(self, callback) -> None:
        """Call ``callback(kind, **info)`` on every data-path accounting
        event an instrumented component emits (striped write/read begin
        and end, per-agent regions, wire payloads, parity reconstruction).
        The conservation ledger (:mod:`repro.check.conserve`) attaches
        here; emitters guard on ``env._transfer_monitors`` so the data
        path pays one falsy test when no ledger is installed.
        """
        self._transfer_monitors.append(callback)

    def remove_transfer_monitor(self, callback) -> None:
        """Detach a transfer monitor (no-op if absent)."""
        try:
            self._transfer_monitors.remove(callback)
        except ValueError:
            pass

    def _notify_transfer(self, kind: str, **info) -> None:
        for callback in self._transfer_monitors:
            callback(kind, **info)

    # -- event factories --------------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator) -> Process:
        """Register ``generator`` as a new process starting now."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """Event that fires when every event in ``events`` has succeeded."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event that fires when any event in ``events`` has succeeded."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def schedule(
        self,
        event: Event,
        delay: float = 0.0,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Place a triggered event on the calendar ``delay`` seconds ahead."""
        self._eid += 1
        if self._schedule_monitors:
            for monitor in self._schedule_monitors:
                monitor(event, self._active_process)
        tie = (self._eid if self.tie_break_seed is None
               else tie_break_key(self.tie_break_seed, self._eid))
        heapq.heappush(self._queue, (self._now + delay, priority, tie, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event from the calendar."""
        try:
            when, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        if self._step_monitors:
            for monitor in self._step_monitors:
                monitor(when, event)
        if when < self._now:  # pragma: no cover - heap guarantees ordering
            raise RuntimeError("event scheduled in the past")
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise RuntimeError(f"unhandled failed event: {event!r}")

    # -- run loop -----------------------------------------------------------

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` runs until the calendar is empty.  A number runs until
            simulated time reaches it.  An :class:`Event` runs until that
            event is processed and returns its value.
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is not None:
                stop_event.callbacks.append(self._stop_callback)
            elif stop_event.triggered:
                return stop_event.value
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until ({stop_time}) must not be in the past "
                    f"(now={self._now})"
                )

        try:
            while True:
                if self.peek() > stop_time:
                    self._now = stop_time
                    return None
                self.step()
        except StopSimulation as stop:
            return stop.args[0] if stop.args else None
        except EmptySchedule:
            if stop_event is not None and not stop_event.triggered:
                raise RuntimeError(
                    "run(until=event) but the event was never triggered and "
                    "the schedule is empty"
                ) from None
            return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        if event._ok:
            raise StopSimulation(event._value)
        event._defused = False  # let step() re-raise the failure

"""The simulation engine: a calendar of events and the loop that drains it.

Typical use::

    env = Environment()

    def worker(env):
        yield env.timeout(3.0)
        return "done"

    proc = env.process(worker(env))
    env.run()
    assert env.now == 3.0
"""

from __future__ import annotations

import heapq
from typing import Any, Optional

from .events import AllOf, AnyOf, Event, Timeout
from .process import Process, ProcessGenerator

__all__ = ["Environment", "EmptySchedule", "StopSimulation"]


class EmptySchedule(Exception):
    """Raised internally when the calendar runs dry."""


class StopSimulation(Exception):
    """Raised to terminate :meth:`Environment.run` early."""


class Environment:
    """Execution environment for a single simulation run.

    Time is a float in *seconds* throughout this project (disk and network
    models convert from ms/µs at their boundaries).
    """

    #: Events scheduled with urgent priority run before normal events that
    #: share the same timestamp (used for interrupts).
    PRIORITY_URGENT = 0
    PRIORITY_NORMAL = 1

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        # Monitoring hooks (repro.check.sanitize attaches here).  Both
        # lists are empty in normal runs so the hot loop pays only a
        # truthiness test per event.
        self._step_monitors: list = []
        self._resource_monitors: list = []

    # -- clock ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped (None between steps)."""
        return self._active_process

    # -- monitoring hooks ---------------------------------------------------

    def add_step_monitor(self, callback) -> None:
        """Call ``callback(when, event)`` as each event is popped.

        The callback runs *before* the clock advances and before the
        event's callbacks, so a monitor sees (and may veto, by raising)
        any non-monotonic timestamp the engine itself would trip over.
        """
        self._step_monitors.append(callback)

    def remove_step_monitor(self, callback) -> None:
        """Detach a step monitor (no-op if absent)."""
        try:
            self._step_monitors.remove(callback)
        except ValueError:
            pass

    def add_resource_monitor(self, callback) -> None:
        """Call ``callback(action, resource, request)`` on every grant or
        release of any :class:`~repro.des.resources.Resource` in this
        environment (``action`` is ``"acquire"`` or ``"release"``)."""
        self._resource_monitors.append(callback)

    def remove_resource_monitor(self, callback) -> None:
        """Detach a resource monitor (no-op if absent)."""
        try:
            self._resource_monitors.remove(callback)
        except ValueError:
            pass

    def _notify_resource(self, action: str, resource, request) -> None:
        for callback in self._resource_monitors:
            callback(action, resource, request)

    # -- event factories --------------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator) -> Process:
        """Register ``generator`` as a new process starting now."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """Event that fires when every event in ``events`` has succeeded."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event that fires when any event in ``events`` has succeeded."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def schedule(
        self,
        event: Event,
        delay: float = 0.0,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Place a triggered event on the calendar ``delay`` seconds ahead."""
        self._eid += 1
        heapq.heappush(
            self._queue, (self._now + delay, priority, self._eid, event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event from the calendar."""
        try:
            when, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        if self._step_monitors:
            for monitor in self._step_monitors:
                monitor(when, event)
        if when < self._now:  # pragma: no cover - heap guarantees ordering
            raise RuntimeError("event scheduled in the past")
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise RuntimeError(f"unhandled failed event: {event!r}")

    # -- run loop -----------------------------------------------------------

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` runs until the calendar is empty.  A number runs until
            simulated time reaches it.  An :class:`Event` runs until that
            event is processed and returns its value.
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is not None:
                stop_event.callbacks.append(self._stop_callback)
            elif stop_event.triggered:
                return stop_event.value
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until ({stop_time}) must not be in the past "
                    f"(now={self._now})"
                )

        try:
            while True:
                if self.peek() > stop_time:
                    self._now = stop_time
                    return None
                self.step()
        except StopSimulation as stop:
            return stop.args[0] if stop.args else None
        except EmptySchedule:
            if stop_event is not None and not stop_event.triggered:
                raise RuntimeError(
                    "run(until=event) but the event was never triggered and "
                    "the schedule is empty"
                ) from None
            return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        if event._ok:
            raise StopSimulation(event._value)
        event._defused = False  # let step() re-raise the failure

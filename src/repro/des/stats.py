"""Statistics used throughout the reproduction.

The paper reports each measurement as mean, standard deviation, min, max and
a 90 % Student-t confidence interval over eight samples (Tables 1-4).
:class:`SampleSet` produces exactly those columns.  :class:`OnlineStats` is a
streaming (Welford) accumulator for within-run measurements, and
:class:`UtilizationMonitor` tracks busy time of a device so we can verify
claims like "the disks were 50 % utilized on the average".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "OnlineStats",
    "SampleSet",
    "ConfidenceInterval",
    "UtilizationMonitor",
    "Histogram",
    "student_t_critical",
]

# Two-sided Student-t critical values, indexed by degrees of freedom.
# Column keys are the confidence levels used in this project.
_T_TABLE = {
    0.90: [
        None, 6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833,
        1.812, 1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729,
        1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699,
        1.697,
    ],
    0.95: [
        None, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
        2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
        2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
        2.042,
    ],
    0.99: [
        None, 63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250,
        3.169, 3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861,
        2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756,
        2.750,
    ],
}
_T_ASYMPTOTIC = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}


def student_t_critical(degrees_of_freedom: int, confidence: float = 0.90) -> float:
    """Two-sided Student-t critical value.

    Supports the confidence levels the project reports (0.90, 0.95, 0.99);
    beyond 30 degrees of freedom the normal approximation is used.
    """
    if degrees_of_freedom < 1:
        raise ValueError("need at least 2 samples for a confidence interval")
    try:
        column = _T_TABLE[confidence]
    except KeyError:
        raise ValueError(
            f"unsupported confidence level {confidence}; "
            f"use one of {sorted(_T_TABLE)}"
        ) from None
    if degrees_of_freedom < len(column):
        return column[degrees_of_freedom]
    return _T_ASYMPTOTIC[confidence]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval [low, high] at ``confidence``."""

    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        """True if ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        """High minus low."""
        return self.high - self.low


class OnlineStats:
    """Streaming mean/variance/min/max via Welford's algorithm."""

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        #: Called with this accumulator before every :meth:`add` — the
        #: happens-before race detector (:mod:`repro.check.hb`) attaches
        #: here to see which process segment folds each observation in.
        self.observer = None

    def reset(self) -> None:
        """Drop every observation (back to the freshly built state).

        Lets one accumulator be reused across engine runs without state
        bleeding from the previous scenario into the next — the runtime
        sanitizer relies on this to run a scenario twice and diff.
        """
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        if self.observer is not None:
            self.observer(self)
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def extend(self, values: Iterable[float]) -> None:
        """Fold many observations."""
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (needs >= 2 observations)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if not self.count:
            raise ValueError("no observations")
        return self._min

    @property
    def maximum(self) -> float:
        if not self.count:
            raise ValueError("no observations")
        return self._max

    def confidence_interval(self, confidence: float = 0.90) -> ConfidenceInterval:
        """Student-t confidence interval around the mean."""
        if self.count < 2:
            raise ValueError("need at least 2 observations")
        t_value = student_t_critical(self.count - 1, confidence)
        half_width = t_value * self.stdev / math.sqrt(self.count)
        return ConfidenceInterval(
            self.mean - half_width, self.mean + half_width, confidence
        )


class SampleSet:
    """A batch of repeated-run samples, reported the way the paper reports.

    Tables 1-4 give x̄, σ, min, max and the 90 % confidence interval over
    eight samples; :meth:`row` produces that tuple.
    """

    def __init__(self, samples: Sequence[float] = ()):
        self._stats = OnlineStats()
        self.samples: list[float] = []
        for sample in samples:
            self.add(sample)

    def add(self, sample: float) -> None:
        """Record one run's measurement."""
        self.samples.append(sample)
        self._stats.add(sample)

    def reset(self) -> None:
        """Drop every recorded sample."""
        self.samples.clear()
        self._stats.reset()

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return self._stats.mean

    @property
    def stdev(self) -> float:
        return self._stats.stdev

    @property
    def minimum(self) -> float:
        return self._stats.minimum

    @property
    def maximum(self) -> float:
        return self._stats.maximum

    def confidence_interval(self, confidence: float = 0.90) -> ConfidenceInterval:
        return self._stats.confidence_interval(confidence)

    def row(self, confidence: float = 0.90) -> dict[str, float]:
        """The paper's table columns for this sample set."""
        interval = self.confidence_interval(confidence)
        return {
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.minimum,
            "max": self.maximum,
            "ci_low": interval.low,
            "ci_high": interval.high,
        }


class Histogram:
    """Sample container with exact quantiles (for latency tails).

    Stores the raw samples (fine at simulation scales) and computes
    quantiles by sorting on demand with caching.
    """

    def __init__(self):
        self._samples: list[float] = []
        self._sorted: list[float] | None = None
        #: Race-detector hook, as on :class:`OnlineStats`.
        self.observer = None

    def add(self, value: float) -> None:
        """Record one observation."""
        if self.observer is not None:
            self.observer(self)
        self._samples.append(value)
        self._sorted = None

    def reset(self) -> None:
        """Drop every observation."""
        self._samples.clear()
        self._sorted = None

    def extend(self, values: Iterable[float]) -> None:
        """Record many observations."""
        self._samples.extend(values)
        self._sorted = None

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        if not self._samples:
            return 0.0
        return math.fsum(self._samples) / len(self._samples)

    def quantile(self, fraction: float) -> float:
        """The ``fraction`` quantile (nearest-rank, inclusive)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction out of range: {fraction}")
        if not self._samples:
            raise ValueError("no observations")
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        rank = max(0, min(len(self._sorted) - 1,
                          math.ceil(fraction * len(self._sorted)) - 1))
        return self._sorted[rank]

    def p50(self) -> float:
        """Median."""
        return self.quantile(0.50)

    def p99(self) -> float:
        """99th percentile."""
        return self.quantile(0.99)

    def buckets(self, count: int = 10) -> list[tuple[float, float, int]]:
        """Equal-width (low, high, n) buckets spanning the sample range."""
        if count < 1:
            raise ValueError("count must be >= 1")
        if not self._samples:
            return []
        low = min(self._samples)
        high = max(self._samples)
        if high == low:
            return [(low, high, len(self._samples))]
        width = (high - low) / count
        tallies = [0] * count
        for value in self._samples:
            index = min(count - 1, int((value - low) / width))
            tallies[index] += 1
        return [(low + i * width, low + (i + 1) * width, tallies[i])
                for i in range(count)]


class UtilizationMonitor:
    """Tracks the busy fraction of a device over simulated time."""

    def __init__(self, env):
        self.env = env
        self._busy_since: float | None = None
        self._busy_total = 0.0
        self._started_at = env.now

    def reset(self) -> None:
        """Restart the measurement window at the current simulated time.

        An open busy interval survives the reset (the device is still
        busy) but its time before the reset is discarded.
        """
        self._busy_total = 0.0
        self._started_at = self.env.now
        if self._busy_since is not None:
            self._busy_since = self.env.now

    def clear(self) -> None:
        """Forget everything, *including* an open busy interval.

        Unlike :meth:`reset` (which keeps an in-progress busy interval
        because the device really is still busy), ``clear`` restores the
        freshly constructed state — the warm-start path uses it after the
        engine clock has been rewound, when any open interval belongs to
        a run that no longer exists.
        """
        self._busy_total = 0.0
        self._busy_since = None
        self._started_at = self.env.now

    def busy(self) -> None:
        """Mark the device busy from now (idempotent)."""
        if self._busy_since is None:
            self._busy_since = self.env.now

    def idle(self) -> None:
        """Mark the device idle from now (idempotent)."""
        if self._busy_since is not None:
            self._busy_total += self.env.now - self._busy_since
            self._busy_since = None

    @property
    def busy_time(self) -> float:
        """Total busy seconds so far (including an open busy interval)."""
        total = self._busy_total
        if self._busy_since is not None:
            total += self.env.now - self._busy_since
        return total

    def utilization(self) -> float:
        """Busy fraction since the monitor was created."""
        elapsed = self.env.now - self._started_at
        if elapsed <= 0:
            return 0.0
        return self.busy_time / elapsed

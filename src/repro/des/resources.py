"""Shared resources: the queueing building blocks of every device model.

:class:`Resource` models a server pool with a FIFO (optionally priority)
request queue — disks, CPUs and network media are all built on it.
:class:`Store` is a producer/consumer buffer of Python objects — message
queues, mailboxes, free-lists.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Any, Callable, Optional

from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Environment

__all__ = ["Request", "Release", "Resource", "Store", "StorePut", "StoreGet"]


class Request(Event):
    """A pending claim on a :class:`Resource`.

    Usable as a context manager::

        with resource.request() as req:
            yield req
            ... hold the resource ...
        # released on exit
    """

    def __init__(self, resource: "Resource", priority: float = 0.0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        resource._enqueue(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw the request.

        Before the grant, the request is silently removed from the wait
        queue and its event never fires — no :class:`Release` is created,
        so cancelling cannot free a server the canceller never held.
        After the grant (even if the granting event has not yet been
        processed) the server slot is genuinely occupied, so cancel
        behaves exactly like :meth:`Resource.release`.  Cancelling twice,
        or cancelling and then leaving the ``with`` block, is a no-op the
        second time.
        """
        if self.triggered:
            self.resource.release(self)
        else:
            self.resource._withdraw(self)


class Release(Event):
    """Event returned by :meth:`Resource.release`; fires immediately."""

    def __init__(self, resource: "Resource", request: Request):
        super().__init__(resource.env)
        resource._dequeue(request)
        self.succeed()


class Resource:
    """A pool of ``capacity`` identical servers with a queue.

    Requests are granted in priority order (ties broken FIFO).  The default
    priority 0 everywhere degenerates to a pure FIFO queue.
    """

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self._waiting: list[tuple[float, int, Request]] = []
        self._ticket = itertools.count()

    # -- public API ----------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of servers currently held."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a server."""
        return len(self._waiting)

    def request(self, priority: float = 0.0) -> Request:
        """Claim a server; the returned event fires when granted."""
        return Request(self, priority)

    def release(self, request: Request) -> Release:
        """Give a server back (or withdraw a waiting request)."""
        return Release(self, request)

    # -- internals ------------------------------------------------------------

    def _enqueue(self, request: Request) -> None:
        if self.env._access_monitors:
            self.env._notify_access(self, "Resource.request", True)
        heapq.heappush(
            self._waiting, (request.priority, next(self._ticket), request)
        )
        self._grant()

    def _dequeue(self, request: Request) -> None:
        if request in self.users:
            self.users.remove(request)
            if self.env._access_monitors:
                self.env._notify_access(self, "Resource.release", True)
            if self.env._resource_monitors:
                self.env._notify_resource("release", self, request)
            self._grant()
        else:
            # Releasing a request that was never granted (or was already
            # released) degrades to a queue withdrawal, which is a no-op
            # if the request is not waiting either.
            self._withdraw(request)

    def _withdraw(self, request: Request) -> None:
        """Remove ``request`` from the wait queue without firing anything."""
        survivors = [
            entry for entry in self._waiting if entry[2] is not request
        ]
        if len(survivors) != len(self._waiting):
            self._waiting = survivors
            heapq.heapify(self._waiting)

    def _grant(self) -> None:
        while self._waiting and len(self.users) < self.capacity:
            _, _, request = heapq.heappop(self._waiting)
            self.users.append(request)
            if self.env._resource_monitors:
                self.env._notify_resource("acquire", self, request)
            request.succeed()


class StorePut(Event):
    """A pending put into a :class:`Store`."""

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        if store.env._access_monitors:
            store.env._notify_access(store, "Store.put", True)
        store._put_queue.append(self)
        store._dispatch()


class StoreGet(Event):
    """A pending get from a :class:`Store`."""

    def __init__(self, store: "Store", predicate: Optional[Callable[[Any], bool]]):
        super().__init__(store.env)
        self.store = store
        self.predicate = predicate
        if store.env._access_monitors:
            store.env._notify_access(store, "Store.get", True)
        store._get_queue.append(self)
        store._dispatch()

    def cancel(self) -> None:
        """Withdraw an unfired get so it never consumes an item.

        A no-op if the get was already satisfied (the caller then owns the
        item it received).
        """
        if not self.triggered:
            try:
                self.store._get_queue.remove(self)
            except ValueError:  # pragma: no cover - already dispatched
                pass


class Store:
    """A FIFO buffer of items with optional capacity.

    ``get(predicate)`` takes the first item satisfying the predicate,
    which lets protocol code wait for e.g. "the ACK for sequence 7".
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: list[Any] = []
        self._put_queue: list[StorePut] = []
        self._get_queue: list[StoreGet] = []

    def put(self, item: Any) -> StorePut:
        """Deposit ``item``; fires once there is room."""
        return StorePut(self, item)

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        """Withdraw the first item (matching ``predicate`` if given)."""
        return StoreGet(self, predicate)

    @property
    def size(self) -> int:
        """Number of items currently buffered."""
        return len(self.items)

    def purge(self, predicate: Callable[[Any], bool]) -> int:
        """Discard buffered items matching ``predicate``; returns the count."""
        if self.env._access_monitors:
            self.env._notify_access(self, "Store.purge", True)
        keep = [item for item in self.items if not predicate(item)]
        removed = len(self.items) - len(keep)
        self.items = keep
        return removed

    # -- internals ------------------------------------------------------------

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            # Admit puts while there is room.
            while self._put_queue and len(self.items) < self.capacity:
                put = self._put_queue.pop(0)
                self.items.append(put.item)
                put.succeed()
                progress = True
            # Satisfy gets that can match.
            remaining: list[StoreGet] = []
            for get in self._get_queue:
                index = self._match(get.predicate)
                if index is None:
                    remaining.append(get)
                else:
                    get.succeed(self.items.pop(index))
                    progress = True
            self._get_queue = remaining

    def _match(self, predicate: Optional[Callable[[Any], bool]]) -> Optional[int]:
        if predicate is None:
            return 0 if self.items else None
        for index, item in enumerate(self.items):
            if predicate(item):
                return index
        return None

"""Shared resources: the queueing building blocks of every device model.

:class:`Resource` models a server pool with a FIFO (optionally priority)
request queue — disks, CPUs and network media are all built on it.
:class:`Store` is a producer/consumer buffer of Python objects — message
queues, mailboxes, free-lists.
"""

from __future__ import annotations

import itertools
from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING, Any, Callable, Optional

from .events import _POOL_LIMIT, PENDING, Event

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Environment

__all__ = ["Request", "Release", "Resource", "Store", "StorePut", "StoreGet"]


class Request(Event):
    """A pending claim on a :class:`Resource`.

    Usable as a context manager::

        with resource.request() as req:
            yield req
            ... hold the resource ...
        # released on exit
    """

    __slots__ = ("resource", "priority")

    def __init__(self, resource: "Resource", priority: float = 0.0):
        # Flattened Event.__init__ — requests are made once per disk and
        # network hold, so the super() hop is measurable.
        self.env = resource.env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._defused = False
        self._stale = None
        self.resource = resource
        self.priority = priority
        resource._enqueue(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        # Inlined Resource.release() pooled fast path: every with-block
        # hold pays this exit exactly once, so the extra call frame is
        # measurable at millions of events per second.  The slow branch
        # (no pooled Release, or monitors attached) still routes through
        # release() so monitor notification order is identical.
        resource = self.resource
        env = self.env
        pool = env._release_pool
        if pool and env._unmonitored:
            release = pool.pop()
            try:
                resource.users.remove(self)
            except ValueError:
                resource._withdraw(self)
            else:
                waiting = resource._waiting
                if waiting and len(resource.users) < resource.capacity:
                    _, _, granted = heappop(waiting)
                    resource.users.append(granted)
                    granted._ok = True
                    granted._value = None
                    if env._schedule_fast:
                        env._eid += 1
                        env._ready.append(granted)
                    else:
                        env.schedule(granted)
            if env._schedule_fast:
                env._eid += 1
                env._ready.append(release)
            else:
                env.schedule(release)
        else:
            resource.release(self)
        # Leaving the with-block is the one point where the request is
        # provably retired — granted, processed (callbacks drained to
        # None) and released, with no later release() call coming (a
        # cancel() inside the block already released; the second release
        # above was a no-op).  Recycle it.  Requests released any other
        # way (explicit release(), cancel without a with) are never
        # pooled, so inspecting those afterwards stays safe.
        if (self.callbacks is None
                and env._unmonitored
                and len(env._request_pool) < _POOL_LIMIT):
            self.callbacks = []
            env._request_pool.append(self)

    def cancel(self) -> None:
        """Withdraw the request.

        Before the grant, the request is silently removed from the wait
        queue and its event never fires — no :class:`Release` is created,
        so cancelling cannot free a server the canceller never held.
        After the grant (even if the granting event has not yet been
        processed) the server slot is genuinely occupied, so cancel
        behaves exactly like :meth:`Resource.release`.  Cancelling twice,
        or cancelling and then leaving the ``with`` block, is a no-op the
        second time.
        """
        if self.triggered:
            self.resource.release(self)
        else:
            self.resource._withdraw(self)


class Release(Event):
    """Event returned by :meth:`Resource.release`; fires immediately."""

    __slots__ = ()

    def __init__(self, resource: "Resource", request: Request):
        env = resource.env
        self.env = env
        self.callbacks = []
        self._ok = True
        self._value = None
        self._defused = False
        self._stale = None
        resource._dequeue(request)
        # Inlined self.succeed() — a Release fires exactly once, straight
        # from construction, so the already-triggered guard is dead code.
        # It fires at the current time: ready cohort, no heap entry.
        if env._schedule_fast:
            env._eid += 1
            env._ready.append(self)
        else:
            env.schedule(self)


#: Placeholder occupying a server slot for a grant that skipped the Request
#: object entirely (see :meth:`Resource.try_acquire`).  ``users`` entries are
#: only ever touched by identity (``remove``) and count (``len``) on the
#: unmonitored fast path, so an opaque token is indistinguishable from a
#: granted request to every contender.
_TOKEN = object()


class Resource:
    """A pool of ``capacity`` identical servers with a queue.

    Requests are granted in priority order (ties broken FIFO).  The default
    priority 0 everywhere degenerates to a pure FIFO queue.
    """

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self._waiting: list[tuple[float, int, Request]] = []
        self._ticket = itertools.count()

    # -- public API ----------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of servers currently held."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a server."""
        return len(self._waiting)

    def request(self, priority: float = 0.0) -> Request:
        """Claim a server; the returned event fires when granted.

        Requests are recycled through a per-environment free list once
        they have been granted, processed *and* released — holding on to
        a request after releasing it and inspecting it later is
        unsupported (see docs/PERFORMANCE.md).  Recycling is suspended
        while step, schedule or resource monitors are attached, since
        the leak detector keys held requests by identity.
        """
        env = self.env
        pool = env._request_pool
        if pool and env._unmonitored:
            # Re-arm a retired request and inline the monitor-free
            # _enqueue: the gate above already proved every hook list
            # empty, so the fast path is slot writes plus one heappush.
            request = pool.pop()
            request._value = PENDING
            request._ok = None
            request._defused = False
            request.resource = self
            request.priority = priority
            if not self._waiting and len(self.users) < self.capacity:
                self.users.append(request)
                request._ok = True
                request._value = None
                if env._schedule_fast:
                    env._eid += 1
                    env._ready.append(request)
                else:
                    env.schedule(request)
            else:
                heappush(self._waiting,
                         (priority, next(self._ticket), request))
                if len(self.users) < self.capacity:
                    self._grant()
            return request
        return Request(self, priority)

    def request_inline(self, priority: float = 0.0) -> Request:
        """A claim granted *without a grant event* when nothing contends.

        The callback-process hold sequence calls this: when the server is
        free, the queue empty and no monitor attached, the request is
        granted on the spot and returned already *processed*
        (``callbacks is None``) — no calendar entry, no dispatch — and
        the caller continues inline.  The resource state transition is
        identical to :meth:`request` (``users`` grows at call time either
        way; the grant event is pure wakeup latency), so contenders
        arriving later queue exactly as before.  Contended or monitored
        calls fall back to :meth:`request`; callers distinguish the two
        outcomes by ``request.callbacks is None``.
        """
        env = self.env
        if (env._unmonitored and not self._waiting
                and len(self.users) < self.capacity):
            pool = env._request_pool
            if pool:
                request = pool.pop()
            else:
                request = Request.__new__(Request)
                request.env = env
                request._stale = None
            request._defused = False
            request.resource = self
            request.priority = priority
            request._ok = True
            request._value = None
            request.callbacks = None
            self.users.append(request)
            return request
        return self.request(priority)

    def release(self, request: Request) -> Release:
        """Give a server back (or withdraw a waiting request).

        Like Timeouts, processed Release events are recycled through a
        per-environment free list (they carry no state of their own);
        do not inspect a Release after the simulation has moved past it.
        """
        env = self.env
        pool = env._release_pool
        if pool and env._unmonitored:
            # Re-arm a pooled Release and inline the monitor-free
            # _dequeue (users scan, regrant, no notifications).  A
            # Release's _ok/_value/_defused never change between lives,
            # so re-arming writes nothing.
            release = pool.pop()
            try:
                self.users.remove(request)
            except ValueError:
                self._withdraw(request)
            else:
                # One release frees exactly one server, so at most one
                # waiter can be granted — grant it inline instead of
                # paying _grant()'s loop setup.
                waiting = self._waiting
                if waiting and len(self.users) < self.capacity:
                    _, _, granted = heappop(waiting)
                    self.users.append(granted)
                    granted._ok = True
                    granted._value = None
                    if env._schedule_fast:
                        env._eid += 1
                        env._ready.append(granted)
                    else:
                        env.schedule(granted)
            if env._schedule_fast:
                env._eid += 1
                env._ready.append(release)
            else:
                env.schedule(release)
            return release
        return Release(self, request)

    def release_quiet(self, request: Request) -> None:
        """Give a server back without materialising a Release event.

        A Release event is inert — no callbacks ever attach to it, and
        the regrant of the next waiter already happens at release time,
        not when the Release is processed — so for callers that do not
        need the returned event (the callback-process hold sequence in
        :mod:`repro.des.callback`) skipping it removes one calendar
        entry per hold.  Grant order, monitor notification order and
        request recycling are identical to :meth:`release`; with any
        step/schedule/resource/access monitor attached the release
        routes through the fully notifying slow path.
        """
        env = self.env
        if env._unmonitored:
            try:
                self.users.remove(request)
            except ValueError:
                self._withdraw(request)
            else:
                waiting = self._waiting
                if waiting and len(self.users) < self.capacity:
                    _, _, granted = heappop(waiting)
                    self.users.append(granted)
                    granted._ok = True
                    granted._value = None
                    if env._schedule_fast:
                        env._eid += 1
                        env._ready.append(granted)
                    else:
                        env.schedule(granted)
            # Same retirement proof as Request.__exit__: granted,
            # processed, and now released — recycle.
            if (request.callbacks is None
                    and len(env._request_pool) < _POOL_LIMIT):
                request.callbacks = []
                env._request_pool.append(request)
        else:
            self._dequeue(request)

    def try_acquire(self) -> bool:
        """Claim a free server with no Request object and no grant event.

        The cheapest possible grant: when the server is free, the queue
        empty and no monitor attached, a placeholder token takes the
        server slot and the caller proceeds inline.  Contenders arriving
        during the hold queue exactly as against a granted request —
        ``users`` grows at the same instant either way.  Returns False
        (claiming nothing) when contended or monitored; the caller falls
        back to :meth:`request`.  A successful claim must be returned
        with :meth:`release_slot`, which holds even if monitors attach
        mid-hold — like request recycling, per-hold monitor fidelity is
        only guaranteed for monitors attached before the run starts.
        """
        if (self.env._unmonitored and not self._waiting
                and len(self.users) < self.capacity):
            self.users.append(_TOKEN)
            return True
        return False

    def release_slot(self) -> None:
        """Release a server claimed with :meth:`try_acquire`.

        Identical regrant semantics to :meth:`release_quiet`: the
        longest-waiting highest-priority request (if any) is granted at
        the current time before this call returns.
        """
        users = self.users
        users.remove(_TOKEN)
        waiting = self._waiting
        if waiting and len(users) < self.capacity:
            env = self.env
            _, _, granted = heappop(waiting)
            users.append(granted)
            granted._ok = True
            granted._value = None
            if env._schedule_fast:
                env._eid += 1
                env._ready.append(granted)
            else:
                env.schedule(granted)

    def reset(self) -> None:
        """Forget every holder and waiter (warm-start).

        Restores the freshly constructed state — including the FIFO
        ticket counter, so a replayed scenario issues bit-identical wait
        order.  Only valid between runs: pending requests from a dead run
        are orphaned, not failed.
        """
        self.users.clear()
        self._waiting.clear()
        self._ticket = itertools.count()

    # -- internals ------------------------------------------------------------

    def _enqueue(self, request: Request) -> None:
        env = self.env
        if env._access_monitors:
            env._notify_access(self, "Resource.request", True)
        if not self._waiting and len(self.users) < self.capacity:
            # Uncontended fast path: an empty wait queue with a free
            # server grants immediately, skipping the heap round-trip.
            # Ticket numbers only order coexisting *waiting* entries, so
            # not consuming one here changes no grant order.
            self.users.append(request)
            if env._resource_monitors:
                env._notify_resource("acquire", self, request)
            self._fire(request)
            return
        heappush(
            self._waiting, (request.priority, next(self._ticket), request)
        )
        if len(self.users) < self.capacity:
            self._grant()

    def _dequeue(self, request: Request) -> None:
        try:
            self.users.remove(request)
        except ValueError:
            # Releasing a request that was never granted (or was already
            # released) degrades to a queue withdrawal, which is a no-op
            # if the request is not waiting either.
            self._withdraw(request)
            return
        env = self.env
        if env._access_monitors:
            env._notify_access(self, "Resource.release", True)
        if env._resource_monitors:
            env._notify_resource("release", self, request)
        if self._waiting:
            self._grant()

    def _withdraw(self, request: Request) -> None:
        """Remove ``request`` from the wait queue without firing anything."""
        survivors = [
            entry for entry in self._waiting if entry[2] is not request
        ]
        if len(survivors) != len(self._waiting):
            self._waiting = survivors
            heapify(self._waiting)

    def _fire(self, request: Request) -> None:
        """Trigger a freshly granted request (``succeed()`` sans guard).

        Grant paths hand each request to ``_fire`` exactly once — the
        heap pop or fast path removes it from contention — so the
        already-triggered check in :meth:`Event.succeed` is dead weight
        at ~20k grants per simulated second.
        """
        request._ok = True
        request._value = None
        env = self.env
        if env._schedule_fast:
            env._eid += 1
            env._ready.append(request)
        else:
            env.schedule(request)

    def _grant(self) -> None:
        waiting = self._waiting
        users = self.users
        capacity = self.capacity
        env = self.env
        monitors = env._resource_monitors
        slow = not env._schedule_fast
        ready = env._ready
        while waiting and len(users) < capacity:
            _, _, request = heappop(waiting)
            users.append(request)
            if monitors:
                env._notify_resource("acquire", self, request)
            request._ok = True
            request._value = None
            if slow:
                env.schedule(request)
            else:
                env._eid += 1
                ready.append(request)


class StorePut(Event):
    """A pending put into a :class:`Store`."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        if store.env._access_monitors:
            store.env._notify_access(store, "Store.put", True)
        store._put_queue.append(self)
        store._dispatch()


class StoreGet(Event):
    """A pending get from a :class:`Store`."""

    __slots__ = ("store", "predicate")

    def __init__(self, store: "Store", predicate: Optional[Callable[[Any], bool]]):
        super().__init__(store.env)
        self.store = store
        self.predicate = predicate
        if store.env._access_monitors:
            store.env._notify_access(store, "Store.get", True)
        store._get_queue.append(self)
        store._dispatch()

    def cancel(self) -> None:
        """Withdraw an unfired get so it never consumes an item.

        A no-op if the get was already satisfied (the caller then owns the
        item it received).
        """
        if not self.triggered:
            try:
                self.store._get_queue.remove(self)
            except ValueError:  # pragma: no cover - already dispatched
                pass


class Store:
    """A FIFO buffer of items with optional capacity.

    ``get(predicate)`` takes the first item satisfying the predicate,
    which lets protocol code wait for e.g. "the ACK for sequence 7".
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: list[Any] = []
        self._put_queue: list[StorePut] = []
        self._get_queue: list[StoreGet] = []

    def put(self, item: Any) -> StorePut:
        """Deposit ``item``; fires once there is room."""
        return StorePut(self, item)

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        """Withdraw the first item (matching ``predicate`` if given)."""
        return StoreGet(self, predicate)

    @property
    def size(self) -> int:
        """Number of items currently buffered."""
        return len(self.items)

    def purge(self, predicate: Callable[[Any], bool]) -> int:
        """Discard buffered items matching ``predicate``; returns the count."""
        if self.env._access_monitors:
            self.env._notify_access(self, "Store.purge", True)
        keep = [item for item in self.items if not predicate(item)]
        removed = len(self.items) - len(keep)
        self.items = keep
        return removed

    # -- internals ------------------------------------------------------------

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            # Admit puts while there is room.
            while self._put_queue and len(self.items) < self.capacity:
                put = self._put_queue.pop(0)
                self.items.append(put.item)
                put.succeed()
                progress = True
            # Satisfy gets that can match.
            remaining: list[StoreGet] = []
            for get in self._get_queue:
                index = self._match(get.predicate)
                if index is None:
                    remaining.append(get)
                else:
                    get.succeed(self.items.pop(index))
                    progress = True
            self._get_queue = remaining

    def _match(self, predicate: Optional[Callable[[Any], bool]]) -> Optional[int]:
        if predicate is None:
            return 0 if self.items else None
        for index, item in enumerate(self.items):
            if predicate(item):
                return index
        return None

"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is a one-shot occurrence that processes can wait on.  Its
lifecycle is::

    pending --> triggered --> processed
                (scheduled)   (callbacks ran)

An event is *triggered* by :meth:`Event.succeed` or :meth:`Event.fail`, which
places it on the simulation calendar; once the engine pops it, the event is
*processed* and its callbacks run exactly once.

The module also provides composite conditions (:class:`AllOf`, :class:`AnyOf`)
and the :class:`Timeout` event used to model the passage of time.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .engine import Environment

__all__ = [
    "PENDING",
    "Event",
    "StaleEventError",
    "Timeout",
    "ConditionEvent",
    "AllOf",
    "AnyOf",
    "Interrupt",
]


class StaleEventError(RuntimeError):
    """A recycled pooled event was touched through a stale reference.

    Raised only while the aliasing sanitizer
    (:class:`repro.check.sanitize.AliasSanitizer`) has marked the free
    lists; unmonitored runs never set the ``_stale`` slot.  The message
    carries the recycle site's stack; the use site is this exception's
    own traceback — read both.
    """


class _PendingType:
    """Sentinel for "this event has no value yet"."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<PENDING>"


#: Sentinel stored in :attr:`Event._value` until the event is triggered.
PENDING = _PendingType()

#: Calendar entries are ``(time, key, event)`` where ``key`` folds the
#: scheduling priority and the monotonically increasing event id into a
#: single integer: ``(priority << _PRIORITY_SHIFT) | eid``.  Urgent
#: events (priority 0) therefore sort before normal ones (priority 1) at
#: equal time, and insertion order breaks the remaining ties — one
#: integer comparison instead of two tuple elements.
_PRIORITY_SHIFT = 62

#: Key base for PRIORITY_NORMAL (1): ``1 << _PRIORITY_SHIFT``.
_NORMAL_KEY_BASE = 1 << _PRIORITY_SHIFT

#: How many processed events each per-environment free list may hold
#: (Timeout, Release and Request pools all share this bound).
_POOL_LIMIT = 128


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The interrupt ``cause`` is available both as ``exc.cause`` and as
    ``exc.args[0]``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        """Whatever the interrupting process passed as the cause."""
        return self.args[0]


class Event:
    """A one-shot occurrence on the simulation calendar.

    Events are the single most-allocated object in any run, so the whole
    hierarchy is slotted: no per-instance ``__dict__``, and subclasses
    declare exactly the fields they add.

    Parameters
    ----------
    env:
        The environment the event belongs to.
    """

    #: ``_hb_clock`` is written only by the happens-before detector
    #: (:mod:`repro.check.hb`) while its schedule monitor is attached;
    #: normal runs never touch the slot, so it stays unset and costs
    #: nothing to construct.  ``_stale`` is the aliasing sanitizer's
    #: recycle mark: the instrumented free list that currently parks
    #: this event, or None.  It is initialised by every constructor so
    #: :attr:`value` can test it with a plain load, and set/cleared only
    #: by the sanitizer's pools — re-arm fast paths never touch it.
    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused",
                 "_stale", "_hb_clock")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        #: Set by the engine after callbacks have run.
        self._defused = False
        self._stale = None

    # -- state inspection ---------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is (or was) on the calendar."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise RuntimeError(f"{self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception if it failed)."""
        value = self._value
        if value is PENDING:
            raise RuntimeError(f"{self!r} has not been triggered yet")
        if self._stale is not None:
            raise StaleEventError(
                f"use-after-recycle: {self._stale._describe_stale()}")
        return value

    def defuse(self) -> None:
        """Mark a failed event as handled so the engine does not re-raise."""
        self._defused = True

    # -- triggering ---------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # Inlined env.schedule(self) for the common no-monitor, no-shuffle
        # case: succeed() fires once per granted request, completed
        # process and message delivery, so the call overhead shows up in
        # every hot loop.  The event fires at the current time, so it
        # joins the ready cohort — no heap entry at all.
        env = self.env
        if env._schedule_fast:
            env._eid += 1
            env._ready.append(self)
        else:
            env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Processes waiting on the event will have ``exception`` thrown into
        them.  If nothing waits on a failed event, the engine raises it when
        processing (unless :meth:`defuse` was called).
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event.

        Useful as a callback: ``other.callbacks.append(this.trigger)``.
        """
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- representation -----------------------------------------------------

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    Timeouts dominate event traffic, so construction is flattened (no
    ``super().__init__`` hop) and processed instances are recycled by
    :meth:`Environment.timeout` through a free list — see
    docs/PERFORMANCE.md for the pooling contract (do not hold on to a
    Timeout after it has fired).
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.env = env
        self.callbacks = []
        self._defused = False
        self._stale = None
        self.delay = delay
        self._ok = True
        self._value = value
        if env._schedule_fast:
            now = env._now
            when = now + delay
            eid = env._eid = env._eid + 1
            if when == now:
                # Zero-delay (or sub-ulp) timeout: same-timestamp cohort.
                env._ready.append(self)
            else:
                heappush(env._queue, (when, _NORMAL_KEY_BASE + eid, self))
        else:
            env.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class ConditionEvent(Event):
    """Base for composite events built from several sub-events.

    The condition triggers when ``evaluate`` says the collected outcomes are
    sufficient, or immediately fails when any sub-event fails.  Its value is a
    dict mapping each *completed* sub-event to its value, in completion
    order.
    """

    __slots__ = ("events", "_completed")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._completed: dict[Event, Any] = {}
        for event in self.events:
            if event.env is not env:
                raise ValueError("all events must share one environment")
        if not self.events:
            # An empty condition is vacuously satisfied.
            self.succeed({})
            return
        for event in self.events:
            if event.processed:
                self._observe(event)
            else:
                event.callbacks.append(self._observe)
            if self.triggered:
                break

    def _count_needed(self) -> int:
        raise NotImplementedError

    def _observe(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._completed[event] = event._value
        if len(self._completed) >= self._count_needed():
            self.succeed(dict(self._completed))


class AllOf(ConditionEvent):
    """Triggers once *all* sub-events have succeeded."""

    __slots__ = ()

    def _count_needed(self) -> int:
        return len(self.events)


class AnyOf(ConditionEvent):
    """Triggers as soon as *any* sub-event has succeeded."""

    __slots__ = ()

    def _count_needed(self) -> int:
        return 1

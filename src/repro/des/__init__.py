"""A small discrete-event simulation kernel.

Everything in the reproduction — disks, networks, hosts, the Swift protocol —
runs as generator processes on this kernel.  The design follows the classic
event/process style (events on a calendar, generator coroutines yielding
events), which matches the simulator described in §5 of the paper.
"""

from .callback import CallbackProcess
from .engine import EmptySchedule, Environment, StopSimulation
from .events import AllOf, AnyOf, Event, Interrupt, Timeout
from .process import Process
from .random_streams import RandomStream, StreamFactory
from .resources import Resource, Store
from .stats import (
    ConfidenceInterval,
    Histogram,
    OnlineStats,
    SampleSet,
    UtilizationMonitor,
    student_t_critical,
)

__all__ = [
    "Environment",
    "EmptySchedule",
    "StopSimulation",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Process",
    "CallbackProcess",
    "Resource",
    "Store",
    "RandomStream",
    "StreamFactory",
    "OnlineStats",
    "Histogram",
    "SampleSet",
    "ConfidenceInterval",
    "UtilizationMonitor",
    "student_t_critical",
]

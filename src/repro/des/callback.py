"""Callback-based state-machine processes: the kernel's fast execution mode.

A :class:`CallbackProcess` models the same thing as a generator-based
:class:`~repro.des.process.Process` — a sequence of waits on events — but
the engine advances it with a *direct method call* instead of
``generator.send()``.  Profiling the §5 model puts generator resumption
(frame restore, send dispatch, yield unwinding) at roughly three quarters
of a hot run's wall clock; a bound-method callback re-entering a slotted
object costs a fraction of that.

The trade is explicitness: a subclass writes its control flow as states
(methods) connected by :meth:`wait` edges instead of straight-line
``yield`` code.  Generator processes therefore remain the general API and
the bit-identity reference — callback ports are reserved for measured hot
loops (``sim/model.py``, the NIC pumps, the disk service loop, the Swift
packet pumps), and ``benchmarks/bench_process_modes.py`` pins the two
modes' results equal field for field.

A CallbackProcess is itself an :class:`Event`, exactly like ``Process``:
it triggers when a state calls :meth:`_finish` (value = the process
result) or when a state raises (the exception fails the event).  Waiters
may ``yield`` it from generator processes, ``wait`` on it from other
callback processes, or :meth:`adopt` it as a join-counted child.

Three deliberate event-count reductions versus the generator path (all
result-neutral — same timestamps, same draws, same resource queueing —
and pinned bit-identical by the mode A/B tests):

* holds release through :meth:`~repro.des.resources.Resource.release_quiet`,
  which never materialises the inert ``Release`` event;
* joins count children down inline (:meth:`adopt`/:meth:`join`) instead
  of building an ``AllOf`` condition event;
* a process nobody waits on completes silently when unmonitored
  (:meth:`_finish`), skipping the no-op completion event.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Optional

from .events import _NORMAL_KEY_BASE, Event, Interrupt, PENDING
from .resources import _TOKEN

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Environment
    from .resources import Resource

__all__ = ["CallbackProcess"]

#: A state: a bound method taking the triggering event's value.
State = Callable[[Any], None]


class CallbackProcess(Event):
    """A process written as a state machine, dispatched without a generator.

    Subclasses implement ``_start(value)`` and further state methods; each
    state runs to completion and either arranges the next wakeup
    (:meth:`wait`, :meth:`hold`, :meth:`join`) or ends the process
    (:meth:`_finish`).  Construction starts the process: by default via an
    initialisation event, so start order follows creation order exactly as
    for generator processes; ``immediate=True`` runs ``_start`` inside the
    constructor, mirroring a ``yield from`` into the body (the caller's
    current dispatch) rather than a spawned child.
    """

    __slots__ = ("_state", "_target", "_bound_step", "_bound_hold",
                 "_bound_child", "_children", "_join_state",
                 "_h_res", "_h_req", "_h_duration", "_h_next", "_h_mon")

    def __init__(self, env: "Environment", immediate: bool = False):
        # Flattened Event.__init__, as for Request/Timeout: one of these
        # is built per simulated operation on the hot paths.
        self.env = env
        self.callbacks = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._defused = False
        self._stale = None
        self._target: Optional[Event] = None
        # Bound once: registering a fresh bound method per wait would
        # allocate on every edge (see Process._bound_resume).
        self._bound_step = self._step
        # The hold-completion edge skips _step entirely: _hold_done is
        # registered on the service timeout and carries its own dispatch
        # bookkeeping, so the hottest edge costs one call, not two.
        self._bound_hold = self._hold_done
        self._bound_child = None
        self._children = 0
        self._join_state: Optional[State] = None
        self._state: State = self._start
        if immediate:
            self._dispatch(self._start, None)
        else:
            init = Event(env)
            init._ok = True
            init._value = None
            init.callbacks.append(self._bound_step)
            env.schedule(init)

    # -- subclass interface ---------------------------------------------------

    def _start(self, value: Any) -> None:
        raise NotImplementedError(
            f"{type(self).__name__} must implement _start()")

    def _on_failure(self, exc: BaseException) -> None:
        """Handle a failed wait target (or an interrupt).

        The default re-raises, which fails the process with the exception
        — the callback analogue of a generator that does not catch a
        ``throw()``.  Subclasses that hold resources override this to
        clean up first, then re-raise.
        """
        raise exc

    # -- public API -----------------------------------------------------------

    @property
    def is_alive(self) -> bool:
        """True until a state finishes or fails the process."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is waiting on (None while running)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Deliver :class:`Interrupt` to the process (see Process.interrupt).

        The current wait is abandoned and :meth:`_on_failure` runs with
        the interrupt at the current simulation time.
        """
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has already terminated")
        if self is self.env.active_process:
            raise RuntimeError("a process is not allowed to interrupt itself")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._bound_step)
        self.env.schedule(interrupt_event, priority=self.env.PRIORITY_URGENT)

    # -- wiring states to events ----------------------------------------------

    def wait(self, event: Event, state: State) -> None:
        """Suspend until ``event`` fires, then dispatch ``state(value)``.

        An already-processed event continues inline with its recorded
        outcome, matching the generator engine's loop-around for
        processed yields.
        """
        self._state = state
        callbacks = event.callbacks
        if callbacks is None:
            if event._ok:
                state(event._value)
            else:
                event._defused = True
                self._on_failure(event._value)
            return
        self._target = event
        callbacks.append(self._bound_step)

    def wait_timeout(self, duration: float, state: State) -> None:
        """Suspend ``duration`` seconds, then dispatch ``state(None)``.

        Exactly ``wait(env.timeout(duration), state)``, with the pooled
        timeout fast path of :meth:`~repro.des.engine.Environment.timeout`
        inlined (one pool pop, one calendar entry, no intermediate
        calls) — this is the single hottest edge in a callback run.  Any
        monitored or unpooled case defers to ``env.timeout`` so the
        notification logic stays in one place.
        """
        env = self.env
        pool = env._timeout_pool
        if pool and env._unmonitored and env._schedule_fast:
            if duration < 0:
                raise ValueError(f"negative delay {duration}")
            timeout = pool.pop()
            timeout.delay = duration
            timeout._value = None
            now = env._now
            when = now + duration
            env._eid = eid = env._eid + 1
            if when == now:
                env._ready.append(timeout)
            else:
                heappush(env._queue,
                         (when, _NORMAL_KEY_BASE + eid, timeout))
        else:
            timeout = env.timeout(duration)
        self._state = state
        self._target = timeout
        timeout.callbacks.append(self._bound_step)

    def hold(self, resource: "Resource", duration: float, next_state: State,
             monitor=None, priority: float = 0.0) -> None:
        """Request ``resource``, hold it ``duration`` seconds, release, go on.

        The canonical hold sequence, event for event the same as::

            with resource.request(priority=...) as grant:
                yield grant
                monitor.busy()
                yield env.timeout(duration)
                if resource.queue_length == 0:
                    monitor.idle()

        except that the release is quiet (no Release event) and an
        uncontended grant is a token claim (no grant event, no Request
        object — see :meth:`~repro.des.resources.Resource.try_acquire`),
        so an uncontended unmonitored hold costs exactly one calendar
        entry: the timeout.  ``duration`` must be a float computed
        *before* the request, exactly as a generator evaluates its
        timeout argument; holds whose service time depends on grant-time
        state (disk positioning, cable contention) write their own
        states instead.  ``monitor`` is an optional
        :class:`~repro.des.stats.UtilizationMonitor` marked busy at grant
        and idle at release when the queue drained.
        """
        self._h_res = resource
        self._h_next = next_state
        self._h_mon = monitor
        env = self.env
        if (env._unmonitored and not resource._waiting
                and len(resource.users) < resource.capacity):
            # Token grant (Resource.try_acquire inlined), straight to
            # the service timeout (wait_timeout inlined; _unmonitored
            # is already proven, so the pool gate shrinks to two tests).
            resource.users.append(_TOKEN)
            self._h_req = None
            if monitor is not None:
                monitor.busy()
            pool = env._timeout_pool
            if pool and env._schedule_fast:
                if duration < 0:
                    raise ValueError(f"negative delay {duration}")
                timeout = pool.pop()
                timeout.delay = duration
                timeout._value = None
                now = env._now
                when = now + duration
                env._eid = eid = env._eid + 1
                if when == now:
                    env._ready.append(timeout)
                else:
                    heappush(env._queue,
                             (when, _NORMAL_KEY_BASE + eid, timeout))
            else:
                timeout = env.timeout(duration)
            self._target = timeout
            timeout.callbacks.append(self._bound_hold)
        else:
            self._h_req = request = resource.request(priority)
            self._h_duration = duration
            self._state = self._hold_granted
            self._target = request
            request.callbacks.append(self._bound_step)

    def _hold_granted(self, _value: Any) -> None:
        monitor = self._h_mon
        if monitor is not None:
            monitor.busy()
        self._target = timeout = self.env.timeout(self._h_duration)
        timeout.callbacks.append(self._bound_hold)

    def _hold_done(self, _timeout: Event) -> None:
        # Registered directly on the service timeout (no _step hop), so
        # it carries _step's dispatch bookkeeping itself: process
        # context, failure capture, target reset.
        self._target = None
        env = self.env
        prev = env._active_process
        env._active_process = self
        try:
            resource = self._h_res
            monitor = self._h_mon
            if monitor is not None and resource.queue_length == 0:
                monitor.idle()
            request = self._h_req
            if request is None:
                resource.release_slot()
            else:
                resource.release_quiet(request)
                self._h_req = None
            self._h_next(None)
        except BaseException as exc:
            if self._value is PENDING:
                self._ok = False
                self._value = exc
                env.schedule(self)
            else:
                raise
        finally:
            env._active_process = prev

    # -- children -------------------------------------------------------------

    def adopt(self, child: "CallbackProcess | Event") -> None:
        """Count ``child`` toward this process's :meth:`join`.

        The callback-mode replacement for collecting spawned processes
        into ``env.all_of(...)``: an inline counter instead of a
        condition event.  A failed child fails this process (the AllOf
        contract); an already-finished child just doesn't count.
        """
        bound = self._bound_child
        if bound is None:
            bound = self._bound_child = self._child_done
        callbacks = child.callbacks
        if callbacks is None:
            if not child._ok:
                child._defused = True
                raise child._value
            return
        self._children += 1
        callbacks.append(bound)

    def join(self, state: State) -> None:
        """Dispatch ``state(None)`` once every adopted child has finished.

        With no children outstanding the state runs inline (the empty
        ``AllOf`` fires immediately in the reference semantics).
        """
        if self._children:
            self._join_state = state
        else:
            state(None)

    def _child_done(self, child: Event) -> None:
        if not child._ok:
            child._defused = True
            if self._value is PENDING:
                self._ok = False
                self._value = child._value
                self.env.schedule(self)
            return
        self._children -= 1
        if not self._children:
            state = self._join_state
            if state is not None:
                self._join_state = None
                self._dispatch(state, None)

    # -- finishing ------------------------------------------------------------

    def _finish(self, value: Any = None) -> None:
        """End the process successfully with ``value``.

        Unmonitored, the completion event is skipped entirely: the
        process flips straight to processed and any registered waiters
        are resumed inline, at the same timestamp the reference path
        would have reached them one calendar entry later (same-time
        micro-reordering — pinned result-invariant by the perturbation
        harness).  With a monitor attached it triggers normally so every
        observer sees a real completion event in the expanded sequence.
        """
        env = self.env
        if env._unmonitored:
            callbacks = self.callbacks
            self._ok = True
            self._value = value
            self.callbacks = None
            for callback in callbacks:
                callback(self)
        else:
            self.succeed(value)

    # -- engine plumbing ------------------------------------------------------

    def _step(self, trigger: Event) -> None:
        """Advance the state machine with the outcome of ``trigger``."""
        target = self._target
        if trigger is not target and target is not None:
            # Interrupted: detach from the abandoned wait target (the
            # registered callback is _bound_step for wait edges,
            # _bound_hold for a hold parked on its service timeout).
            if target.callbacks is not None:
                try:
                    target.callbacks.remove(self._bound_step)
                except ValueError:
                    try:
                        target.callbacks.remove(self._bound_hold)
                    except ValueError:  # pragma: no cover - defensive
                        pass
        self._target = None
        env = self.env
        prev = env._active_process
        env._active_process = self
        try:
            if trigger._ok:
                self._state(trigger._value)
            else:
                trigger._defused = True
                self._on_failure(trigger._value)
        except BaseException as exc:
            if self._value is PENDING:
                self._ok = False
                self._value = exc
                env.schedule(self)
            else:
                raise
        finally:
            env._active_process = prev

    def _dispatch(self, state: State, value: Any) -> None:
        """Run one state with process context and failure capture."""
        env = self.env
        prev = env._active_process
        env._active_process = self
        try:
            state(value)
        except BaseException as exc:
            if self._value is PENDING:
                self._ok = False
                self._value = exc
                env.schedule(self)
            else:
                raise
        finally:
            env._active_process = prev

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "dead"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"

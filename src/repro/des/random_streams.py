"""Seeded random-variate streams for simulation models.

Every stochastic model component draws from its own :class:`RandomStream`, so
runs are reproducible and components are statistically independent.  Streams
are spawned from a :class:`StreamFactory` keyed by name, so adding a new
component does not perturb the draws of existing ones.

Streams accept an optional *observer* — a callable invoked (with the
stream) before every draw.  The runtime sanitizer
(:mod:`repro.check.sanitize`) uses this to detect two components sharing
one stream, which would entangle their draw sequences and make results
depend on event interleaving.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Optional

__all__ = ["RandomStream", "StreamFactory"]


class RandomStream:
    """A named, seeded source of the variates the paper's models need."""

    def __init__(self, seed: int, name: str = ""):
        self._rng = random.Random(seed)
        self.name = name
        #: Called with this stream before every draw (sanitizer hook).
        self.observer: Optional[Callable[["RandomStream"], None]] = None

    def _observed(self) -> None:
        if self.observer is not None:
            self.observer(self)

    def exponential(self, mean: float) -> float:
        """Exponential variate with the given mean (interarrival times)."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        self._observed()
        return self._rng.expovariate(1.0 / mean)

    def uniform(self, low: float, high: float) -> float:
        """Uniform variate on [low, high] (seek times, rotational delay)."""
        if high < low:
            raise ValueError(f"empty interval [{low}, {high}]")
        self._observed()
        return self._rng.uniform(low, high)

    def uniform_mean(self, mean: float) -> float:
        """Uniform variate on [0, 2*mean] — the paper's seek/rotation model.

        §5.1: "The seek time and rotational latency are assumed to be
        independent uniform random variables" with the catalogued averages.
        """
        if mean < 0:
            raise ValueError(f"mean must be non-negative, got {mean}")
        self._observed()
        return self._rng.uniform(0.0, 2.0 * mean)

    def bernoulli(self, probability: float) -> bool:
        """True with the given probability (packet loss)."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability out of range: {probability}")
        self._observed()
        return self._rng.random() < probability

    def choice(self, sequence):
        """Uniform choice from a non-empty sequence."""
        self._observed()
        return self._rng.choice(sequence)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer on [low, high]."""
        self._observed()
        return self._rng.randint(low, high)

    def shuffled(self, sequence) -> list:
        """A shuffled copy of ``sequence``."""
        self._observed()
        items = list(sequence)
        self._rng.shuffle(items)
        return items

    def __repr__(self) -> str:
        label = self.name or "anonymous"
        return f"<RandomStream {label}>"


class StreamFactory:
    """Spawns independent named streams from one master seed.

    The child seed is a hash of (master seed, name), so the draw sequence of
    one component never depends on how many other components exist.
    """

    def __init__(self, master_seed: int = 0):
        self.master_seed = master_seed
        self._issued: dict[str, RandomStream] = {}
        self._observer: Optional[Callable[[RandomStream], None]] = None

    def stream(self, name: str) -> RandomStream:
        """The stream for ``name`` (created on first use, then cached)."""
        if name not in self._issued:
            child_seed = self._derive(name)
            issued = RandomStream(child_seed, name=name)
            issued.observer = self._observer
            self._issued[name] = issued
        return self._issued[name]

    def attach_observer(self,
                        observer: Callable[[RandomStream], None]) -> None:
        """Install ``observer`` on every issued and future stream."""
        self._observer = observer
        for stream in self._issued.values():
            stream.observer = observer

    def detach_observer(self) -> None:
        """Remove the observer from every issued and future stream."""
        self._observer = None
        for stream in self._issued.values():
            stream.observer = None

    def issued_streams(self) -> list[RandomStream]:
        """The streams issued so far, in creation order."""
        return list(self._issued.values())

    def _derive(self, name: str) -> int:
        # A small, stable string hash (Python's hash() is salted per run).
        digest = 2166136261
        for char in f"{self.master_seed}/{name}":
            digest = (digest ^ ord(char)) * 16777619 % (1 << 64)
        return digest

    def __contains__(self, name: str) -> bool:
        return name in self._issued


def _erlang_check() -> float:  # pragma: no cover - numeric sanity helper
    """Quick internal sanity: mean of exponential(2.0) over many draws ≈ 2."""
    stream = RandomStream(1)
    draws = [stream.exponential(2.0) for _ in range(10000)]
    return math.fsum(draws) / len(draws)

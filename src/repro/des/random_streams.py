"""Seeded random-variate streams for simulation models.

Every stochastic model component draws from its own :class:`RandomStream`, so
runs are reproducible and components are statistically independent.  Streams
are spawned from a :class:`StreamFactory` keyed by name, so adding a new
component does not perturb the draws of existing ones.

Streams accept an optional *observer* — a callable invoked (with the
stream) before every draw.  The runtime sanitizer
(:mod:`repro.check.sanitize`) uses this to detect two components sharing
one stream, which would entangle their draw sequences and make results
depend on event interleaving.

**Block sampling.**  The float distributions (:meth:`~RandomStream.exponential`,
:meth:`~RandomStream.uniform`, :meth:`~RandomStream.uniform_mean`,
:meth:`~RandomStream.bernoulli`) do not call into :mod:`random`'s
Python-level wrappers per draw.  Instead each stream buffers a block of
raw ``random()`` uniforms (refilled ``block_size`` at a time straight from
the C core) and applies the *exact* arithmetic CPython's ``expovariate``
and ``uniform`` wrappers would apply — ``-log(1-u)/lambd`` and
``a+(b-a)*u`` — so the draw sequence is bit-identical to the per-sample
reference, pinned by tests across refill-boundary block sizes.

The integer/sequence methods (:meth:`~RandomStream.choice`,
:meth:`~RandomStream.randint`, :meth:`~RandomStream.shuffled`) consume the
Mersenne Twister core through ``getrandbits``, whose word cadence differs
from ``random()``'s, so they cannot coexist with read-ahead buffering.
The first such call permanently *degrades* the stream to per-sample mode:
the core is reseeded and fast-forwarded by exactly the number of uniforms
actually handed out (the buffered-but-unserved read-ahead is discarded),
leaving it in the state a per-sample run would occupy.  Served-draw
accounting is O(1) — ``refills * block_size - len(block)`` — so the only
cost is the one-time replay, proportional to draws so far.  Components
that mix integer and float draws should therefore split them across two
named streams; the hot paths in :mod:`repro.simdisk` and
:mod:`repro.sim.workload` are float-only and never degrade.
"""

from __future__ import annotations

import math
import random
from math import log as _log
from typing import Callable, Optional

__all__ = ["RandomStream", "StreamFactory", "DEFAULT_BLOCK_SIZE"]

#: How many raw uniforms each stream buffers per refill.  Refills cost one
#: C call per uniform, the same as the per-sample reference pays — the
#: block only exists to skip :mod:`random`'s Python-level wrapper frames.
DEFAULT_BLOCK_SIZE = 256


class RandomStream:
    """A named, seeded source of the variates the paper's models need."""

    __slots__ = ("_rng", "_seed", "name", "observer", "_block_size",
                 "_block", "_refills", "_buffered")

    def __init__(self, seed: int, name: str = "",
                 block_size: int = DEFAULT_BLOCK_SIZE):
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self._rng = random.Random(seed)
        self._seed = seed
        self.name = name
        #: Called with this stream before every draw (sanitizer hook).
        self.observer: Optional[Callable[["RandomStream"], None]] = None
        self._block_size = block_size
        #: Buffered raw uniforms, stored reversed so ``pop()`` serves them
        #: in draw order.  Always empty once the stream has degraded.
        self._block: list[float] = []
        self._refills = 0
        self._buffered = True

    def _observed(self) -> None:
        if self.observer is not None:
            self.observer(self)

    # -- block machinery -----------------------------------------------------

    def _refill(self) -> list[float]:
        """Draw a fresh block of raw uniforms from the core."""
        draw = self._rng.random
        block = self._block = [draw() for _ in range(self._block_size)]
        block.reverse()
        self._refills += 1
        return block

    def _degrade(self) -> None:
        """Switch to per-sample mode, discarding unserved read-ahead.

        The core is reseeded and fast-forwarded by exactly the number of
        uniforms already handed out, so the next draw — through whichever
        ``random.Random`` wrapper — sees the state a per-sample run would
        see.  One-way until :meth:`reset`.
        """
        if not self._buffered:
            return
        self._buffered = False
        served = self._refills * self._block_size - len(self._block)
        rng = self._rng
        rng.seed(self._seed)
        draw = rng.random
        for _ in range(served):
            draw()
        self._block = []

    def reset(self) -> None:
        """Return the stream to its initial seeded state (warm-start)."""
        self._rng.seed(self._seed)
        self._block = []
        self._refills = 0
        self._buffered = True

    # -- distributions -------------------------------------------------------

    def exponential(self, mean: float) -> float:
        """Exponential variate with the given mean (interarrival times)."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        if self.observer is not None:
            self.observer(self)
        block = self._block
        if not block:
            if not self._buffered:
                return self._rng.expovariate(1.0 / mean)
            block = self._refill()
        # Bit-identical to random.Random.expovariate(1.0 / mean).
        return -_log(1.0 - block.pop()) / (1.0 / mean)

    def uniform(self, low: float, high: float) -> float:
        """Uniform variate on [low, high] (seek times, rotational delay)."""
        if high < low:
            raise ValueError(f"empty interval [{low}, {high}]")
        if self.observer is not None:
            self.observer(self)
        block = self._block
        if not block:
            if not self._buffered:
                return self._rng.uniform(low, high)
            block = self._refill()
        # Bit-identical to random.Random.uniform(low, high).
        return low + (high - low) * block.pop()

    def uniform_mean(self, mean: float) -> float:
        """Uniform variate on [0, 2*mean] — the paper's seek/rotation model.

        §5.1: "The seek time and rotational latency are assumed to be
        independent uniform random variables" with the catalogued averages.
        """
        if mean < 0:
            raise ValueError(f"mean must be non-negative, got {mean}")
        if self.observer is not None:
            self.observer(self)
        block = self._block
        if not block:
            if not self._buffered:
                return self._rng.uniform(0.0, 2.0 * mean)
            block = self._refill()
        # Bit-identical to random.Random.uniform(0.0, 2.0 * mean).
        return 0.0 + (2.0 * mean - 0.0) * block.pop()

    def bernoulli(self, probability: float) -> bool:
        """True with the given probability (packet loss)."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability out of range: {probability}")
        if self.observer is not None:
            self.observer(self)
        block = self._block
        if not block:
            if not self._buffered:
                return self._rng.random() < probability
            block = self._refill()
        return block.pop() < probability

    def choice(self, sequence):
        """Uniform choice from a non-empty sequence."""
        self._observed()
        self._degrade()
        return self._rng.choice(sequence)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer on [low, high]."""
        self._observed()
        self._degrade()
        return self._rng.randint(low, high)

    def shuffled(self, sequence) -> list:
        """A shuffled copy of ``sequence``."""
        self._observed()
        self._degrade()
        items = list(sequence)
        self._rng.shuffle(items)
        return items

    def __repr__(self) -> str:
        label = self.name or "anonymous"
        return f"<RandomStream {label}>"


class StreamFactory:
    """Spawns independent named streams from one master seed.

    The child seed is a hash of (master seed, name), so the draw sequence of
    one component never depends on how many other components exist.
    """

    def __init__(self, master_seed: int = 0,
                 block_size: int = DEFAULT_BLOCK_SIZE):
        self.master_seed = master_seed
        self.block_size = block_size
        self._issued: dict[str, RandomStream] = {}
        self._observer: Optional[Callable[[RandomStream], None]] = None

    def stream(self, name: str) -> RandomStream:
        """The stream for ``name`` (created on first use, then cached)."""
        if name not in self._issued:
            child_seed = self._derive(name)
            issued = RandomStream(child_seed, name=name,
                                  block_size=self.block_size)
            issued.observer = self._observer
            self._issued[name] = issued
        return self._issued[name]

    def attach_observer(self,
                        observer: Callable[[RandomStream], None]) -> None:
        """Install ``observer`` on every issued and future stream."""
        self._observer = observer
        for stream in self._issued.values():
            stream.observer = observer

    def detach_observer(self) -> None:
        """Remove the observer from every issued and future stream."""
        self._observer = None
        for stream in self._issued.values():
            stream.observer = None

    def issued_streams(self) -> list[RandomStream]:
        """The streams issued so far, in creation order."""
        return list(self._issued.values())

    def reset(self) -> None:
        """Reseed every issued stream to its initial state (warm-start).

        A reset factory reproduces a fresh factory's draws byte-for-byte
        without invalidating the references components hold to their
        streams — the warm-start path in :mod:`repro.sim.sweep` depends
        on this.
        """
        for stream in self._issued.values():
            stream.reset()

    def _derive(self, name: str) -> int:
        # A small, stable string hash (Python's hash() is salted per run).
        digest = 2166136261
        for char in f"{self.master_seed}/{name}":
            digest = (digest ^ ord(char)) * 16777619 % (1 << 64)
        return digest

    def __contains__(self, name: str) -> bool:
        return name in self._issued


def _erlang_check() -> float:  # pragma: no cover - numeric sanity helper
    """Quick internal sanity: mean of exponential(2.0) over many draws ≈ 2."""
    stream = RandomStream(1)
    draws = [stream.exponential(2.0) for _ in range(10000)]
    return math.fsum(draws) / len(draws)

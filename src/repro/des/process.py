"""Generator-based simulation processes.

A *process* is a Python generator that yields :class:`~repro.des.events.Event`
objects.  Each yield suspends the process until the yielded event is
processed; the event's value is sent back into the generator (or its
exception thrown in, for failed events).

A :class:`Process` is itself an event: it triggers when the generator
returns (value = the generator's return value) or raises.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from .events import Event, Interrupt, PENDING

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Environment

__all__ = ["Process", "ProcessGenerator"]

#: The type a process function must return.
ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """Wraps a generator and steps it through the event calendar."""

    __slots__ = ("_generator", "_target", "_bound_resume")

    def __init__(self, env: "Environment", generator: ProcessGenerator):
        if not hasattr(generator, "throw"):
            raise TypeError(
                f"{generator!r} is not a generator; did you call the "
                "process function?"
            )
        super().__init__(env)
        self._generator = generator
        self._target: Event | None = None
        # self._resume is looked up once: every attribute access on a
        # method otherwise allocates a fresh bound-method object, and the
        # resume callback is registered once per yield.
        self._bound_resume = self._resume
        # Kick the process off at the current simulation time via an
        # initialisation event so that process start order follows
        # creation order.
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks.append(self._bound_resume)
        env.schedule(init)

    # -- public API ----------------------------------------------------------

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is PENDING

    @property
    def target(self) -> Event | None:
        """The event this process is currently waiting on (None if running)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        The process stops waiting on its current target and instead receives
        the interrupt at the current simulation time.  Interrupting a dead
        process is an error; interrupting yourself is too.
        """
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has already terminated")
        if self is self.env.active_process:
            raise RuntimeError("a process is not allowed to interrupt itself")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._bound_resume)
        self.env.schedule(interrupt_event, priority=self.env.PRIORITY_URGENT)

    # -- engine plumbing ------------------------------------------------------

    def _resume(self, trigger: Event) -> None:
        """Advance the generator with the outcome of ``trigger``."""
        env = self.env
        # If we were interrupted, detach from the event we were waiting on
        # (ordered so the common trigger-is-target resume does one test).
        if trigger is not self._target and self._target is not None:
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._bound_resume)
                except ValueError:  # pragma: no cover - defensive
                    pass
        self._target = None
        env._active_process = self
        generator = self._generator
        try:
            while True:
                if trigger._ok:
                    next_event = generator.send(trigger._value)
                else:
                    trigger._defused = True
                    next_event = generator.throw(trigger._value)
                # Fetch-first instead of isinstance: the attribute load
                # has to happen anyway, and a non-event yield surfaces as
                # AttributeError on the slotted access (free on the hot
                # path under CPython 3.11 zero-cost try).
                try:
                    callbacks = next_event.callbacks
                    other_env = next_event.env
                except AttributeError:
                    raise RuntimeError(
                        f"process yielded a non-event: {next_event!r}"
                    ) from None
                if other_env is not env:
                    raise RuntimeError(
                        "process yielded an event from another environment"
                    )
                if callbacks is None:
                    # Already processed: loop around with its outcome.
                    trigger = next_event
                    continue
                self._target = next_event
                callbacks.append(self._bound_resume)
                return
        except StopIteration as exc:
            self._ok = True
            self._value = exc.value
            env.schedule(self)
        except BaseException as exc:
            self._ok = False
            self._value = exc
            env.schedule(self)
        finally:
            env._active_process = None

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", "process")
        state = "alive" if self.is_alive else "dead"
        return f"<Process {name} {state}>"

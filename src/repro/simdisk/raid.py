"""A local RAID array behind a single controller — the §6 comparison.

§6: "The aggregation of data-rates proposed in the Swift architecture
generalizes that proposed by the Raid disk array system in its ability to
support data-rates beyond that of the single disk array controller.  In
fact, Swift can concurrently drive a collection of Raids as high speed
devices."

The array stripes each block over its member spindles (which work in
parallel), but *every byte crosses the one controller*, so sustained
throughput is capped by ``controller_rate`` no matter how many members
the array has.  The class is Disk-duck-typed (``resource``, ``monitor``,
``block_service_time``, counters), so the §5 simulation model can use
RAID arrays as storage agents unchanged — which is exactly how the bench
demonstrates Swift scaling past the controller cap.
"""

from __future__ import annotations

from typing import Optional

from ..des import Environment, RandomStream, Resource, UtilizationMonitor
from ..units import MB
from .models import DISK_CATALOG, DiskSpec

__all__ = ["RaidArray"]


class RaidArray:
    """A RAID-4/5-style array: N member spindles, one controller."""

    def __init__(self, env: Environment,
                 member_spec: DiskSpec | None = None,
                 num_members: int = 8,
                 controller_rate: float = 4_000_000.0,
                 controller_overhead_s: float = 0.5e-3,
                 stream: Optional[RandomStream] = None):
        if num_members < 2:
            raise ValueError("an array needs at least two member disks")
        if controller_rate <= 0:
            raise ValueError("controller rate must be positive")
        if controller_overhead_s < 0:
            raise ValueError("controller overhead must be non-negative")
        self.env = env
        self.member_spec = member_spec or DISK_CATALOG["Fujitsu M2372K"]
        self.num_members = num_members
        self.controller_rate_bytes_per_s = controller_rate
        self.controller_overhead_s = controller_overhead_s
        self.stream = stream
        #: The controller is the shared resource; member parallelism is
        #: folded into the per-block service time.
        self.resource = Resource(env, capacity=1)
        self.monitor = UtilizationMonitor(env)
        self.blocks_served = 0
        self.bytes_served = 0

    # -- Disk duck-type -----------------------------------------------------------

    def reset(self) -> None:
        """Forget run state (warm-start): controller queue, utilization
        window and counters — the array half of the Disk duck-type."""
        self.resource.reset()
        self.monitor.clear()
        self.blocks_served = 0
        self.bytes_served = 0

    def draw_positioning_time(self) -> float:
        """Member positioning (seek + rotation), random if seeded."""
        spec = self.member_spec
        if self.stream is None:
            return spec.avg_seek_s + spec.avg_rotation_s
        return (self.stream.uniform_mean(spec.avg_seek_s)
                + self.stream.uniform_mean(spec.avg_rotation_s))

    def block_service_time(self, nbytes: int) -> float:
        """Service time for one block through the array.

        The block is cut across the members, which position and transfer
        in parallel; the whole block still serialises through the
        controller.  The slower of the two paths governs.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        member_chunk = nbytes / self.num_members
        member_time = (
            self.draw_positioning_time()
            + member_chunk / self.member_spec.transfer_rate_bytes_per_s)
        controller_time = (self.controller_overhead_s
                           + nbytes / self.controller_rate_bytes_per_s)
        return max(member_time, controller_time)

    def access(self, nbytes: int, blocks: int = 1, sequential: bool = False,
               at_block: Optional[int] = None):
        """Process method mirroring :meth:`repro.simdisk.disk.Disk.access`.

        ``sequential`` lets follow-on blocks skip member positioning (the
        members stream); the controller cost always applies.
        """
        if blocks < 1:
            raise ValueError(f"blocks must be >= 1, got {blocks}")
        started = self.env.now
        with self.resource.request() as grant:
            yield grant
            self.monitor.busy()
            try:
                for index in range(blocks):
                    if index == 0 or not sequential:
                        service = self.block_service_time(nbytes)
                    else:
                        service = max(
                            nbytes / self.num_members
                            / self.member_spec.transfer_rate_bytes_per_s,
                            self.controller_overhead_s
                            + nbytes / self.controller_rate_bytes_per_s)
                    yield self.env.timeout(service)
                    self.blocks_served += 1
                    self.bytes_served += nbytes
            finally:
                if self.resource.queue_length == 0:
                    self.monitor.idle()
        return self.env.now - started

    def utilization(self) -> float:
        """Controller busy fraction."""
        return self.monitor.utilization()

    @property
    def controller_rate(self) -> float:
        """Bytes/second through the controller (suffixed-field alias)."""
        return self.controller_rate_bytes_per_s

    @property
    def queue_length(self) -> int:
        """Requests waiting at the controller."""
        return self.resource.queue_length

    def __repr__(self) -> str:
        rate_mb_s = self.controller_rate_bytes_per_s / MB
        return (f"<RaidArray {self.num_members}x{self.member_spec.name} "
                f"controller={rate_mb_s:.1f}MB/s>")

"""Digital-audio-tape storage — the paper's "alternative technology".

§7: "The Swift architecture also has the flexibility to use alternative
data storage technologies, such as arrays of digital audio tapes."

A DAT drive streams slowly but steadily once positioned; positioning is
catastrophic (tens of seconds of shuttling).  Striping an archive object
over an array of DAT drives multiplies the *streaming* rate — which is the
whole point of using Swift in front of them — while the positioning cost
is paid once per drive, in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..des import Environment, RandomStream, Resource, UtilizationMonitor
from ..units import kb_per_s

__all__ = ["TapeSpec", "DAT_DDS1", "TapeDrive"]


@dataclass(frozen=True)
class TapeSpec:
    """Streaming-device parameters."""

    name: str
    avg_position_s: float               # locate/shuttle to a target block
    transfer_rate_bytes_per_s: float    # while streaming
    capacity_bytes: int

    def __post_init__(self):
        if self.avg_position_s < 0:
            raise ValueError("positioning time must be non-negative")
        if self.transfer_rate_bytes_per_s <= 0:
            raise ValueError("transfer rate must be positive")
        if self.capacity_bytes <= 0:
            raise ValueError("capacity must be positive")

    @property
    def transfer_rate(self) -> float:
        """Bytes/second while streaming (alias for the suffixed field)."""
        return self.transfer_rate_bytes_per_s


#: The 1991-era DDS-1 digital audio tape: ~183 KB/s streaming, ~20 s
#: average locate, 1.3 GB per cartridge.
DAT_DDS1 = TapeSpec(
    name="DAT DDS-1",
    avg_position_s=20.0,
    transfer_rate_bytes_per_s=kb_per_s(183.0),
    capacity_bytes=1_300_000_000,
)


class TapeDrive:
    """One tape drive with a head position.

    Sequential reads after a locate stream at the media rate; any
    non-contiguous access pays a fresh locate.
    """

    def __init__(self, env: Environment, spec: TapeSpec = DAT_DDS1,
                 stream: Optional[RandomStream] = None):
        self.env = env
        self.spec = spec
        self.stream = stream
        self.resource = Resource(env, capacity=1)
        self.monitor = UtilizationMonitor(env)
        self.bytes_served = 0
        self._position: Optional[int] = None  # byte offset after the head

    def draw_position_time(self) -> float:
        """One locate (random if seeded)."""
        if self.stream is None:
            return self.spec.avg_position_s
        return self.stream.uniform_mean(self.spec.avg_position_s)

    def transfer(self, offset: int, nbytes: int):
        """Process method: move ``nbytes`` at ``offset`` through the drive.

        Returns the service time.  Contiguous follow-on transfers skip the
        locate.
        """
        if offset < 0 or nbytes < 0:
            raise ValueError("offset and nbytes must be non-negative")
        started = self.env.now
        with self.resource.request() as grant:
            yield grant
            self.monitor.busy()
            try:
                if self._position != offset:
                    yield self.env.timeout(self.draw_position_time())
                yield self.env.timeout(
                    nbytes / self.spec.transfer_rate_bytes_per_s)
                self._position = offset + nbytes
                self.bytes_served += nbytes
            finally:
                if self.resource.queue_length == 0:
                    self.monitor.idle()
        return self.env.now - started

    def utilization(self) -> float:
        """Busy fraction of the drive."""
        return self.monitor.utilization()

    def __repr__(self) -> str:
        return f"<TapeDrive {self.spec.name} at={self._position}>"

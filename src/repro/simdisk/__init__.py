"""Storage substrate: disk models, buffer cache, block file system, SCSI path."""

from .cache import BufferCache, CacheStats
from .disk import Disk, DiskAccess
from .filesystem import (
    FileExists,
    FileNotFound,
    FileSystemError,
    LocalFileSystem,
)
from .models import DISK_CATALOG, FIGURE_5_6_DISKS, DiskSpec
from .raid import RaidArray
from .tape import DAT_DDS1, TapeDrive, TapeSpec
from .scsi import ScsiMode, make_scsi_filesystem

__all__ = [
    "Disk",
    "DiskAccess",
    "DiskSpec",
    "DISK_CATALOG",
    "FIGURE_5_6_DISKS",
    "BufferCache",
    "CacheStats",
    "LocalFileSystem",
    "FileSystemError",
    "FileNotFound",
    "FileExists",
    "ScsiMode",
    "make_scsi_filesystem",
    "RaidArray",
    "TapeDrive",
    "TapeSpec",
    "DAT_DDS1",
]

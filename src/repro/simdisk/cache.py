"""An LRU buffer cache with the cold-cache controls the paper relies on.

§4: "Maintaining cold caches was achieved by using /etc/umount to flush the
caches as a side effect."  :meth:`BufferCache.flush` is that umount.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional

__all__ = ["BufferCache", "CacheStats"]


class CacheStats:
    """Hit/miss counters for one cache."""

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Hits over accesses; 0.0 when the cache was never touched."""
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = self.writebacks = 0


class BufferCache:
    """Fixed-capacity LRU cache of disk blocks.

    Keys are arbitrary hashable block identifiers; values are the cached
    block payloads.  Dirty blocks are tracked so a flush can report what
    would have to be written back.
    """

    def __init__(self, capacity_blocks: int):
        if capacity_blocks < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity_blocks}")
        self.capacity_blocks = capacity_blocks
        self._blocks: OrderedDict[Hashable, bytes] = OrderedDict()
        self._dirty: set[Hashable] = set()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._blocks

    def lookup(self, key: Hashable) -> Optional[bytes]:
        """Return the cached block (promoting it), or None on a miss."""
        block = self._blocks.get(key)
        if block is None:
            self.stats.misses += 1
            return None
        self._blocks.move_to_end(key)
        self.stats.hits += 1
        return block

    def insert(self, key: Hashable, block: bytes, dirty: bool = False) -> list[Hashable]:
        """Install a block, evicting LRU entries as needed.

        Returns the keys of evicted *dirty* blocks (the caller must write
        them back).
        """
        writebacks: list[Hashable] = []
        if key in self._blocks:
            self._blocks.move_to_end(key)
        self._blocks[key] = block
        if dirty:
            self._dirty.add(key)
        while len(self._blocks) > self.capacity_blocks:
            victim, _ = self._blocks.popitem(last=False)
            self.stats.evictions += 1
            if victim in self._dirty:
                self._dirty.discard(victim)
                self.stats.writebacks += 1
                writebacks.append(victim)
        return writebacks

    def clean(self, key: Hashable) -> None:
        """Mark a block as written back."""
        self._dirty.discard(key)

    def dirty_keys(self) -> set[Hashable]:
        """The set of blocks that would need write-back on flush."""
        return set(self._dirty)

    def invalidate(self, key: Hashable) -> None:
        """Drop one block without write-back accounting."""
        self._blocks.pop(key, None)
        self._dirty.discard(key)

    def flush(self) -> list[Hashable]:
        """Empty the cache (the /etc/umount trick); returns dirty keys."""
        dirty = sorted(self._dirty, key=repr)
        self._blocks.clear()
        self._dirty.clear()
        return dirty

"""Disk device model: a shared resource with positioned-access service times.

This is exactly the §5.1 model: "The disk devices are modeled as a shared
resource.  Multiblock requests are allowed to complete before the resource is
relinquished.  The time to transfer a block consists of the seek time, the
rotational delay and the time to transfer the data from disk.  The seek time
and rotational latency are assumed to be independent uniform random
variables."

Sequential transfers (used by the prototype emulation, where files are laid
out contiguously) can skip the positioning cost after the first block.
"""

from __future__ import annotations

from typing import Optional

from ..des import (
    CallbackProcess,
    Environment,
    RandomStream,
    Resource,
    UtilizationMonitor,
)
from .models import DiskSpec

__all__ = ["Disk", "DiskAccess"]


class Disk:
    """One spindle as a DES component.

    Parameters
    ----------
    env:
        Simulation environment.
    spec:
        Device parameters from :mod:`repro.simdisk.models`.
    stream:
        Random stream for seek/rotation draws.  ``None`` uses the expected
        values deterministically (useful for calibration tests).
    """

    def __init__(self, env: Environment, spec: DiskSpec,
                 stream: Optional[RandomStream] = None):
        self.env = env
        self.spec = spec
        self.stream = stream
        self.resource = Resource(env, capacity=1)
        self.monitor = UtilizationMonitor(env)
        self.blocks_served = 0
        self.bytes_served = 0
        #: Disk block the head sits after, for cross-request sequentiality
        #: (None = unknown position, e.g. after an unaddressed access).
        self._head: Optional[int] = None

    def reset(self) -> None:
        """Forget run state (warm-start): spindle queue, utilization
        window, counters and head position.  The spec and the stream
        *binding* survive; the caller reseeds the streams themselves
        (see :meth:`repro.des.random_streams.StreamFactory.reset`)."""
        self.resource.reset()
        self.monitor.clear()
        self.blocks_served = 0
        self.bytes_served = 0
        self._head = None

    # -- service time draws ----------------------------------------------------

    def draw_positioning_time(self) -> float:
        """One seek + one rotational delay (random if a stream was given)."""
        if self.stream is None:
            return self.spec.avg_seek_s + self.spec.avg_rotation_s
        return (self.stream.uniform_mean(self.spec.avg_seek_s)
                + self.stream.uniform_mean(self.spec.avg_rotation_s))

    def block_service_time(self, nbytes: int) -> float:
        """Positioned access time for one block of ``nbytes``."""
        return self.draw_positioning_time() + self.spec.transfer_time(nbytes)

    # -- DES process methods -----------------------------------------------------

    def access(self, nbytes: int, blocks: int = 1, sequential: bool = False,
               at_block: Optional[int] = None,
               per_block_extra_s: float = 0.0,
               on_block=None):
        """Acquire the spindle and transfer ``blocks`` blocks of ``nbytes``.

        Per the paper, a multiblock request holds the resource until every
        block is done, and each block pays full positioning.  With
        ``sequential=True`` only the first block pays positioning — used for
        contiguous-layout file transfers in the prototype emulation.

        ``at_block`` is the starting disk-block address; when it continues
        exactly where the head already sits, even the first block's
        positioning is skipped (cross-request sequential access, the reason
        single-block sequential reads run at media speed on real disks).

        ``per_block_extra_s`` adds fixed per-block service (controller /
        driver / rotational-miss overhead) *inside* the spindle hold, so
        it consumes disk capacity like the real thing.

        ``on_block(index)`` is called as each block completes, while the
        request still holds the spindle — buffer caches use it to publish
        blocks to waiting readers as they stream off the platter.

        This is a process method: ``yield env.process(disk.access(...))``.
        Returns total service time.
        """
        if blocks < 1:
            raise ValueError(f"blocks must be >= 1, got {blocks}")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if per_block_extra_s < 0:
            raise ValueError("per_block_extra_s must be non-negative")
        started = self.env.now
        with self.resource.request() as grant:
            yield grant
            # The head position must be read *after* the grant: requests
            # that queued ahead of us may have moved it.
            head_continues = (at_block is not None
                              and at_block == self._head)
            self.monitor.busy()
            try:
                for index in range(blocks):
                    service = self.spec.transfer_time(nbytes) \
                        + per_block_extra_s
                    if index == 0:
                        if not head_continues:
                            service += self.draw_positioning_time()
                    elif not sequential:
                        service += self.draw_positioning_time()
                    yield self.env.timeout(service)
                    self.blocks_served += 1
                    self.bytes_served += nbytes
                    if on_block is not None:
                        on_block(index)
            finally:
                self._head = (at_block + blocks
                              if at_block is not None else None)
                if self.resource.count <= 1:
                    self.monitor.idle()
        return self.env.now - started

    def access_op(self, nbytes: int, blocks: int = 1,
                  sequential: bool = False,
                  at_block: Optional[int] = None,
                  per_block_extra_s: float = 0.0,
                  on_block=None) -> "DiskAccess":
        """Callback-mode :meth:`access`: the same service sequence with
        far fewer calendar entries.

        Returns a started :class:`DiskAccess` — an event a generator
        process can ``yield`` (value: total service time) or another
        callback process can ``wait`` on.  Semantics, draw order and
        timestamps match :meth:`access` exactly; when the engine permits
        (:attr:`~repro.des.engine.Environment.span_coalescing`) and no
        ``on_block`` needs intermediate completions, the whole
        multiblock chain lands as one pre-drawn completion event.
        """
        return DiskAccess(self, nbytes, blocks, sequential, at_block,
                          per_block_extra_s, on_block)

    # -- bookkeeping -----------------------------------------------------------

    def utilization(self) -> float:
        """Fraction of simulated time the spindle was busy."""
        return self.monitor.utilization()

    @property
    def queue_length(self) -> int:
        """Requests currently waiting for the spindle."""
        return self.resource.queue_length

    def __repr__(self) -> str:
        return f"<Disk {self.spec.name} served={self.blocks_served} blocks>"


class DiskAccess(CallbackProcess):
    """Callback twin of :meth:`Disk.access` (started immediately).

    Block for block the same as the generator: head continuation read
    after the grant, per-block positioning draws in loop order, counters
    and ``on_block`` at each block completion, head update and
    idle-if-last before release.  The disk chain is a span-coalescing
    site: with no ``on_block`` and no monitor attached, the per-block
    service times are pre-drawn in exact reference stream order — legal
    because this process holds the spindle and per-disk streams are
    drawn only by the spindle holder — and land as a single computed
    completion (:meth:`~repro.des.engine.Environment.timeout_at`).
    """

    __slots__ = ("disk", "nbytes", "blocks", "sequential", "at_block",
                 "per_block_extra_s", "on_block",
                 "_started", "_grant", "_holding", "_head_continues",
                 "_index")

    def __init__(self, disk: Disk, nbytes: int, blocks: int = 1,
                 sequential: bool = False, at_block: Optional[int] = None,
                 per_block_extra_s: float = 0.0, on_block=None):
        # Argument validation must precede the immediate start.
        if blocks < 1:
            raise ValueError(f"blocks must be >= 1, got {blocks}")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if per_block_extra_s < 0:
            raise ValueError("per_block_extra_s must be non-negative")
        self.disk = disk
        self.nbytes = nbytes
        self.blocks = blocks
        self.sequential = sequential
        self.at_block = at_block
        self.per_block_extra_s = per_block_extra_s
        self.on_block = on_block
        self._holding = False
        super().__init__(disk.env, immediate=True)

    def _start(self, value):
        self._started = self.env.now
        resource = self.disk.resource
        if resource.try_acquire():
            self._grant = None
            self._granted(None)
        else:
            self._grant = grant = resource.request()
            self.wait(grant, self._granted)

    def _granted(self, value):
        disk = self.disk
        self._holding = True
        # The head position must be read *after* the grant: requests
        # that queued ahead of us may have moved it.
        head_continues = (self.at_block is not None
                          and self.at_block == disk._head)
        disk.monitor.busy()
        env = self.env
        if self.on_block is None and env._span_fast:
            spec = disk.spec
            nbytes = self.nbytes
            extra = self.per_block_extra_s
            sequential = self.sequential
            when = env.now
            for index in range(self.blocks):
                service = spec.transfer_time(nbytes) + extra
                if index == 0:
                    if not head_continues:
                        service += disk.draw_positioning_time()
                elif not sequential:
                    service += disk.draw_positioning_time()
                when += service
            self.wait(env.timeout_at(when), self._span_done)
            return
        self._head_continues = head_continues
        self._index = 0
        self._next_block()

    def _next_block(self):
        disk = self.disk
        service = disk.spec.transfer_time(self.nbytes) \
            + self.per_block_extra_s
        if self._index == 0:
            if not self._head_continues:
                service += disk.draw_positioning_time()
        elif not self.sequential:
            service += disk.draw_positioning_time()
        self.wait_timeout(service, self._block_done)

    def _block_done(self, value):
        disk = self.disk
        disk.blocks_served += 1
        disk.bytes_served += self.nbytes
        on_block = self.on_block
        if on_block is not None:
            on_block(self._index)
        self._index += 1
        if self._index < self.blocks:
            self._next_block()
            return
        self._complete()

    def _span_done(self, value):
        disk = self.disk
        disk.blocks_served += self.blocks
        disk.bytes_served += self.blocks * self.nbytes
        self._complete()

    def _complete(self):
        self._release_spindle()
        self._finish(self.env.now - self._started)

    def _release_spindle(self):
        # The generator's `finally`, in order: head update, idle check
        # while still holding, then the release.
        disk = self.disk
        disk._head = (self.at_block + self.blocks
                      if self.at_block is not None else None)
        if disk.resource.count <= 1:
            disk.monitor.idle()
        self._holding = False
        if self._grant is None:
            disk.resource.release_slot()
        else:
            disk.resource.release_quiet(self._grant)
            self._grant = None

    def _on_failure(self, exc):
        if self._holding:
            self._release_spindle()
        elif self._grant is not None:
            # Interrupted while queued: withdraw the pending request.
            self.disk.resource.release_quiet(self._grant)
            self._grant = None
        raise exc

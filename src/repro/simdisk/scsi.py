"""The prototype hosts' SCSI disk path, calibrated to Table 2.

§4, footnote 2: "SunOS 4.1.1 allowed the use of synchronous mode on the SCSI
drives.  This doubled the read data-rate."  Table 2 then reports (sync mode,
cold cache): sequential read 654-682 KB/s and synchronous sequential write
314-316 KB/s on the Sun SLC's local SCSI disk.

We model the path as the generic :class:`~repro.simdisk.filesystem.
LocalFileSystem` with per-block overheads chosen so an 8 KB-block sequential
transfer lands on those measured rates:

* media rate 1.3 MB/s -> 6.30 ms transfer per 8 KB block;
* sync-mode read overhead 5.93 ms/block  -> ~670 KB/s sustained;
* async-mode read overhead 18.15 ms/block -> ~335 KB/s (half, §4 footnote);
* sync write overhead 19.71 ms/block (rotation miss + track switch)
  -> ~315 KB/s.
"""

from __future__ import annotations

import enum

from ..des import Environment, RandomStream
from .disk import Disk
from .filesystem import LocalFileSystem
from .models import DISK_CATALOG

__all__ = [
    "ScsiMode",
    "SCSI_BLOCK_SIZE",
    "SCSI_READ_OVERHEAD_SYNC_S",
    "SCSI_READ_OVERHEAD_ASYNC_S",
    "SCSI_WRITE_OVERHEAD_S",
    "make_scsi_filesystem",
]


class ScsiMode(enum.Enum):
    """SCSI transfer mode: SunOS 4.1.1 added SYNCHRONOUS (Table 2 uses it)."""

    SYNCHRONOUS = "synchronous"
    ASYNCHRONOUS = "asynchronous"


#: The prototype-era Unix file system block size.
SCSI_BLOCK_SIZE = 8192

#: Per-8KB-block software + rotational-miss overheads (seconds), calibrated
#: so sequential rates match Table 2 (see module docstring).
SCSI_READ_OVERHEAD_SYNC_S = 0.00566
SCSI_READ_OVERHEAD_ASYNC_S = 0.01790
SCSI_WRITE_OVERHEAD_S = 0.01905


def make_scsi_filesystem(
    env: Environment,
    disk_model: str = "Sun 104MB SCSI",
    mode: ScsiMode = ScsiMode.SYNCHRONOUS,
    stream: RandomStream | None = None,
    cache_blocks: int = 2048,  # 16 MB of RAM on the prototype hosts
) -> LocalFileSystem:
    """Build the calibrated local-SCSI file system of a prototype host.

    ``disk_model`` is a key of :data:`repro.simdisk.models.DISK_CATALOG`
    (the SLC has the 104 MB disk, the SPARCstation 2 the 207 MB one).
    """
    spec = DISK_CATALOG[disk_model]
    disk = Disk(env, spec, stream=stream)
    if mode is ScsiMode.SYNCHRONOUS:
        read_overhead = SCSI_READ_OVERHEAD_SYNC_S
    else:
        read_overhead = SCSI_READ_OVERHEAD_ASYNC_S
    return LocalFileSystem(
        env,
        disk,
        block_size=SCSI_BLOCK_SIZE,
        cache_blocks=cache_blocks,
        read_block_overhead_s=read_overhead,
        write_block_overhead_s=SCSI_WRITE_OVERHEAD_S,
        contiguous_allocation=True,
    )

"""A small block file system over a simulated disk.

This plays the role the Unix file system plays in the prototype (§3: "The
storage agents are represented by Unix processes on servers which use the
standard Unix file system").  It both *stores real bytes* — so end-to-end
data integrity of the striping/parity stack can be checked — and *accounts
simulated time* on the underlying :class:`~repro.simdisk.disk.Disk`.

Semantics:

* files are byte-addressed, sparse (holes read as zeros), grow on write;
* synchronous writes go through to the disk before returning (NFS servers,
  local sync writes);
* asynchronous writes dirty the buffer cache and return after the memory
  copy; :meth:`LocalFileSystem.sync` writes the dirty blocks back (SunOS
  update-style);
* a cold cache is obtained with :meth:`LocalFileSystem.flush_cache` —
  the paper's ``/etc/umount`` trick.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..des import Environment
from .cache import BufferCache
from .disk import Disk

__all__ = ["LocalFileSystem", "FileSystemError", "FileNotFound", "FileExists"]


class FileSystemError(Exception):
    """Base error for the simulated file system."""


class FileNotFound(FileSystemError):
    """Operation on a file that does not exist."""


class FileExists(FileSystemError):
    """Exclusive create of a file that already exists."""


@dataclass
class _Inode:
    """Per-file metadata: size plus the blocks that have ever been written."""

    size: int = 0
    blocks: dict[int, int] = field(default_factory=dict)  # file block -> disk block
    contiguous: bool = True


class LocalFileSystem:
    """Block file system with simple sequential allocation.

    Parameters
    ----------
    env, disk:
        The simulation environment and backing spindle.
    block_size:
        File system block size (the prototype-era Unix FS used 8 KB).
    cache_blocks:
        Buffer cache capacity in blocks.
    read_block_overhead_s / write_block_overhead_s:
        Per-block software + rotational-miss overhead added on top of the
        raw media time; calibrated per host in ``prototype/calibration.py``.
    contiguous_allocation:
        When True (default) files get consecutive disk blocks, so
        sequential transfers skip positioning after the first block.
    """

    def __init__(
        self,
        env: Environment,
        disk: Disk,
        block_size: int = 8192,
        cache_blocks: int = 512,
        read_block_overhead_s: float = 0.0,
        write_block_overhead_s: float = 0.0,
        contiguous_allocation: bool = True,
    ):
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.env = env
        self.disk = disk
        self.block_size = block_size
        self.cache = BufferCache(cache_blocks)
        self.read_block_overhead_s = read_block_overhead_s
        self.write_block_overhead_s = write_block_overhead_s
        self.contiguous_allocation = contiguous_allocation
        self._inodes: dict[str, _Inode] = {}
        self._store: dict[int, bytes] = {}
        self._next_disk_block = 0
        # In-flight reads: block -> completion event.  A reader that wants
        # a block already being fetched waits for that I/O instead of
        # issuing a duplicate disk access (as a real buffer cache does).
        self._inflight: dict[int, object] = {}

    # -- namespace --------------------------------------------------------------

    def create(self, name: str, exclusive: bool = False) -> None:
        """Create an empty file (idempotent unless ``exclusive``)."""
        if name in self._inodes:
            if exclusive:
                raise FileExists(name)
            return
        self._inodes[name] = _Inode()

    def exists(self, name: str) -> bool:
        """True if the file exists."""
        return name in self._inodes

    def file_size(self, name: str) -> int:
        """Current size in bytes."""
        return self._inode(name).size

    def unlink(self, name: str) -> None:
        """Remove a file and drop its cached blocks."""
        inode = self._inode(name)
        for disk_block in inode.blocks.values():
            self._store.pop(disk_block, None)
            self.cache.invalidate(disk_block)
        del self._inodes[name]

    def list_files(self) -> list[str]:
        """All file names, sorted."""
        return sorted(self._inodes)

    # -- data path ---------------------------------------------------------------

    def write(self, name: str, offset: int, data: bytes, sync: bool = False):
        """Process method: write ``data`` at ``offset``.

        Asynchronous writes (default) only dirty the cache; synchronous
        writes pay the disk before returning.
        """
        if offset < 0:
            raise ValueError("offset must be non-negative")
        inode = self._inode(name)
        touched = self._apply_write(inode, offset, data)
        if sync and touched:
            # Write-through: contiguous runs are written in one disk pass.
            yield from self._disk_write(touched)
            for disk_block in touched:
                self.cache.clean(disk_block)
        elif touched:
            # The memory-copy cost of an async write is charged by the host
            # CPU model (simnet.host); the file system itself is free.
            yield self.env.timeout(0.0)
        return len(data)

    def read(self, name: str, offset: int, nbytes: int):
        """Process method: read up to ``nbytes`` at ``offset``.

        Returns the bytes actually read (short at end of file).  Cache hits
        cost nothing; misses pay the disk, with positioning amortised over
        contiguous misses.
        """
        if offset < 0 or nbytes < 0:
            raise ValueError("offset and nbytes must be non-negative")
        inode = self._inode(name)
        nbytes = max(0, min(nbytes, inode.size - offset))
        if nbytes == 0:
            yield self.env.timeout(0.0)
            return b""

        first_block = offset // self.block_size
        last_block = (offset + nbytes - 1) // self.block_size
        chunks: list[bytes] = []
        pending_misses: list[int] = []
        for file_block in range(first_block, last_block + 1):
            disk_block = inode.blocks.get(file_block)
            if disk_block is None:
                chunks.append(b"\x00" * self.block_size)  # hole
                continue
            cached = self.cache.lookup(disk_block)
            if cached is None:
                pending_misses.append(disk_block)
                chunks.append(
                    self._store.get(disk_block, b"\x00" * self.block_size))
            else:
                chunks.append(cached)
        if pending_misses:
            to_fetch = []
            waiters = []
            for disk_block in pending_misses:
                event = self._inflight.get(disk_block)
                if event is None:
                    self._inflight[disk_block] = self.env.event()
                    to_fetch.append(disk_block)
                else:
                    waiters.append(event)
            if to_fetch:
                try:
                    yield from self._disk_read(to_fetch,
                                               self._publish_block)
                finally:
                    # Safety: if the access aborted mid-run, release any
                    # readers still parked on unpublished blocks.
                    for disk_block in to_fetch:
                        if disk_block in self._inflight:
                            self._publish_block(disk_block)
            for event in waiters:
                if not event.processed:
                    yield event
        data = b"".join(chunks)
        start = offset - first_block * self.block_size
        return data[start:start + nbytes]

    def sync(self, name: Optional[str] = None):
        """Process method: write back dirty blocks (one file or all)."""
        if name is None:
            dirty = sorted(self.cache.dirty_keys())
        else:
            inode = self._inode(name)
            mine = set(inode.blocks.values())
            dirty = sorted(key for key in self.cache.dirty_keys() if key in mine)
        if dirty:
            yield from self._disk_write(dirty)
            for disk_block in dirty:
                self.cache.clean(disk_block)
        else:
            yield self.env.timeout(0.0)
        return len(dirty)

    def flush_cache(self) -> int:
        """Cold-cache the file system (the paper's /etc/umount).

        Dirty data is preserved in the backing store (this model applies
        writes to the store immediately), so flushing never loses bytes.
        Returns the number of blocks that were dirty.
        """
        return len(self.cache.flush())

    # -- internals ---------------------------------------------------------------

    def _inode(self, name: str) -> _Inode:
        try:
            return self._inodes[name]
        except KeyError:
            raise FileNotFound(name) from None

    def _allocate_block(self, inode: _Inode, file_block: int) -> int:
        if self.contiguous_allocation:
            disk_block = self._next_disk_block
            self._next_disk_block += 1
        else:
            # Scatter allocation: stride the block number so consecutive
            # file blocks are never adjacent on disk.
            disk_block = self._next_disk_block * 7919 + 13
            self._next_disk_block += 1
        existing = set(inode.blocks.values())
        if file_block > 0 and (file_block - 1) in inode.blocks:
            if inode.blocks[file_block - 1] + 1 != disk_block:
                inode.contiguous = False
        if disk_block in existing:  # pragma: no cover - allocator is monotonic
            raise FileSystemError("allocator handed out a duplicate block")
        inode.blocks[file_block] = disk_block
        return disk_block

    def _apply_write(self, inode: _Inode, offset: int, data: bytes) -> list[int]:
        """Install bytes into the store; returns the disk blocks touched."""
        touched: list[int] = []
        position = offset
        # Any bytes-like object works directly: the view is fully consumed
        # (copied into the block store) before this method returns, so no
        # aliasing with the caller's buffer can outlive the call.
        remaining = memoryview(data)
        while remaining.nbytes:
            file_block = position // self.block_size
            within = position % self.block_size
            span = min(self.block_size - within, remaining.nbytes)
            disk_block = inode.blocks.get(file_block)
            if disk_block is None:
                disk_block = self._allocate_block(inode, file_block)
            old = self._store.get(disk_block)
            block = (bytearray(old) if old is not None
                     else bytearray(self.block_size))
            block[within:within + span] = remaining[:span]
            new = bytes(block)
            self._store[disk_block] = new
            self.cache.insert(disk_block, new, dirty=True)
            touched.append(disk_block)
            position += span
            remaining = remaining[span:]
        inode.size = max(inode.size, offset + len(data))
        return touched

    def _publish_block(self, disk_block: int) -> None:
        """A block's I/O completed: cache it and wake waiting readers.

        Called per block while the disk is still working on the rest of
        the run, so a reader needing an early block of a long read-ahead
        does not wait for the whole cluster.
        """
        self.cache.insert(
            disk_block,
            self._store.get(disk_block, b"\x00" * self.block_size))
        event = self._inflight.pop(disk_block, None)
        if event is not None:
            event.succeed()

    def _runs(self, disk_blocks: list[int]) -> list[list[int]]:
        """Split sorted block ids into maximal contiguous runs."""
        runs: list[list[int]] = []
        for block in sorted(disk_blocks):
            if runs and block == runs[-1][-1] + 1:
                runs[-1].append(block)
            else:
                runs.append([block])
        return runs

    def _disk_read(self, disk_blocks: list[int], on_block_complete=None):
        # Callback-mode disk service (see simdisk.disk.DiskAccess): same
        # draws and timestamps as `yield from disk.access(...)`, a
        # fraction of the calendar entries.
        for run in self._runs(disk_blocks):
            callback = None
            if on_block_complete is not None:
                def callback(index, run=run):
                    on_block_complete(run[index])
            yield self.disk.access_op(
                self.block_size, blocks=len(run), sequential=True,
                at_block=run[0],
                per_block_extra_s=self.read_block_overhead_s,
                on_block=callback)

    def _disk_write(self, disk_blocks: list[int]):
        for run in self._runs(disk_blocks):
            yield self.disk.access_op(
                self.block_size, blocks=len(run), sequential=True,
                at_block=run[0],
                per_block_extra_s=self.write_block_overhead_s)

"""Catalog of the disk devices the paper measures and simulates.

Figure captions in §5 pin the Fujitsu M2372K at average seek 16 ms, average
rotational delay 8.3 ms and a 2.5 MB/s transfer rate, and Figure 4 uses a
1.5 MB/s variant.  The remaining drives in Figures 5 and 6 (IBM 3380K,
Fujitsu M2361A and M2351A, Wren V, DEC RA82) are catalogued here with their
published late-1980s specifications; EXPERIMENTS.md records the provenance.

All times are seconds, all rates bytes/second (converted from the
datasheet units at construction).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import KIB, MIB, mb_per_s, ms

__all__ = ["DiskSpec", "DISK_CATALOG", "FIGURE_5_6_DISKS"]

MEGABYTE = MIB
KILOBYTE = KIB


@dataclass(frozen=True)
class DiskSpec:
    """Service-time parameters of one disk model.

    The simulation's per-block access time is ``seek + rotation + size/rate``
    with seek and rotation drawn uniform with the given averages (§5.1).
    """

    name: str
    avg_seek_s: float
    avg_rotation_s: float
    transfer_rate_bytes_per_s: float  # off the media
    capacity_bytes: int = 500 * MEGABYTE

    def __post_init__(self):
        if self.avg_seek_s < 0 or self.avg_rotation_s < 0:
            raise ValueError("seek/rotation averages must be non-negative")
        if self.transfer_rate_bytes_per_s <= 0:
            raise ValueError("transfer rate must be positive")
        if self.capacity_bytes <= 0:
            raise ValueError("capacity must be positive")

    @property
    def transfer_rate(self) -> float:
        """Bytes/second off the media (alias for the suffixed field)."""
        return self.transfer_rate_bytes_per_s

    def transfer_time(self, nbytes: int) -> float:
        """Media transfer time for ``nbytes`` (no positioning)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes / self.transfer_rate_bytes_per_s

    def mean_access_time(self, nbytes: int) -> float:
        """Expected positioned access time for one ``nbytes`` block.

        For the M2372K and 32 KB this is ~37 ms, which §5.2 states.
        """
        return self.avg_seek_s + self.avg_rotation_s + self.transfer_time(nbytes)


def _spec(name: str, seek_ms: float, rotation_ms: float, rate_mb_s: float,
          capacity_mb: int = 500) -> DiskSpec:
    return DiskSpec(
        name=name,
        avg_seek_s=ms(seek_ms),
        avg_rotation_s=ms(rotation_ms),
        transfer_rate_bytes_per_s=mb_per_s(rate_mb_s),
        capacity_bytes=capacity_mb * MEGABYTE,
    )


#: Every drive used anywhere in the reproduction, keyed by catalog name.
DISK_CATALOG: dict[str, DiskSpec] = {
    # §5 figure captions: the baseline simulated device.
    "Fujitsu M2372K": _spec("Fujitsu M2372K", 16.0, 8.3, 2.5, 824),
    # Figure 4's "slower storage device": same positioning, 1.5 MB/s media.
    "Fujitsu M2372K (1.5MB/s)": _spec("Fujitsu M2372K (1.5MB/s)", 16.0, 8.3, 1.5, 824),
    # Figures 5 and 6 legends, published specs of the era.
    "IBM 3380K": _spec("IBM 3380K", 16.0, 8.3, 3.0, 1890),
    "Fujitsu M2361A": _spec("Fujitsu M2361A", 16.7, 8.3, 2.5, 689),
    "Fujitsu M2351A": _spec("Fujitsu M2351A", 18.0, 8.3, 1.9, 474),
    "Wren V": _spec("Wren V", 16.5, 8.3, 1.7, 383),
    "DEC RA82": _spec("DEC RA82", 24.0, 8.3, 1.4, 622),
    # The prototype's hosts (Tables 1-2): small Sun SCSI disks.  The media
    # rate and the per-operation overheads in prototype/calibration.py are
    # chosen to land on the measured sequential rates (sync-mode read
    # ~670 KB/s, sync write ~315 KB/s).
    "Sun 207MB SCSI": _spec("Sun 207MB SCSI", 16.0, 8.3, 1.3, 207),
    "Sun 104MB SCSI": _spec("Sun 104MB SCSI", 16.0, 8.3, 1.3, 104),
    # The NFS server's IPI drives (Table 3): "rated at more than 3 MB/s".
    "Sun IPI": _spec("Sun IPI", 9.5, 8.3, 3.0, 1300),
}

#: The legend of Figures 5 and 6, top to bottom.
FIGURE_5_6_DISKS = [
    "IBM 3380K",
    "Fujitsu M2361A",
    "Fujitsu M2351A",
    "Wren V",
    "Fujitsu M2372K",
    "DEC RA82",
]

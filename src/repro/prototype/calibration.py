"""Calibrated constants of the prototype emulation.

The constants live in :mod:`repro.calibration` (a leaf module so both the
baselines and the prototype can import them without cycles); this module
re-exports them under the historical name.
"""

from ..calibration import *  # noqa: F401,F403
from ..calibration import __all__  # noqa: F401

"""Runners for the prototype measurements: Tables 1-4.

§4: "three, six, and nine megabytes were read from and written to a Swift
object.  In order to calculate confidence intervals, eight samples of each
measurement were taken."  Each sample here is one independently-seeded
simulation run.
"""

from __future__ import annotations

from typing import Callable

from ..des import SampleSet
from ..baselines import LocalScsiBaseline, NfsBaseline
from .testbed import PrototypeTestbed

__all__ = [
    "MEGABYTE",
    "SIZES_MB",
    "NUM_SAMPLES",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "run_swift_table",
    "run_scsi_table",
    "run_nfs_table",
]

MEGABYTE = 1 << 20
SIZES_MB = (3, 6, 9)
NUM_SAMPLES = 8

#: The paper's published means (KB/s), for side-by-side comparison.
PAPER_TABLE1 = {
    "Read 3 MB": 893, "Read 6 MB": 897, "Read 9 MB": 876,
    "Write 3 MB": 860, "Write 6 MB": 882, "Write 9 MB": 881,
}
PAPER_TABLE2 = {
    "Read 3 MB": 654, "Read 6 MB": 671, "Read 9 MB": 682,
    "Write 3 MB": 314, "Write 6 MB": 316, "Write 9 MB": 315,
}
PAPER_TABLE3 = {
    "Read 3 MB": 462, "Read 6 MB": 456, "Read 9 MB": 488,
    "Write 3 MB": 112, "Write 6 MB": 109, "Write 9 MB": 111,
}
PAPER_TABLE4 = {
    "Read 3 MB": 1120, "Read 6 MB": 1150, "Read 9 MB": 1130,
    "Write 3 MB": 1660, "Write 6 MB": 1670, "Write 9 MB": 1660,
}


def _sample_rows(measure: Callable[[str, int, int], float],
                 sizes_mb=SIZES_MB, samples: int = NUM_SAMPLES,
                 base_seed: int = 100) -> dict[str, SampleSet]:
    """Run read+write × sizes × samples and collect SampleSets.

    ``measure(op, size_bytes, seed)`` returns one KB/s measurement.
    """
    rows: dict[str, SampleSet] = {}
    for op in ("Read", "Write"):
        for size_mb in sizes_mb:
            label = f"{op} {size_mb} MB"
            samples_set = SampleSet()
            for sample in range(samples):
                seed = base_seed + 17 * sample + size_mb
                samples_set.add(measure(op, size_mb * MEGABYTE, seed))
            rows[label] = samples_set
    return rows


def run_swift_table(second_ethernet: bool = False,
                    sizes_mb=SIZES_MB, samples: int = NUM_SAMPLES
                    ) -> dict[str, SampleSet]:
    """Table 1 (one Ethernet) or Table 4 (two Ethernets)."""

    def measure(op: str, size: int, seed: int) -> float:
        testbed = PrototypeTestbed(second_ethernet=second_ethernet,
                                   seed=seed)
        if op == "Read":
            testbed.prepare_object("obj", size)
            return testbed.measure_read("obj", size)
        return testbed.measure_write("obj", size)

    return _sample_rows(measure, sizes_mb, samples)


def run_scsi_table(sizes_mb=SIZES_MB, samples: int = NUM_SAMPLES
                   ) -> dict[str, SampleSet]:
    """Table 2: the local SCSI disk."""

    def measure(op: str, size: int, seed: int) -> float:
        baseline = LocalScsiBaseline(seed=seed)
        if op == "Read":
            baseline.prepare_file("f", size)
            return baseline.measure_read("f", size)
        return baseline.measure_write("f", size)

    return _sample_rows(measure, sizes_mb, samples)


def run_nfs_table(sizes_mb=SIZES_MB, samples: int = NUM_SAMPLES
                  ) -> dict[str, SampleSet]:
    """Table 3: the NFS file service."""

    def measure(op: str, size: int, seed: int) -> float:
        baseline = NfsBaseline(seed=seed)
        if op == "Read":
            baseline.prepare_file("f", size)
            return baseline.measure_read("f", size)
        return baseline.measure_write("f", size)

    return _sample_rows(measure, sizes_mb, samples)

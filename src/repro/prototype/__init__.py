"""The §3-§4 prototype emulation: calibration, testbed, Tables 1-4."""

from . import calibration
from .experiments import (
    MEGABYTE,
    NUM_SAMPLES,
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    SIZES_MB,
    run_nfs_table,
    run_scsi_table,
    run_swift_table,
)
from .report import format_comparison, format_table
from .testbed import PrototypeTestbed

__all__ = [
    "calibration",
    "PrototypeTestbed",
    "run_swift_table",
    "run_scsi_table",
    "run_nfs_table",
    "format_table",
    "format_comparison",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "SIZES_MB",
    "NUM_SAMPLES",
    "MEGABYTE",
]

"""The §3-§4 laboratory: Figure 2 as a DES deployment.

One SPARCstation 2 client on a dedicated laboratory Ethernet with three
SLC storage agents; optionally a second, *shared departmental* Ethernet
(reached through the client's slower S-bus interface) with more SLC agents
behind it.
"""

from __future__ import annotations

from ..des import Environment, StreamFactory
from ..simdisk import ScsiMode, make_scsi_filesystem
from ..simnet import CostModel, Network
from ..core import DistributionAgent, StorageAgent
from . import calibration as cal

__all__ = ["PrototypeTestbed"]

KILOBYTE = 1 << 10


class PrototypeTestbed:
    """Builds the prototype lab and runs measured transfers on it."""

    def __init__(self, agents_per_segment: int = 3,
                 second_ethernet: bool = False, seed: int = 0,
                 agent_prefetch: bool = True, tcp_mode: bool = False,
                 parity: bool = False, striping_unit: int | None = None,
                 interpacket_gap_s: float | None = None,
                 synchronous_agent_writes: bool = False,
                 ethernet_contention: bool = False,
                 component_scales: "dict[str, float] | None" = None):
        if agents_per_segment < 1:
            raise ValueError("need at least one agent per segment")
        self.env = Environment()
        self.streams = StreamFactory(seed)
        self.network = Network(self.env, self.streams)
        self.second_ethernet = second_ethernet
        self.tcp_mode = tcp_mode
        self.parity = parity
        self.striping_unit = striping_unit or cal.PACKET_SIZE
        if interpacket_gap_s is None:
            # TCP flow control needs no wait loop; the UDP prototype does
            # ("we had to incorporate a small wait loop", §3.1).
            interpacket_gap_s = 0.0 if tcp_mode else cal.WRITE_INTERPACKET_GAP_S
        self.interpacket_gap_s = interpacket_gap_s
        self.synchronous_agent_writes = synchronous_agent_writes
        # Sensitivity hooks: scale one component's speed without touching
        # the calibration ("locate the components that will limit I/O
        # performance", §5).  A scale of 2.0 means twice as fast.
        scales = dict(component_scales or {})
        unknown = set(scales) - {"client_cpu", "agent_cpu", "network",
                                 "agent_disk"}
        if unknown:
            raise ValueError(f"unknown components: {sorted(unknown)}")
        self._disk_scale = scales.get("agent_disk", 1.0)
        self._ethernet_bps = 10_000_000.0 * scales.get("network", 1.0)

        def faster(cost, factor):
            return CostModel(cost.per_packet_s / factor,
                             cost.per_byte_s / factor)

        client_send = faster(cal.SS2_SEND_COST, scales.get("client_cpu", 1.0))
        client_recv = faster(cal.SS2_RECV_COST, scales.get("client_cpu", 1.0))
        self._agent_send = faster(cal.SLC_SEND_COST,
                                  scales.get("agent_cpu", 1.0))
        self._agent_recv = faster(cal.SLC_RECV_COST,
                                  scales.get("agent_cpu", 1.0))
        if tcp_mode:
            # §3: the abandoned first prototype, TCP streams multiplexed
            # with select(), paying heavy data copying on both ends.
            client_send = cal.tcp_variant(client_send)
            client_recv = cal.tcp_variant(client_recv)
            self._agent_send = cal.tcp_variant(self._agent_send)
            self._agent_recv = cal.tcp_variant(self._agent_recv)

        # The dedicated laboratory segment.
        lab = self.network.add_ethernet("laboratory",
                                        contention=ethernet_contention)
        lab.bits_per_second = self._ethernet_bps
        self.client_host = self.network.add_host(
            "client", send_cost=client_send,
            recv_cost=client_recv,
            noise_fraction=cal.HOST_NOISE_FRACTION)
        self.network.connect("client", "laboratory", tx_queue_packets=64)

        self.agent_names: list[str] = []
        self.agents: dict[str, StorageAgent] = {}
        for index in range(agents_per_segment):
            self._add_agent(f"slc{index}", "laboratory", agent_prefetch)

        if second_ethernet:
            # The shared departmental segment, reached via the S-bus NIC.
            self.network.add_ethernet(
                "departmental",
                background_fraction=cal.DEPARTMENTAL_BACKGROUND_LOAD,
                contention=ethernet_contention)
            self.network.connect("client", "departmental",
                                 cpu_cost_scale=cal.SBUS_CPU_SCALE,
                                 tx_queue_packets=64)
            for index in range(agents_per_segment):
                self._add_agent(f"slc{agents_per_segment + index}",
                                "departmental", agent_prefetch)

    def _add_agent(self, name: str, segment: str, prefetch: bool) -> None:
        host = self.network.add_host(
            name, send_cost=self._agent_send, recv_cost=self._agent_recv,
            noise_fraction=cal.HOST_NOISE_FRACTION)
        self.network.connect(name, segment, tx_queue_packets=64)
        filesystem = make_scsi_filesystem(
            self.env, disk_model="Sun 104MB SCSI",
            mode=ScsiMode.SYNCHRONOUS,
            stream=self.streams.stream(f"disk/{name}"))
        if self._disk_scale != 1.0:
            filesystem.read_block_overhead_s /= self._disk_scale
            filesystem.write_block_overhead_s /= self._disk_scale
            spec = filesystem.disk.spec
            filesystem.disk.spec = type(spec)(
                name=spec.name,
                avg_seek_s=spec.avg_seek_s / self._disk_scale,
                avg_rotation_s=spec.avg_rotation_s / self._disk_scale,
                transfer_rate_bytes_per_s=(
                    spec.transfer_rate_bytes_per_s * self._disk_scale),
                capacity_bytes=spec.capacity_bytes)
        self.agents[name] = StorageAgent(
            self.env, host, filesystem, prefetch=prefetch,
            synchronous_writes=self.synchronous_agent_writes,
            socket_buffer=64)
        self.agent_names.append(name)

    # -- building the measured transfers ----------------------------------------------

    def _make_engine(self, object_name: str) -> DistributionAgent:
        return DistributionAgent(
            self.env, self.client_host, list(self.agent_names), object_name,
            parity=self.parity,
            striping_unit=self.striping_unit,
            packet_size=cal.PACKET_SIZE,
            open_timeout_s=cal.OPEN_TIMEOUT_S,
            read_timeout_s=cal.READ_TIMEOUT_S,
            ack_timeout_s=cal.ACK_TIMEOUT_S,
            interpacket_gap_s=self.interpacket_gap_s,
        )

    def _run(self, generator):
        return self.env.run(until=self.env.process(generator))

    def flush_agent_caches(self) -> None:
        """Cold-cache every agent (the /etc/umount side effect)."""
        for agent in self.agents.values():
            agent.filesystem.flush_cache()

    def prepare_object(self, name: str, size: int) -> None:
        """Install an object on the agents without timing it."""
        engine = self._make_engine(name)
        payload = b"\x42" * size

        def setup():
            yield from engine.open(create=True, truncate=True)
            yield from engine.write(0, payload)
            yield from engine.close()

        self._run(setup())
        self.flush_agent_caches()

    def measure_read(self, name: str, size: int) -> float:
        """Timed whole-object read; returns KB/s.

        Timing covers exactly the data transfer (open/close excluded, as
        in the paper's large streaming measurements).
        """
        self.flush_agent_caches()
        engine = self._make_engine(name)
        rates = {}

        def workload():
            yield from engine.open()
            start = self.env.now
            data = yield from engine.read(0, size)
            rates["elapsed"] = self.env.now - start
            if len(data) != size:
                raise AssertionError("short read in measurement")
            yield from engine.close()

        self._run(workload())
        return size / KILOBYTE / rates["elapsed"]

    def measure_write(self, name: str, size: int) -> float:
        """Timed whole-object write (asynchronous agent writes); KB/s."""
        engine = self._make_engine(name)
        payload = b"\x99" * size
        rates = {}

        def workload():
            yield from engine.open(create=True, truncate=True)
            start = self.env.now
            yield from engine.write(0, payload)
            rates["elapsed"] = self.env.now - start
            yield from engine.close()

        self._run(workload())
        return size / KILOBYTE / rates["elapsed"]

    def network_utilization(self, segment: str = "laboratory") -> float:
        """Busy fraction of a segment since testbed construction."""
        return self.network.medium(segment).utilization()

    # -- multiple clients (the §1 "load sharing" claim) -------------------------------

    def add_client_host(self, name: str):
        """Another SPARCstation-2 client on the laboratory segment."""
        host = self.network.add_host(
            name, send_cost=cal.SS2_SEND_COST, recv_cost=cal.SS2_RECV_COST,
            noise_fraction=cal.HOST_NOISE_FRACTION)
        self.network.connect(name, "laboratory", tx_queue_packets=64)
        return host

    def measure_concurrent_reads(self, clients: int, size: int) -> dict:
        """``clients`` hosts read distinct objects at the same time.

        Returns per-client and aggregate KB/s.  Demonstrates the §1 claim
        that the distributed design gives "easy expansion and load
        sharing": the same three agents serve every client, and the shared
        cable is divided between them.
        """
        if clients < 1:
            raise ValueError("need at least one client")
        hosts = [self.client_host]
        for index in range(1, clients):
            hosts.append(self.add_client_host(f"client{index}"))
        engines = []
        for index, host in enumerate(hosts):
            name = f"shared{index}"
            engine = DistributionAgent(
                self.env, host, list(self.agent_names), name,
                striping_unit=self.striping_unit,
                packet_size=cal.PACKET_SIZE,
                open_timeout_s=cal.OPEN_TIMEOUT_S,
                read_timeout_s=cal.READ_TIMEOUT_S,
                ack_timeout_s=cal.ACK_TIMEOUT_S,
                interpacket_gap_s=self.interpacket_gap_s)
            engines.append(engine)

            def setup(engine=engine):
                yield from engine.open(create=True, truncate=True)
                yield from engine.write(0, b"\x42" * size)

            self._run(setup())
        self.flush_agent_caches()

        elapsed: dict[int, float] = {}

        def reader(index, engine):
            start = self.env.now
            data = yield from engine.read(0, size)
            if len(data) != size:
                raise AssertionError("short read in measurement")
            elapsed[index] = self.env.now - start

        processes = [self.env.process(reader(i, engine))
                     for i, engine in enumerate(engines)]
        self.env.run(until=self.env.all_of(processes))
        per_client = {index: size / KILOBYTE / seconds
                      for index, seconds in elapsed.items()}
        total_time = max(elapsed.values())
        return {
            "per_client": per_client,
            "aggregate": clients * size / KILOBYTE / total_time,
        }

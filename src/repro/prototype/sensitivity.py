"""Bottleneck location for the prototype: which component limits what?

§5's stated purpose — "to locate the components that will limit I/O
performance" — applied to the §4 testbed: speed each component up in
isolation and see which measurements move.  §4's own claims predict the
answers: reads and writes are Ethernet-bound (so only a faster network
helps), and the SCSI disks are hidden behind prefetching and asynchronous
writes (so faster disks change nothing).
"""

from __future__ import annotations

from .testbed import PrototypeTestbed

__all__ = ["COMPONENTS", "sensitivity_table"]

MEGABYTE = 1 << 20

#: The components the testbed can accelerate in isolation.
COMPONENTS = ("network", "client_cpu", "agent_cpu", "agent_disk")


def _measure(operation: str, size: int, seed: int,
             component_scales: dict[str, float] | None) -> float:
    testbed = PrototypeTestbed(seed=seed,
                               component_scales=component_scales)
    if operation == "read":
        testbed.prepare_object("obj", size)
        return testbed.measure_read("obj", size)
    if operation == "write":
        return testbed.measure_write("obj", size)
    raise ValueError(f"unknown operation {operation!r}")


def sensitivity_table(operation: str = "read", scale: float = 2.0,
                      size: int = 3 * MEGABYTE, seed: int = 0
                      ) -> dict[str, float]:
    """Relative data-rate change from making each component ``scale``×
    faster, one at a time.

    Returns ``{component: rate_with_faster_component / baseline_rate}``
    plus a ``"baseline"`` entry holding the untouched KB/s figure.  A
    ratio near 1.0 means the component is *not* the bottleneck.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    baseline = _measure(operation, size, seed, None)
    table: dict[str, float] = {"baseline": baseline}
    for component in COMPONENTS:
        faster = _measure(operation, size, seed, {component: scale})
        table[component] = faster / baseline
    return table

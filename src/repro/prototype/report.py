"""Paper-style result tables.

Tables 1-4 report, for each operation, the mean, standard deviation, min,
max and a 90 % confidence interval over eight samples, in kilobytes per
second.  :func:`format_table` renders the same columns.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..des import SampleSet

__all__ = ["format_table", "format_comparison"]


def format_table(title: str, rows: Mapping[str, SampleSet],
                 confidence: float = 0.90) -> str:
    """Render measurement rows the way the paper's tables do."""
    lines = [title, ""]
    header = (f"{'Operation':<14} {'x̄':>7} {'σ':>7} {'min':>7} {'max':>7} "
              f"{'90% low':>8} {'90% high':>8}")
    lines.append(header)
    lines.append("-" * len(header))
    for name, samples in rows.items():
        row = samples.row(confidence)
        lines.append(
            f"{name:<14} {row['mean']:>7.0f} {row['stdev']:>7.2f} "
            f"{row['min']:>7.0f} {row['max']:>7.0f} "
            f"{row['ci_low']:>8.0f} {row['ci_high']:>8.0f}")
    return "\n".join(lines)


def format_comparison(title: str, rows: Mapping[str, SampleSet],
                      paper: Mapping[str, float],
                      unit: str = "KB/s") -> str:
    """Measured means next to the paper's published means."""
    lines = [title, ""]
    header = (f"{'Operation':<14} {'paper ' + unit:>12} "
              f"{'measured ' + unit:>14} {'ratio':>7}")
    lines.append(header)
    lines.append("-" * len(header))
    for name, samples in rows.items():
        published: Optional[float] = paper.get(name)
        if published:
            ratio = samples.mean / published
            lines.append(f"{name:<14} {published:>12.0f} "
                         f"{samples.mean:>14.0f} {ratio:>7.2f}")
        else:
            lines.append(f"{name:<14} {'—':>12} {samples.mean:>14.0f} "
                         f"{'—':>7}")
    return "\n".join(lines)

"""``python -m repro.check`` — standalone checker entry point."""

import sys

from .cli import main

sys.exit(main())

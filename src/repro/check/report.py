"""Rendering check results: human text and machine-readable JSON."""

from __future__ import annotations

import json
from typing import Sequence

from .findings import Finding, Severity

__all__ = ["render_text", "render_json", "exit_code"]

#: Bumped when the JSON shape changes, so CI consumers can pin it.
#: 2: added optional ``effects`` stats and the ``passes`` array emitted
#: by ``repro check --all`` (per-pass wall time + finding counts).
REPORT_FORMAT_VERSION = 2


def exit_code(findings: Sequence[Finding],
              fail_on: Severity = Severity.ERROR) -> int:
    """0 when no finding at or above the ``fail_on`` threshold.

    The default fails on errors only; ``fail_on=Severity.WARNING`` makes
    any finding fatal (for CI lanes that gate on a clean report).
    """
    if fail_on is Severity.WARNING:
        return 1 if findings else 0
    return 1 if any(f.severity is Severity.ERROR for f in findings) else 0


def render_text(findings: Sequence[Finding], checked_paths: int = 0,
                model_stats=None, effects_stats=None,
                passes: Sequence[dict] | None = None) -> str:
    """Editor-clickable one-line-per-finding report with a summary."""
    lines = [finding.format() for finding in findings]
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    if findings:
        lines.append("")
    if model_stats is not None:
        lines.append(model_stats.render_text())
    if effects_stats is not None:
        lines.append(effects_stats.render_text())
    if passes:
        for entry in passes:
            lines.append(
                f"pass {entry['name']:<12} {entry['seconds']:7.2f}s  "
                f"{entry['findings']} finding(s)")
    summary = f"{errors} error(s), {warnings} warning(s)"
    if checked_paths:
        summary += f" across {checked_paths} file(s)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], checked_paths: int = 0,
                model_stats=None, effects_stats=None,
                passes: Sequence[dict] | None = None) -> str:
    """The ``repro check --json`` report (one JSON object, stable keys)."""
    by_rule: dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
    payload = {
        "format_version": REPORT_FORMAT_VERSION,
        "tool": "repro-check",
        "files_checked": checked_paths,
        "findings": [finding.to_dict() for finding in findings],
        "summary": {
            "errors": sum(1 for f in findings
                          if f.severity is Severity.ERROR),
            "warnings": sum(1 for f in findings
                            if f.severity is Severity.WARNING),
            "by_rule": dict(sorted(by_rule.items())),
        },
    }
    if model_stats is not None:
        payload["model"] = model_stats.to_dict()
    if effects_stats is not None:
        payload["effects"] = effects_stats.to_dict()
    if passes:
        payload["passes"] = list(passes)
    return json.dumps(payload, indent=2, sort_keys=False)

"""The adversarial network model for the protocol model checker.

The checker composes two protocol endpoints with a network the adversary
controls.  Channels are *multisets* of in-flight messages (represented
as sorted tuples, so reorderings collapse into one state and delivery of
any in-flight message is always enabled — reordering and delay are
implicit, not separate actions).  On top of delivery the adversary may,
within budgets:

* **drop** any in-flight message;
* **duplicate** any in-flight message (buffer capacity permitting);
* **crash** the agent (its volatile per-op state is lost; in-flight
  messages survive in the network) and later **restart** it fresh;
* **inject a stale message** from a prior session (an old op_id/seq)
  into either channel.

Budgets keep the state space finite; the bounds are reported alongside
the result so "exhausted" is always relative to explicit limits.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AdversaryBudget", "channel_add", "channel_remove",
           "channel_items"]


@dataclass(frozen=True)
class AdversaryBudget:
    """Bounds on adversarial behaviour during one exploration.

    ``channel_capacity`` models the finite socket buffers: a send into a
    full channel is silently lost, exactly like the DES host's rx-queue
    overflow, and does not consume the drop budget.
    """

    max_drops: int = 2
    max_duplicates: int = 1
    max_crashes: int = 1
    max_stale: int = 1
    channel_capacity: int = 2

    def describe(self) -> str:
        return (f"drops<={self.max_drops} dups<={self.max_duplicates} "
                f"crashes<={self.max_crashes} stale<={self.max_stale} "
                f"buffer={self.channel_capacity}")


def channel_add(channel: tuple, message, capacity: int) -> tuple:
    """Add ``message`` to the multiset; a full channel drops it silently."""
    if len(channel) >= capacity:
        return channel
    return tuple(sorted(channel + (message,), key=repr))


def channel_remove(channel: tuple, message) -> tuple:
    """Remove one copy of ``message`` (which must be present)."""
    items = list(channel)
    items.remove(message)
    return tuple(items)


def channel_items(channel: tuple) -> tuple:
    """The distinct messages in flight (each deliverable/droppable)."""
    seen = []
    for message in channel:
        if message not in seen:
            seen.append(message)
    return tuple(seen)

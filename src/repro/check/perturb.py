"""Schedule-perturbation harness: prove results don't lean on tie-breaks.

The calendar orders events by ``(time, priority, eid)``; the ``eid``
component is an implementation detail, not part of any model's contract.
This harness runs one scenario several times with
``Environment(tie_break_seed=...)`` — which deterministically shuffles
every same-``(time, priority)`` tie — and asserts the end-of-run metrics
are **bit-identical** across all permutations.  Any divergence is a
confirmed tie-break race: some result flowed through the order of two
same-timestamp events.

To localize a divergence, a scenario attaches the provided
:class:`ScheduleTrace` to its environment; the harness then reports the
index and fingerprint of the first event where the perturbed run's
schedule departed from the baseline's.

Usage::

    from repro.check import run_perturbed, assert_schedule_invariant

    def scenario(tie_break_seed, trace):
        env = Environment(tie_break_seed=tie_break_seed)
        trace.attach(env)
        ... build and run the model ...
        return {"mean": stats.mean, "count": stats.count}

    assert_schedule_invariant(scenario, permutations=8)   # raises on race
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from ..des.engine import tie_break_key

__all__ = ["ScheduleTrace", "Divergence", "PerturbationReport",
           "ScheduleRaceError", "derive_tie_seeds", "run_perturbed",
           "assert_schedule_invariant"]

#: A scenario: builds, runs and measures one simulation under the given
#: tie-break seed (None = the deterministic baseline order), attaching
#: the trace to its environment if it wants divergences localized.
Scenario = Callable[[Optional[int], "ScheduleTrace"], Mapping]


class ScheduleRaceError(AssertionError):
    """Metrics moved under a same-(time, priority) shuffle."""


class ScheduleTrace:
    """Step-monitor recorder fingerprinting every processed event."""

    def __init__(self):
        self.fingerprints: list[tuple[float, str]] = []

    def attach(self, env) -> None:
        """Start recording ``env``'s schedule (idempotent per env)."""
        env.add_step_monitor(self._on_step)

    def _on_step(self, when: float, event) -> None:
        value = getattr(event, "_value", None)
        self.fingerprints.append(
            (when, f"{type(event).__name__}:{value!r}"[:80]))


@dataclass(frozen=True)
class Divergence:
    """One perturbed run whose metrics differ from the baseline's."""

    tie_break_seed: int
    #: metric name -> (baseline value, perturbed value)
    metric_diffs: Mapping[str, tuple]
    #: Index of the first schedule fingerprint that differs, or None when
    #: the scenario did not attach the trace (or the schedules agree).
    first_divergent_event: Optional[int] = None
    baseline_fingerprint: Optional[tuple] = None
    perturbed_fingerprint: Optional[tuple] = None

    def format(self) -> str:
        lines = [f"tie-break seed {self.tie_break_seed}:"]
        for name, (base, perturbed) in sorted(self.metric_diffs.items()):
            lines.append(f"  metric {name!r}: baseline {base!r} != "
                         f"perturbed {perturbed!r}")
        if self.first_divergent_event is not None:
            lines.append(
                f"  schedules diverge at event #{self.first_divergent_event}: "
                f"baseline {self.baseline_fingerprint!r} vs "
                f"perturbed {self.perturbed_fingerprint!r}")
        return "\n".join(lines)


@dataclass(frozen=True)
class PerturbationReport:
    """Outcome of one harness run over K permutations."""

    baseline_metrics: Mapping
    permutations: int
    divergences: tuple = field(default_factory=tuple)

    @property
    def invariant(self) -> bool:
        """True when every permutation reproduced the baseline metrics."""
        return not self.divergences

    def format(self) -> str:
        if self.invariant:
            return (f"schedule-invariant: {len(self.baseline_metrics)} "
                    f"metric(s) bit-identical across {self.permutations} "
                    "tie-break permutations")
        lines = [f"tie-break race: {len(self.divergences)} of "
                 f"{self.permutations} permutations moved the metrics"]
        lines.extend(d.format() for d in self.divergences)
        return "\n".join(lines)


def derive_tie_seeds(base_seed: int, permutations: int) -> list[int]:
    """``permutations`` well-mixed, deterministic tie-break seeds."""
    return [tie_break_key(base_seed, index)[0]
            for index in range(1, permutations + 1)]


def _bit_identical(first, second) -> bool:
    if isinstance(first, float) and isinstance(second, float):
        return first == second or (first != first and second != second)
    return type(first) is type(second) and first == second


def _diff_metrics(baseline: Mapping, perturbed: Mapping) -> dict:
    diffs = {}
    for name in sorted(set(baseline) | set(perturbed)):
        missing = object()
        base = baseline.get(name, missing)
        other = perturbed.get(name, missing)
        if base is missing or other is missing or \
                not _bit_identical(base, other):
            diffs[name] = (None if base is missing else base,
                           None if other is missing else other)
    return diffs


def _first_divergence(baseline: ScheduleTrace, perturbed: ScheduleTrace):
    base, other = baseline.fingerprints, perturbed.fingerprints
    if not base and not other:
        return None, None, None
    for index, (one, two) in enumerate(zip(base, other)):
        if one != two:
            return index, one, two
    if len(base) != len(other):
        index = min(len(base), len(other))
        longer = base if len(base) > len(other) else other
        return (index,
                longer[index] if longer is base else None,
                longer[index] if longer is other else None)
    return None, None, None


def run_perturbed(scenario: Scenario, permutations: int = 8,
                  base_seed: int = 0) -> PerturbationReport:
    """Run ``scenario`` under the baseline order and K seeded shuffles.

    Returns a :class:`PerturbationReport`; ``report.invariant`` is the
    verdict.  The scenario must be self-contained (build its own
    ``Environment(tie_break_seed=...)`` and model each call) — reused
    state across calls would itself be a determinism bug.
    """
    if permutations < 1:
        raise ValueError(f"need at least 1 permutation, got {permutations}")
    baseline_trace = ScheduleTrace()
    baseline = dict(scenario(None, baseline_trace))
    divergences = []
    for seed in derive_tie_seeds(base_seed, permutations):
        trace = ScheduleTrace()
        metrics = dict(scenario(seed, trace))
        diffs = _diff_metrics(baseline, metrics)
        if not diffs:
            continue
        index, base_print, perturbed_print = _first_divergence(
            baseline_trace, trace)
        divergences.append(Divergence(
            tie_break_seed=seed,
            metric_diffs=diffs,
            first_divergent_event=index,
            baseline_fingerprint=base_print,
            perturbed_fingerprint=perturbed_print,
        ))
    return PerturbationReport(
        baseline_metrics=baseline,
        permutations=permutations,
        divergences=tuple(divergences),
    )


def assert_schedule_invariant(scenario: Scenario, permutations: int = 8,
                              base_seed: int = 0) -> PerturbationReport:
    """:func:`run_perturbed`, raising :class:`ScheduleRaceError` on drift."""
    report = run_perturbed(scenario, permutations=permutations,
                           base_seed=base_seed)
    if not report.invariant:
        raise ScheduleRaceError(report.format())
    return report

"""Determinism & protocol-invariant checking for the reproduction.

The results in Tables 1-4 and Figures 3-6 are only trustworthy if every
simulation run is bit-for-bit deterministic and the transfer protocol never
violates its ACK/NAK state machine.  This package provides three layers of
defence:

* :mod:`repro.check.lint` — an AST lint engine with pluggable determinism
  rules (:mod:`repro.check.rules`) that walks ``src/repro/**`` and flags
  hazards: unseeded RNG, wall-clock reads, mutable default arguments,
  set-iteration order dependence, salted ``hash()`` use.
* :mod:`repro.check.protocol` — a static checker that extracts the
  agent/client message flows from the protocol sources and verifies them
  against the declarative spec in :mod:`repro.check.spec` (the
  docs/PROTOCOL.md ACK/NAK/retransmit machine).
* :mod:`repro.check.sanitize` — opt-in runtime sanitizer hooks for the DES:
  event-time monotonicity, resource-leak detection, cross-stream RNG
  sharing.
* :mod:`repro.check.races` — static interleaving lints that model
  ``yield`` as a preemption point (lost-update RMW spans, lock-order
  cycles); run with ``python -m repro check --races``.
* :mod:`repro.check.hb` — dynamic happens-before race detection over a
  live DES run, fed by the engine's monitor hooks.
* :mod:`repro.check.perturb` — the schedule-perturbation harness: rerun
  a scenario under K seeded same-(time, priority) shuffles and assert
  the metrics are bit-identical.
* :mod:`repro.check.units` — a dimensional-analysis lint: infer units
  (bytes, seconds, bytes/s, ...) from names and the ``repro.units``
  seed table, propagate them through arithmetic, and flag mixed-unit
  expressions, inline ``*8``/``/8`` bit-byte factors and magic scale
  constants; run with ``python -m repro check --units``.
* :mod:`repro.check.conserve` — a runtime byte-conservation ledger over
  the striped data path, fed by the engine's transfer-monitor hook.
* :mod:`repro.check.aliasing` — zero-copy safety lints: an AST dataflow
  analysis over view-producing expressions flagging borrowed views that
  escape their backing buffer's lifetime (``view-escape``), silent
  flattening copies on hot paths (``hidden-copy``) and pooled event
  references held across the free-list re-arm boundary (``pool-leak``);
  run with ``python -m repro check --aliasing``.  Its runtime half
  (poisoned free lists, generation-stamped buffers) lives in
  :mod:`repro.check.sanitize` as :func:`alias_sanitize`.
* :mod:`repro.check.model` — an explicit-state bounded model checker:
  composes each client machine of :mod:`repro.check.spec` with its
  agent-side peer and an adversarial network
  (:mod:`repro.check.adversary` — drop, duplicate, reorder, crash,
  stale replies) and exhaustively explores every interleaving up to the
  configured bounds; run with ``python -m repro check --model``.
* :mod:`repro.check.effects` — a call-graph effect/purity analysis:
  per-function effect signatures (ambient time/randomness/environment/
  filesystem/process reads, module-global writes) propagated bottom-up
  through SCC summaries, then checked against the cache-soundness,
  worker-hermeticity and bench-determinism contracts; run with
  ``python -m repro check --effects``.  Its runtime half (ambient-read
  traps + module-global snapshot/diff around cached runs) lives in
  :mod:`repro.check.sanitize` as :func:`hermetic_sanitize`.

Run everything from the command line::

    python -m repro check [--json]
    python -m repro check --races [--json]
    python -m repro check --units [paths ...] [--json]
    python -m repro check --aliasing [paths ...] [--json]
    python -m repro check --model [--depth N] [--retransmits K]
    python -m repro check --effects [paths ...] [--json]
    python -m repro check --all [--json]

which exits non-zero when any violation is found.  Individual lint findings
can be suppressed with a ``# repro: allow[rule-id]`` comment on the
offending line (or the line above); see docs/CHECKING.md.
"""

from .adversary import AdversaryBudget
from .aliasing import ALIAS_RULES, alias_rule_registry, analyze_aliasing
from .effects import (
    ALLOWED_GLOBAL_WRITES,
    EFFECT_RULES,
    EffectStats,
    analyze_effects,
    effect_rule_registry,
)
from .findings import Finding, Severity
from .hb import RaceDetector, RaceError, RaceReport, detect_races
from .model import (
    ModelConfig,
    ModelStats,
    PairModel,
    ReadModel,
    SemanticFlags,
    WriteModel,
    check_model,
    explore,
)
from .lint import LintEngine, Rule, iter_python_files
from .perturb import (
    PerturbationReport,
    ScheduleRaceError,
    ScheduleTrace,
    assert_schedule_invariant,
    run_perturbed,
)
from .protocol import check_protocol
from .races import RACE_RULES, race_rule_registry
from .report import render_json, render_text
from .rules import DEFAULT_RULES, rule_registry
from .units import UNIT_RULES, unit_rule_registry
from .conserve import ConservationError, ConservationLedger, conserve
from .sanitize import (
    AliasSanitizer,
    AmbientReadError,
    GuardedView,
    HermeticityError,
    HermeticitySanitizer,
    MonotonicityError,
    ResourceLeakError,
    SanitizerError,
    SharedStreamError,
    StaleViewError,
    UseAfterRecycleError,
    alias_sanitize,
    hermetic_sanitize,
    sanitize,
)

__all__ = [
    "Finding",
    "Severity",
    "Rule",
    "LintEngine",
    "iter_python_files",
    "rule_registry",
    "DEFAULT_RULES",
    "RACE_RULES",
    "race_rule_registry",
    "UNIT_RULES",
    "unit_rule_registry",
    "ALIAS_RULES",
    "alias_rule_registry",
    "analyze_aliasing",
    "EFFECT_RULES",
    "ALLOWED_GLOBAL_WRITES",
    "EffectStats",
    "analyze_effects",
    "effect_rule_registry",
    "ConservationError",
    "ConservationLedger",
    "conserve",
    "check_protocol",
    "AdversaryBudget",
    "ModelConfig",
    "ModelStats",
    "PairModel",
    "ReadModel",
    "SemanticFlags",
    "WriteModel",
    "check_model",
    "explore",
    "render_text",
    "render_json",
    "run_check",
    "sanitize",
    "alias_sanitize",
    "AliasSanitizer",
    "hermetic_sanitize",
    "HermeticitySanitizer",
    "AmbientReadError",
    "HermeticityError",
    "GuardedView",
    "SanitizerError",
    "MonotonicityError",
    "ResourceLeakError",
    "SharedStreamError",
    "StaleViewError",
    "UseAfterRecycleError",
    "RaceDetector",
    "RaceReport",
    "RaceError",
    "detect_races",
    "ScheduleTrace",
    "PerturbationReport",
    "ScheduleRaceError",
    "run_perturbed",
    "assert_schedule_invariant",
]


def run_check(root=None, rules=None, protocol=True) -> list[Finding]:
    """Run the full static suite (lint + protocol) and return the findings.

    ``root`` defaults to the installed ``repro`` package directory, so
    ``run_check()`` with no arguments audits this very code base.
    """
    import pathlib

    if root is None:
        root = pathlib.Path(__file__).resolve().parent.parent
    root = pathlib.Path(root)
    engine = LintEngine(rules=rules)
    findings = engine.check_tree(root)
    if protocol:
        findings.extend(check_protocol(root))
    findings.sort(key=lambda f: (str(f.path), f.line, f.rule_id))
    return findings

"""Determinism lint rules.

Every rule here guards the same invariant: two runs of the same scenario
with the same seed must produce bit-identical results.  The hazards are
the classic ones Gray & Kukol blame for irreproducible transfer
experiments — hidden global RNG state, wall-clock reads leaking into
simulated time, iteration orders that vary between interpreter runs, and
mutable defaults that smuggle state between simulation runs.

Rules are deliberately syntactic (no type inference): they flag the
direct forms of each hazard and accept ``# repro: allow[rule-id]`` where
a human has judged an instance safe.  See docs/CHECKING.md.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, Optional

from .findings import Finding
from .lint import Rule

__all__ = ["DEFAULT_RULES", "rule_registry"]


# -- shared AST helpers -------------------------------------------------------


class _ImportMap:
    """Resolves local names back to the modules they came from."""

    def __init__(self, tree: ast.Module):
        #: local alias -> dotted module name (``import time as t`` -> t: time)
        self.modules: dict[str, str] = {}
        #: local name -> fully dotted origin (``from time import time``)
        self.names: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name.split(".")[0]] = (
                        alias.name)
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.names[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}")

    def qualify(self, node: ast.expr) -> Optional[str]:
        """Dotted origin of a Name/Attribute chain, or None."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = node.id
        if head in self.modules:
            head = self.modules[head]
        elif head in self.names:
            head = self.names[head]
        parts.append(head)
        return ".".join(reversed(parts))


def _call_name(imports: _ImportMap, call: ast.Call) -> Optional[str]:
    return imports.qualify(call.func)


def _is_set_expression(node: ast.expr, imports: _ImportMap) -> bool:
    """True for a set display, set comprehension, or set()/frozenset() call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _call_name(imports, node)
        return name in ("set", "frozenset")
    return False


# -- the rules ----------------------------------------------------------------


class RawRandomRule(Rule):
    """All RNG flows through des/random_streams.py — nowhere else.

    An import of the stdlib ``random`` module anywhere else bypasses the
    named-stream discipline: draws would come from an unnamed (possibly
    shared, possibly unseeded) generator, and adding one component would
    perturb every other component's variates.
    """

    rule_id = "raw-random"
    summary = "stdlib `random` imported outside des/random_streams.py"
    #: random_streams.py is the sanctioned draw root; check/sanitize.py
    #: imports the module only to *patch* its draw functions with trip
    #: wires while a hermetic block runs — the opposite of drawing.
    exempt_suffixes = ("des/random_streams.py", "check/sanitize.py")

    def check(self, tree: ast.Module, path: Path) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "random":
                        yield self.finding(
                            path, node,
                            "import of stdlib `random`; draw variates from "
                            "a named des.RandomStream instead")
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] == "random":
                    yield self.finding(
                        path, node,
                        "import from stdlib `random`; draw variates from "
                        "a named des.RandomStream instead")


class UnseededRngRule(Rule):
    """No draws from implicitly seeded generators.

    ``random.Random()`` with no seed and the module-level functions
    (``random.random()`` …) both seed from the OS — different on every
    run.  Fires even inside des/random_streams.py, which must construct
    ``random.Random(seed)`` explicitly.
    """

    rule_id = "unseeded-rng"
    summary = "RNG constructed or drawn without an explicit seed"

    _MODULE_FUNCTIONS = frozenset({
        "random.random", "random.randint", "random.randrange",
        "random.uniform", "random.choice", "random.choices",
        "random.shuffle", "random.sample", "random.expovariate",
        "random.gauss", "random.normalvariate", "random.betavariate",
        "random.gammavariate", "random.paretovariate", "random.vonmisesvariate",
        "random.weibullvariate", "random.triangular", "random.lognormvariate",
        "random.getrandbits", "random.randbytes",
    })

    def check(self, tree: ast.Module, path: Path) -> Iterator[Finding]:
        imports = _ImportMap(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(imports, node)
            if name is None:
                continue
            if name in self._MODULE_FUNCTIONS:
                yield self.finding(
                    path, node,
                    f"`{name}()` draws from the shared, OS-seeded global "
                    "RNG; use a seeded des.RandomStream")
            elif name in ("random.Random", "random.SystemRandom"):
                if name == "random.SystemRandom" or not (
                        node.args or node.keywords):
                    yield self.finding(
                        path, node,
                        f"`{name}()` without an explicit seed is "
                        "nondeterministic across runs")


class WallClockRule(Rule):
    """Simulated time only: no wall-clock reads in model code.

    A ``time.time()`` (or friends) folded into any simulated quantity
    makes results depend on host speed and scheduling.  Real-time reads
    belong only in reporting code, with an explicit allow comment.
    """

    rule_id = "wall-clock"
    summary = "wall-clock read in simulation code"

    _BANNED = frozenset({
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
        "time.process_time_ns", "time.clock",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    })

    def check(self, tree: ast.Module, path: Path) -> Iterator[Finding]:
        imports = _ImportMap(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(imports, node)
            if name in self._BANNED:
                yield self.finding(
                    path, node,
                    f"`{name}()` reads the wall clock; simulation code "
                    "must use env.now")


class MutableDefaultRule(Rule):
    """No mutable default arguments.

    A mutable default is evaluated once at import time and then shared by
    every call — in event handlers and model constructors that means state
    silently bleeding between simulation runs.
    """

    rule_id = "mutable-default"
    summary = "mutable default argument"

    _MUTABLE_CALLS = frozenset({
        "list", "dict", "set", "bytearray",
        "collections.deque", "collections.defaultdict",
        "collections.Counter", "collections.OrderedDict",
    })

    def _is_mutable(self, node: ast.expr, imports: _ImportMap) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return _call_name(imports, node) in self._MUTABLE_CALLS
        return False

    def check(self, tree: ast.Module, path: Path) -> Iterator[Finding]:
        imports = _ImportMap(tree)
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            arguments = node.args
            positional = arguments.posonlyargs + arguments.args
            pairs = list(zip(positional[len(positional)
                                        - len(arguments.defaults):],
                             arguments.defaults))
            pairs.extend((arg, default) for arg, default
                         in zip(arguments.kwonlyargs, arguments.kw_defaults)
                         if default is not None)
            for arg, default in pairs:
                if self._is_mutable(default, imports):
                    yield self.finding(
                        path, default,
                        f"mutable default for `{arg.arg}` in "
                        f"`{node.name}()` is shared across calls")


class SetIterationRule(Rule):
    """No direct iteration over sets in model code.

    Set iteration order depends on insertion history and element hashes
    (salted for str/bytes), so a loop body with side effects on the
    calendar makes the whole run irreproducible.  Iterate a sorted copy.
    """

    rule_id = "set-iteration"
    summary = "iteration over a set (order is not deterministic)"

    _PASSTHROUGH = ("enumerate", "reversed")

    def _flag_target(self, node: ast.expr,
                     imports: _ImportMap) -> Optional[ast.expr]:
        if _is_set_expression(node, imports):
            return node
        if isinstance(node, ast.Call):
            name = _call_name(imports, node)
            if name in self._PASSTHROUGH and node.args and \
                    _is_set_expression(node.args[0], imports):
                return node.args[0]
        return None

    def check(self, tree: ast.Module, path: Path) -> Iterator[Finding]:
        imports = _ImportMap(tree)
        iters: list[ast.expr] = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
        for target in iters:
            flagged = self._flag_target(target, imports)
            if flagged is not None:
                yield self.finding(
                    path, flagged,
                    "iterating a set: order varies between runs; iterate "
                    "`sorted(...)` instead")


class SaltedHashRule(Rule):
    """No builtin ``hash()`` in model code.

    ``hash(str)`` / ``hash(bytes)`` are salted per interpreter run
    (PYTHONHASHSEED), so anything derived from them — child seeds, shard
    choices, tie-breaks — changes between runs.  Use a stable digest
    (e.g. the FNV in des/random_streams.py).
    """

    rule_id = "salted-hash"
    summary = "builtin hash() is salted per interpreter run"

    def check(self, tree: ast.Module, path: Path) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "hash"):
                yield self.finding(
                    path, node,
                    "builtin hash() output changes with PYTHONHASHSEED; "
                    "use a stable digest")


class ImplicitSeedRule(Rule):
    """Stream factories must be given their master seed explicitly.

    ``StreamFactory()`` silently takes seed 0; library code that buries
    that default cannot be reseeded for independent samples, which is
    exactly the seed-threading gap that makes repeated-run confidence
    intervals meaningless.
    """

    rule_id = "implicit-seed"
    summary = "StreamFactory() constructed without an explicit master seed"

    def check(self, tree: ast.Module, path: Path) -> Iterator[Finding]:
        imports = _ImportMap(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(imports, node)
            if name is not None and name.endswith("StreamFactory"):
                if not node.args and not node.keywords:
                    yield self.finding(
                        path, node,
                        "StreamFactory() with no master seed; thread the "
                        "caller's seed through")
            # dataclasses.field(default_factory=StreamFactory) calls
            # StreamFactory() seedlessly at instantiation time.
            for keyword in node.keywords:
                if keyword.arg != "default_factory":
                    continue
                target = imports.qualify(keyword.value)
                if target is not None and target.endswith("StreamFactory"):
                    yield self.finding(
                        path, keyword.value,
                        "default_factory=StreamFactory constructs an "
                        "implicitly seeded factory; require the caller "
                        "to pass one")


# -- transport-readiness rules ------------------------------------------------
#
# The asyncio sockets backend will run the same protocol code over real
# UDP, where an unguarded wait hangs forever, an unbounded retransmit
# loop floods the network, and a unit-less timeout constant invites a
# 1000x mix-up.  These rules keep the protocol code honest before the
# backend lands.


class RecvUnguardedRule(Rule):
    """Every receive over the lossy transport must be timeout-guarded.

    ``yield sock.recv()`` blocks forever if the datagram was dropped;
    client-side code must use ``recv_wait(timeout_s, ...)``.  A server's
    accept loop may legitimately block for the next request — those
    files carry the exemption.
    """

    rule_id = "recv-unguarded"
    summary = "bare `yield sock.recv()` with no timeout guard"
    exempt_suffixes = ("core/storage_agent.py", "baselines/nfs.py")

    def check(self, tree: ast.Module, path: Path) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Yield) or node.value is None:
                continue
            call = node.value
            if (isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                    and call.func.attr == "recv"):
                yield self.finding(
                    path, node,
                    "bare `yield .recv()` blocks forever on datagram "
                    "loss; use recv_wait(timeout_s, ...) with a bound")


class RetransmitUnboundedRule(Rule):
    """Retransmit loops need an attempt bound.

    A ``while True`` loop around a ``recv_wait`` retries forever when
    the peer is gone: over real sockets that is an unkillable flood.
    Loop over ``range(max_retries)`` and surface the failure.
    """

    rule_id = "retransmit-unbounded"
    summary = "`while True` retransmit loop without an attempt bound"

    def check(self, tree: ast.Module, path: Path) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not (isinstance(node, ast.While)
                    and isinstance(node.test, ast.Constant)
                    and node.test.value is True):
                continue
            for inner in ast.walk(node):
                if (isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Attribute)
                        and inner.func.attr == "recv_wait"):
                    yield self.finding(
                        path, node,
                        "`while True` around recv_wait retries without "
                        "bound; loop over range(max_retries) and raise "
                        "on exhaustion")
                    break


class TimeoutUnitRule(Rule):
    """Timeout constants carry their unit in the name.

    A bare ``timeout = 5`` leaves seconds-vs-milliseconds to the
    reader; every timeout bound to a numeric literal must spell its
    unit (``_s``, ``_ms``, ``_us``, ``_ns``) so the future asyncio
    backend cannot misread a DES constant.
    """

    rule_id = "timeout-unit"
    summary = "timeout constant without a unit suffix in its name"

    _UNIT_SUFFIXES = ("_s", "_ms", "_us", "_ns")

    def _is_bad_name(self, name: str) -> bool:
        lowered = name.lower()
        if not (lowered == "timeout" or lowered.endswith("_timeout")
                or lowered.startswith("timeout_")):
            return False
        return not lowered.endswith(self._UNIT_SUFFIXES)

    def _is_number(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, (int, float)) and not isinstance(
                node.value, bool)
        if isinstance(node, ast.UnaryOp) and isinstance(
                node.op, (ast.USub, ast.UAdd)):
            return self._is_number(node.operand)
        return False

    def check(self, tree: ast.Module, path: Path) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and self._is_number(node.value):
                for target in node.targets:
                    if (isinstance(target, ast.Name)
                            and self._is_bad_name(target.id)):
                        yield self.finding(
                            path, target,
                            f"`{target.id}` bound to a bare number: name "
                            "the unit (e.g. `timeout_s`)")
            elif isinstance(node, ast.AnnAssign) and node.value is not None \
                    and self._is_number(node.value):
                if (isinstance(node.target, ast.Name)
                        and self._is_bad_name(node.target.id)):
                    yield self.finding(
                        path, node.target,
                        f"`{node.target.id}` bound to a bare number: name "
                        "the unit (e.g. `timeout_s`)")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                arguments = node.args
                positional = arguments.posonlyargs + arguments.args
                pairs = list(zip(
                    positional[len(positional) - len(arguments.defaults):],
                    arguments.defaults))
                pairs.extend(
                    (arg, default) for arg, default
                    in zip(arguments.kwonlyargs, arguments.kw_defaults)
                    if default is not None)
                for arg, default in pairs:
                    if self._is_bad_name(arg.arg) and self._is_number(default):
                        yield self.finding(
                            path, default,
                            f"parameter `{arg.arg}` defaults to a bare "
                            "number: name the unit (e.g. `timeout_s`)")
            elif isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if (keyword.arg is not None
                            and self._is_bad_name(keyword.arg)
                            and self._is_number(keyword.value)):
                        yield self.finding(
                            path, keyword.value,
                            f"keyword `{keyword.arg}` passed a bare "
                            "number: name the unit (e.g. `timeout_s`)")


#: Rule classes in reporting order; instantiate to get a default rule set.
DEFAULT_RULES = (
    RawRandomRule,
    UnseededRngRule,
    WallClockRule,
    MutableDefaultRule,
    SetIterationRule,
    SaltedHashRule,
    ImplicitSeedRule,
    RecvUnguardedRule,
    RetransmitUnboundedRule,
    TimeoutUnitRule,
)


def rule_registry() -> dict[str, type[Rule]]:
    """Rule id -> rule class, for --rules selection and the docs."""
    return {rule.rule_id: rule for rule in DEFAULT_RULES}

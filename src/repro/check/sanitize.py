"""Runtime sanitizer for DES runs: ``with sanitize(env): ...``.

Three dynamic checks the static rules cannot make:

* **event-time monotonicity** — every event popped from the calendar must
  carry a timestamp no earlier than the clock or any previously popped
  event.  Catches clock tampering and negative-delay scheduling at the
  exact offending event, before the engine's own (later, vaguer) guard.
* **resource leaks** — every granted :class:`~repro.des.resources.Resource`
  request must be released by the time the sanitized block ends.  A
  handle held at exit is a leak: in a longer run that server slot is gone
  forever and throughput quietly degrades.
* **cross-stream RNG sharing** — one :class:`~repro.des.random_streams.
  RandomStream` drawn by more than one process entangles the two
  components' variate sequences: reordering unrelated events changes
  both.  Reported as warnings by default (``on_shared_stream="error"``
  upgrades), since serialized sharing can be deliberate.

Overhead is zero when not sanitizing: the hooks in the engine and the
streams are no-ops until installed.

Usage::

    from repro.check import sanitize

    env = Environment()
    streams = StreamFactory(seed)
    ... build the model ...
    with sanitize(env, streams) as monitor:
        env.run()
    assert not monitor.warnings
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import TYPE_CHECKING, Optional

from ..des.events import StaleEventError

if TYPE_CHECKING:  # pragma: no cover
    from ..des.engine import Environment
    from ..des.random_streams import RandomStream, StreamFactory

__all__ = ["sanitize", "Sanitizer", "SanitizerError", "MonotonicityError",
           "ResourceLeakError", "SharedStreamError",
           "alias_sanitize", "AliasSanitizer", "GuardedView",
           "StaleViewError", "UseAfterRecycleError",
           "hermetic_sanitize", "HermeticitySanitizer",
           "AmbientReadError", "HermeticityError"]

#: Touching a recycled pooled event raises this (re-exported from the
#: event layer so sanitizer users need one import).
UseAfterRecycleError = StaleEventError


class SanitizerError(AssertionError):
    """Base class: a sanitized run violated a determinism invariant."""


class MonotonicityError(SanitizerError):
    """An event was processed at a time earlier than the clock."""


class ResourceLeakError(SanitizerError):
    """Resource requests were still held when the sanitized block ended."""


class SharedStreamError(SanitizerError):
    """One random stream was drawn by more than one process."""


class StaleViewError(SanitizerError):
    """A guarded view was read after its backing buffer moved on."""


class Sanitizer:
    """The installed monitor set; created by :func:`sanitize`."""

    def __init__(self, env: "Environment",
                 streams: "Optional[StreamFactory]" = None,
                 check_monotonicity: bool = True,
                 check_leaks: bool = True,
                 on_shared_stream: str = "warn"):
        if on_shared_stream not in ("warn", "error", "ignore"):
            raise ValueError(
                f"on_shared_stream must be warn/error/ignore, "
                f"got {on_shared_stream!r}")
        self.env = env
        self.streams = streams
        self.check_monotonicity = check_monotonicity
        self.check_leaks = check_leaks
        self.on_shared_stream = on_shared_stream
        #: Human-readable warnings collected during the run.
        self.warnings: list[str] = []
        self._last_when = env.now
        self._events_seen = 0
        #: request id -> (resource, request) for grants not yet released.
        self._held: dict[int, tuple] = {}
        self._acquires = 0
        self._releases = 0
        #: stream name -> processes that drew from it (strong refs: ids
        #: must stay unique for the lifetime of the sanitizer).
        self._drawers: dict[str, list] = {}
        self._shared_reported: set[str] = set()
        self._installed = False

    # -- lifecycle ----------------------------------------------------------

    def install(self) -> None:
        """Attach to the environment (and streams, if given)."""
        if self._installed:  # pragma: no cover - defensive
            return
        if self.check_monotonicity:
            self.env.add_step_monitor(self._on_step)
        if self.check_leaks:
            self.env.add_resource_monitor(self._on_resource)
        if self.streams is not None and self.on_shared_stream != "ignore":
            self.streams.attach_observer(self._on_draw)
        self._installed = True

    def uninstall(self) -> None:
        """Detach every hook (leaves collected state readable)."""
        if not self._installed:  # pragma: no cover - defensive
            return
        self.env.remove_step_monitor(self._on_step)
        self.env.remove_resource_monitor(self._on_resource)
        if self.streams is not None:
            self.streams.detach_observer()
        self._installed = False

    def finish(self) -> None:
        """End-of-block verdict: raise on leaked resources."""
        if self.check_leaks and self._held:
            lines = []
            for resource, request in self._held.values():
                lines.append(f"  {resource!r} held by {request!r}")
            raise ResourceLeakError(
                f"{len(self._held)} resource request(s) acquired but never "
                "released:\n" + "\n".join(sorted(lines)))

    # -- hook callbacks -----------------------------------------------------

    def _on_step(self, when: float, event) -> None:
        self._events_seen += 1
        if when < self.env.now or when < self._last_when:
            raise MonotonicityError(
                f"event {event!r} processed at t={when:.9f} after the "
                f"clock reached t={max(self.env.now, self._last_when):.9f}")
        self._last_when = when

    def _on_resource(self, action: str, resource, request) -> None:
        if action == "acquire":
            self._acquires += 1
            self._held[id(request)] = (resource, request)
        elif action == "release":
            self._releases += 1
            self._held.pop(id(request), None)

    def _on_draw(self, stream: "RandomStream") -> None:
        process = self.env.active_process
        if process is None:
            # Setup-time draws (model construction) have no owner.
            return
        name = stream.name or repr(stream)
        owners = self._drawers.setdefault(name, [])
        if not any(owner is process for owner in owners):
            owners.append(process)
        if len(owners) > 1 and name not in self._shared_reported:
            self._shared_reported.add(name)
            message = (f"stream {name!r} drawn by {len(owners)} distinct "
                       f"processes (latest: {process!r}); their variate "
                       "sequences are now interleaving-dependent")
            if self.on_shared_stream == "error":
                raise SharedStreamError(message)
            self.warnings.append(message)

    # -- introspection ------------------------------------------------------

    @property
    def events_processed(self) -> int:
        """Events popped while the sanitizer was installed."""
        return self._events_seen

    @property
    def held_requests(self) -> int:
        """Currently outstanding (granted, unreleased) requests."""
        return len(self._held)

    def shared_streams(self) -> dict[str, int]:
        """Stream name -> number of distinct drawing processes (>1 only)."""
        return {name: len(owners) for name, owners in self._drawers.items()
                if len(owners) > 1}


@contextmanager
def sanitize(env: "Environment",
             streams: "Optional[StreamFactory]" = None,
             check_monotonicity: bool = True,
             check_leaks: bool = True,
             on_shared_stream: str = "warn"):
    """Context manager running a DES block under the sanitizer.

    Raises :class:`MonotonicityError` / :class:`SharedStreamError` at the
    offending event, and :class:`ResourceLeakError` at block exit if any
    granted resource request was never released.  If the body itself
    raises, that exception propagates unmasked (no leak check).
    """
    monitor = Sanitizer(env, streams,
                        check_monotonicity=check_monotonicity,
                        check_leaks=check_leaks,
                        on_shared_stream=on_shared_stream)
    monitor.install()
    try:
        yield monitor
    finally:
        monitor.uninstall()
    monitor.finish()


# -- aliasing sanitizer (the runtime half of `repro check --aliasing`) -----


def _capture_frames(depth: int, skip: int) -> tuple:
    """The ``depth`` innermost caller frames as raw tuples.

    A manual ``sys._getframe`` walk storing ``(filename, lineno,
    funcname)`` — formatting happens lazily at raise time, so the
    per-recycle cost stays a few attribute reads (``traceback``'s
    renderers are two orders of magnitude slower and would blow the
    sanitizer's 1.5x overhead budget).
    """
    if depth <= 0:
        return ()
    try:
        frame = sys._getframe(skip)
    except ValueError:  # pragma: no cover - shallow interpreter stack
        return ()
    frames = []
    while frame is not None and len(frames) < depth:
        code = frame.f_code
        frames.append((code.co_filename, frame.f_lineno, code.co_name))
        frame = frame.f_back
    return tuple(frames)


def _render_frames(frames) -> str:
    if not frames:
        return "    (stack not captured: stack_depth=0)"
    return "\n".join(f"    {filename}:{lineno} in {funcname}"
                     for filename, lineno, funcname in frames)


class _InstrumentedPool(list):
    """A free list that marks events stale on append and blesses on pop.

    Swapped in for the environment's ``_timeout_pool`` /
    ``_release_pool`` / ``_request_pool`` while the aliasing sanitizer
    is installed.  Pooling itself keeps running — the engine's
    ``_unmonitored`` gate never sees the sanitizer — so the instrumented
    run exercises exactly the recycling the production run performs.

    Both overrides are fully inlined: this pair of methods is the
    sanitizer's entire per-event cost, and the 1.5x overhead gate in
    ``benchmarks/check_regression.py`` prices every extra slot write.
    Staleness is one store into the event's ``_stale`` slot (this pool),
    cleared on pop — the event's ``_value`` is never touched, so the
    sanitized run is trivially bit-identical and a ``Release``'s
    value-free invariant survives untouched.  Each pool is recycled
    into from essentially one drain-loop line, so a single-entry
    per-pool memo (code object + bytecode offset) makes the
    recycle-site stack walk a once-per-site event; the stack attached
    to a :class:`StaleEventError` is the pool's most recently captured
    site, which for these single-site pools is the event's own.
    """

    __slots__ = ("_sanitizer", "_kind", "_depth", "_initial",
                 "recycled", "_memo_code", "_memo_lasti", "_memo_frames")

    def __init__(self, sanitizer: "AliasSanitizer", kind: str, items):
        super().__init__(items)
        self._sanitizer = sanitizer
        self._kind = kind
        self._depth = sanitizer.stack_depth
        self._initial = len(self)
        self.recycled = 0
        self._memo_code = None
        self._memo_lasti = -1
        self._memo_frames: tuple = ()

    @property
    def rearmed(self) -> int:
        """Pops so far, derived: appends + initial load - still parked."""
        return self.recycled + self._initial - len(self)

    def append(self, event) -> None:
        count = self.recycled = self.recycled + 1
        # Sampled site capture: the stack walk runs on the first append
        # and every 16th after that, so the steady-state cost of the
        # memo is one mask-and-compare instead of a sys._getframe call.
        # A pool recycled from two alternating sites can therefore lag
        # up to 15 recycles behind in its diagnostics — in this tree
        # every pool has exactly one recycle site, so the memoized
        # stack is the event's own.
        if self._depth and (count & 15) == 1:
            frame = sys._getframe(1)
            if (frame.f_lasti != self._memo_lasti
                    or frame.f_code is not self._memo_code):
                self._memo_code = frame.f_code
                self._memo_lasti = frame.f_lasti
                walked = []
                while frame is not None and len(walked) < self._depth:
                    code = frame.f_code
                    walked.append(
                        (code.co_filename, frame.f_lineno, code.co_name))
                    frame = frame.f_back
                self._memo_frames = tuple(walked)
        event._stale = self
        list.append(self, event)

    def pop(self, index: int = -1):
        event = list.pop(self, index)
        if event.callbacks:
            self._sanitizer._raise_stale_rearm(self._kind, event, self)
        event._stale = None
        return event

    def _describe_stale(self) -> str:
        """Render the recycle diagnostics for :class:`StaleEventError`."""
        lines = [
            f"{self._kind} was recycled to the free list and may be "
            "re-armed as a different logical event at any moment",
            "recycled at:",
        ]
        if self._memo_frames:
            for filename, lineno, funcname in self._memo_frames:
                lines.append(f"    {filename}:{lineno} in {funcname}")
        else:
            lines.append(
                "    (recycle stack not captured: stack_depth=0)")
        lines.append("use site: this exception's own traceback")
        return "\n".join(lines)


class _BufferState:
    """Generation stamp for one adopted backing buffer."""

    __slots__ = ("label", "generation", "frames", "reason")

    def __init__(self, label: str):
        self.label = label
        self.generation = 0
        self.frames: tuple = ()
        self.reason = ""


class GuardedView:
    """A borrow of an adopted buffer that checks its generation stamp.

    Produced by :meth:`AliasSanitizer.borrow`.  Every access re-checks
    the backing buffer's generation: if the buffer was mutated, flushed
    or retired since the borrow, the access raises
    :class:`StaleViewError` carrying the mutation site's stack (the use
    site is the exception's own traceback — dual stacks).

    No memoryview export is held between accesses — a live export would
    pin a bytearray against resizing (``BufferError`` on extend) and the
    guarded production path must behave exactly like the bare one.  Each
    access materializes, uses and releases a fresh view.
    """

    __slots__ = ("_state", "_buffer", "_start", "_stop", "_generation",
                 "_borrow_frames")

    def __init__(self, state: _BufferState, buffer, start: int,
                 stop: Optional[int], generation: int,
                 borrow_frames: tuple):
        self._state = state
        self._buffer = buffer
        self._start = start
        self._stop = stop
        self._generation = generation
        self._borrow_frames = borrow_frames

    def check(self) -> None:
        """Raise :class:`StaleViewError` if the borrow went stale."""
        state = self._state
        if state.generation != self._generation:
            raise StaleViewError(
                f"stale view of buffer {state.label!r}: borrowed at "
                f"generation {self._generation}, backing buffer was "
                f"{state.reason or 'mutated'} (now generation "
                f"{state.generation})\n"
                "borrowed at:\n" + _render_frames(self._borrow_frames)
                + "\ninvalidated at:\n" + _render_frames(state.frames)
                + "\nuse site: this exception's own traceback")

    def _materialize(self) -> memoryview:
        self.check()
        view = memoryview(self._buffer)
        if self._start or self._stop is not None:
            view = view[self._start:self._stop]
        return view

    @property
    def stale(self) -> bool:
        """True once the backing buffer has moved on."""
        return self._state.generation != self._generation

    @property
    def view(self) -> memoryview:
        """A fresh underlying memoryview (checked; caller releases)."""
        return self._materialize()

    def tobytes(self) -> bytes:
        """Checked explicit copy (the sanctioned escape hatch)."""
        view = self._materialize()
        try:
            return view.tobytes()
        finally:
            view.release()

    def __len__(self) -> int:
        view = self._materialize()
        try:
            return len(view)
        finally:
            view.release()

    def __getitem__(self, index):
        view = self._materialize()
        try:
            if isinstance(index, slice):
                start, stop, step = index.indices(len(view))
                if step != 1:
                    raise ValueError(
                        "GuardedView does not support extended slices")
                base = self._start
                return GuardedView(self._state, self._buffer,
                                   base + start, base + stop,
                                   self._generation, self._borrow_frames)
            return view[index]
        finally:
            view.release()

    def __bytes__(self) -> bytes:
        return self.tobytes()


class AliasSanitizer:
    """Runtime use-after-recycle and stale-view detection.

    Two mechanisms, both zero-cost when not installed:

    * the environment's event free lists are swapped for
      :class:`_InstrumentedPool`\\ s — every recycled event is stamped
      stale (one slot write; its ``_value`` is never touched) so reading
      ``event.value`` through a stale reference raises
      :class:`UseAfterRecycleError` with the recycle site's stack; a
      pooled event re-armed while something still waits on it
      (non-empty callbacks) is reported at the re-arm, before the
      corruption propagates;
    * buffers registered with :meth:`adopt` get a generation stamp,
      advanced by the ``buffer-mutate`` / ``buffer-retire`` alias-hook
      notifications the data path emits; :meth:`borrow` hands out
      :class:`GuardedView` objects that trip :class:`StaleViewError` on
      any access past the stamp.

    **Install before ``env.run()``**: the drain loop binds the free
    lists to locals when it starts, so a mid-run install would watch the
    wrong lists.  Unlike the determinism :class:`Sanitizer` this never
    touches the step/schedule/resource monitor lists — the engine's
    ``_unmonitored`` fast path (and therefore pooling, the very thing
    under test) stays enabled and bit-identical.
    """

    _POOL_ATTRS = (("_timeout_pool", "Timeout"),
                   ("_release_pool", "Release"),
                   ("_request_pool", "Request"))

    def __init__(self, env: "Environment", stack_depth: int = 4):
        self.env = env
        self.stack_depth = stack_depth
        self._recycled_base = 0
        self._rearmed_base = 0
        self._buffers: dict[int, _BufferState] = {}
        self._plain: dict[str, list] = {}
        self._pools: list[_InstrumentedPool] = []
        self._installed = False

    # -- lifecycle ----------------------------------------------------------

    def install(self) -> None:
        """Swap in instrumented pools and attach the buffer hook."""
        if self._installed:  # pragma: no cover - defensive
            return
        for attr, kind in self._POOL_ATTRS:
            plain = getattr(self.env, attr)
            self._plain[attr] = plain
            pool = _InstrumentedPool(self, kind, plain)
            if pool:
                # Events already resting on the free list are just as
                # stale as ones recycled later; mark them too.  The
                # memo starts out holding the install site so their
                # diagnostics have *a* stack until the first real
                # recycle overwrites it.
                pool._memo_frames = _capture_frames(self.stack_depth,
                                                    skip=2)
                for event in pool:
                    event._stale = pool
            setattr(self.env, attr, pool)
            self._pools.append(pool)
        self.env.add_alias_monitor(self._on_alias)
        self._installed = True

    def uninstall(self) -> None:
        """Restore the plain pools, un-poisoning every parked event."""
        if not self._installed:  # pragma: no cover - defensive
            return
        for attr, _ in self._POOL_ATTRS:
            pool = getattr(self.env, attr)
            for event in pool:
                event._stale = None
            plain = self._plain.pop(attr)
            plain[:] = pool
            setattr(self.env, attr, plain)
        for pool in self._pools:
            self._recycled_base += pool.recycled
            self._rearmed_base += pool.rearmed
        self._pools.clear()
        self.env.remove_alias_monitor(self._on_alias)
        self._installed = False

    # -- pool hooks ---------------------------------------------------------

    @property
    def events_recycled(self) -> int:
        """Total pool appends observed (live pools + uninstalled runs)."""
        return self._recycled_base + sum(p.recycled for p in self._pools)

    @property
    def events_rearmed(self) -> int:
        """Total pool pops observed (live pools + uninstalled runs)."""
        return self._rearmed_base + sum(p.rearmed for p in self._pools)

    def _raise_stale_rearm(self, kind: str, event, pool) -> None:
        raise StaleEventError(
            f"pooled {kind} re-armed while {len(event.callbacks)} "
            "callback(s) still wait on its previous life; the stale "
            f"waiter would fire for the wrong logical event\n"
            f"{pool._describe_stale()}\n"
            "re-arm site: this exception's own traceback")

    # -- buffer hooks -------------------------------------------------------

    def adopt(self, buffer, label: str = "") -> None:
        """Track ``buffer`` under a generation stamp from now on."""
        self._buffers[id(buffer)] = _BufferState(
            label or f"buffer@{id(buffer):#x}")

    def borrow(self, buffer) -> GuardedView:
        """A guarded zero-copy view of an adopted buffer."""
        state = self._buffers.get(id(buffer))
        if state is None:
            raise ValueError(
                "buffer is not adopted; call adopt(buffer) first")
        return GuardedView(state, buffer, 0, None, state.generation,
                           _capture_frames(self.stack_depth, skip=2))

    def _on_alias(self, kind: str, buffer) -> None:
        state = self._buffers.get(id(buffer))
        if state is None:
            return
        state.generation += 1
        state.reason = ("retired (flushed/swapped out)"
                        if kind == "buffer-retire" else "mutated in place")
        # First captured frame is the emitter behind env._notify_alias.
        state.frames = _capture_frames(self.stack_depth, skip=3)

    # -- introspection ------------------------------------------------------

    @property
    def pooled_events(self) -> int:
        """Events currently parked (poisoned) across the three pools."""
        return sum(len(getattr(self.env, attr))
                   for attr, _ in self._POOL_ATTRS)


@contextmanager
def alias_sanitize(env: "Environment", stack_depth: int = 4):
    """Run a DES block under the aliasing sanitizer.

    Enter **before** ``env.run()`` (the drain loop binds the free lists
    to locals at start).  Inside the block, any read of a recycled
    pooled event raises :class:`UseAfterRecycleError` and any access to
    a stale :class:`GuardedView` raises :class:`StaleViewError`, both
    carrying the invalidation site's stack alongside the use site's
    traceback.  ``stack_depth=0`` trades the recycle-site stack for the
    cheapest possible poisoning (shared message only).
    """
    monitor = AliasSanitizer(env, stack_depth=stack_depth)
    monitor.install()
    try:
        yield monitor
    finally:
        monitor.uninstall()


# -- hermeticity sanitizer (the runtime half of `repro check --effects`) ----


class AmbientReadError(SanitizerError):
    """Trapped ambient state (wall clock, module-level randomness,
    ``os.environ``) was read inside a hermetic block."""


class HermeticityError(SanitizerError):
    """Registered module-global state changed across a hermetic block."""


#: ``time`` functions trapped inside a hermetic block.  ``perf_counter``
#: (and ``perf_counter_ns``) is deliberately *not* trapped: it is the
#: blessed benchmarking clock, read by the very harness that wraps
#: cached runs in this sanitizer.
_TRAPPED_TIME = ("time", "time_ns", "monotonic", "monotonic_ns",
                 "process_time", "process_time_ns")

#: ``random`` module-level draw functions trapped inside a hermetic
#: block.  Patching the module leaves ``random.Random`` *instances*
#: (``RandomStream._rng``) untouched — exactly the sanctioned/forbidden
#: split the static ``effect-unseeded-random`` rule enforces.
_TRAPPED_RANDOM = ("random", "randint", "randrange", "uniform", "choice",
                   "choices", "shuffle", "sample", "expovariate", "gauss",
                   "normalvariate", "betavariate", "gammavariate",
                   "paretovariate", "vonmisesvariate", "weibullvariate",
                   "triangular", "lognormvariate", "getrandbits",
                   "randbytes", "seed")

#: Module-global types worth fingerprinting: mutable containers plus
#: the ``itertools.count`` id-counter idiom (its repr advances with it).
_MUTABLE_TYPE_NAMES = ("count",)


class _TrappedEnviron:
    """Swapped in for ``os.environ``: every access is a violation.

    ``os.getenv`` resolves ``environ`` from the ``os`` module globals at
    call time, so replacing the one object traps both spellings.
    """

    __slots__ = ("_sanitizer", "_real")

    def __init__(self, sanitizer: "HermeticitySanitizer", real):
        object.__setattr__(self, "_sanitizer", sanitizer)
        object.__setattr__(self, "_real", real)

    def _trip(self, how: str):
        self._sanitizer._trip(f"os.environ {how}")

    def __getitem__(self, key):
        self._trip(f"[{key!r}] access")

    def __setitem__(self, key, value):
        self._trip(f"[{key!r}] write")

    def __delitem__(self, key):
        self._trip(f"[{key!r}] delete")

    def __contains__(self, key):
        self._trip(f"membership test for {key!r}")

    def __iter__(self):
        self._trip("iteration")

    def __len__(self):
        self._trip("len()")

    def get(self, key, default=None):
        self._trip(f".get({key!r}) access")

    def setdefault(self, key, default=None):
        self._trip(f".setdefault({key!r})")

    def pop(self, key, *default):
        self._trip(f".pop({key!r})")

    def update(self, *args, **kwargs):
        self._trip(".update(...)")

    def keys(self):
        self._trip(".keys() access")

    def values(self):
        self._trip(".values() access")

    def items(self):
        self._trip(".items() access")

    def copy(self):
        self._trip(".copy() access")


class HermeticitySanitizer:
    """Runtime cache-soundness check: the dynamic half of
    ``repro check --effects``.

    Wrap the block that computes a to-be-cached result.  Two mechanisms:

    * **ambient-read traps** — ``time.time``/``monotonic`` (but not the
      benchmarking ``perf_counter``), every ``random`` module-level draw
      function, and ``os.environ``/``os.getenv`` are replaced with trip
      wires for the duration of the block.  Any call raises
      :class:`AmbientReadError` carrying the block's entry-site stack
      plus the use site (the exception's own traceback) — the same dual
      stacks the :class:`AliasSanitizer` reports.  Seeded
      ``random.Random`` *instances* (``RandomStream._rng``) keep working:
      only the ambient module-level state is fenced off.
    * **module-global snapshot/diff** — mutable module-level objects
      (dicts, lists, sets, bytearrays, ``itertools.count`` counters)
      across the watched modules are fingerprinted on install; at
      :meth:`finish` any fingerprint drift outside ``allowed`` raises
      :class:`HermeticityError` naming every global that changed.  This
      is the runtime face of ``effect-global-write`` /
      ``effect-unkeyed-input``: state the cache key cannot see must not
      change while producing a cacheable result.

    ``allowed`` defaults to the same declared exception list the static
    pass uses (:data:`repro.check.effects.ALLOWED_GLOBAL_WRITES` — the
    ``sim.cache._code_version_cache`` per-process memo).

    The traps patch process-wide module attributes: hermetic blocks are
    for serial in-process runs (don't wrap pool *dispatch*, wrap the
    worker body or a serial re-read).
    """

    def __init__(self, allowed=None, stack_depth: int = 4,
                 trap_time: bool = True, trap_random: bool = True,
                 trap_environ: bool = True):
        if allowed is None:
            from .effects import ALLOWED_GLOBAL_WRITES
            allowed = ALLOWED_GLOBAL_WRITES
        self.allowed = frozenset(allowed)
        self.stack_depth = stack_depth
        self.trap_time = trap_time
        self.trap_random = trap_random
        self.trap_environ = trap_environ
        #: (module name, attr) pairs under snapshot/diff.
        self._watched: list[tuple[str, str]] = []
        self._baseline: dict[tuple[str, str], str] = {}
        self._saved: list[tuple[object, str, object]] = []
        self._entry_frames: tuple = ()
        self._installed = False
        #: Ambient reads trapped (for tests/introspection).
        self.trips = 0

    # -- watch registration -------------------------------------------------

    def watch_module(self, module) -> None:
        """Fingerprint every mutable module-level object in ``module``."""
        for attr in sorted(vars(module)):
            if attr.startswith("__"):
                continue
            value = vars(module)[attr]
            if isinstance(value, (dict, list, set, bytearray)) or \
                    type(value).__name__ in _MUTABLE_TYPE_NAMES:
                entry = (module.__name__, attr)
                if entry not in self._watched:
                    self._watched.append(entry)

    def watch_package(self, prefix: str = "repro") -> None:
        """Watch every already-imported module under ``prefix``."""
        for name in sorted(sys.modules):
            module = sys.modules[name]
            if module is None:
                continue
            if name == prefix or name.startswith(prefix + "."):
                self.watch_module(module)

    def _fingerprint(self, module_name: str, attr: str) -> str:
        module = sys.modules.get(module_name)
        if module is None:  # pragma: no cover - module dropped mid-run
            return "<gone>"
        value = getattr(module, attr, None)
        if isinstance(value, dict):
            return repr(sorted((repr(k), repr(v))
                               for k, v in value.items()))
        if isinstance(value, set):
            return repr(sorted(repr(item) for item in value))
        return repr(value)

    # -- lifecycle ----------------------------------------------------------

    def install(self) -> None:
        """Snapshot watched globals and arm the ambient-read traps."""
        if self._installed:  # pragma: no cover - defensive
            return
        self._entry_frames = _capture_frames(self.stack_depth, skip=2)
        for entry in self._watched:
            self._baseline[entry] = self._fingerprint(*entry)
        if self.trap_time:
            import time as time_module
            for name in _TRAPPED_TIME:
                self._patch(time_module, name,
                            self._make_trap(f"time.{name}()"))
        if self.trap_random:
            import random as random_module
            for name in _TRAPPED_RANDOM:
                self._patch(random_module, name,
                            self._make_trap(f"random.{name}()"))
        if self.trap_environ:
            import os as os_module
            self._patch(os_module, "environ",
                        _TrappedEnviron(self, os_module.environ))
        self._installed = True

    def uninstall(self) -> None:
        """Disarm every trap (snapshots stay for :meth:`finish`)."""
        if not self._installed:  # pragma: no cover - defensive
            return
        for module, name, original in reversed(self._saved):
            setattr(module, name, original)
        self._saved.clear()
        self._installed = False

    def finish(self) -> None:
        """Diff the snapshots; raise on undeclared global drift."""
        drifted = []
        for entry in self._watched:
            qualname = ".".join(entry)
            if qualname in self.allowed:
                continue
            now = self._fingerprint(*entry)
            if now != self._baseline.get(entry, now):
                drifted.append(qualname)
        if drifted:
            raise HermeticityError(
                f"{len(drifted)} module global(s) changed across a "
                "hermetic block — this state is invisible to the cache "
                "key, so the cached result is not a pure function of "
                "(SimConfig, code version):\n"
                + "\n".join(f"  {name}" for name in sorted(drifted))
                + "\nhermetic block entered at:\n"
                + _render_frames(self._entry_frames))

    # -- trap plumbing ------------------------------------------------------

    def _patch(self, module, name: str, replacement) -> None:
        self._saved.append((module, name, getattr(module, name)))
        setattr(module, name, replacement)

    def _make_trap(self, label: str):
        def trap(*args, **kwargs):
            self._trip(label)
        return trap

    def _trip(self, label: str):
        self.trips += 1
        raise AmbientReadError(
            f"{label} read inside a hermetic block; a cached result must "
            "be a pure function of (SimConfig, code version) — draw from "
            "a seeded StreamFactory stream or move the read outside the "
            "cached run\n"
            "hermetic block entered at:\n"
            + _render_frames(self._entry_frames)
            + "\nuse site: this exception's own traceback")


@contextmanager
def hermetic_sanitize(allowed=None, watch_prefix: str = "repro",
                      stack_depth: int = 4, trap_time: bool = True,
                      trap_random: bool = True, trap_environ: bool = True):
    """Run a cached computation under the hermeticity sanitizer.

    Watches every imported module under ``watch_prefix``, arms the
    ambient-read traps, and at block exit diffs the module-global
    snapshots.  Raises :class:`AmbientReadError` at the offending read
    and :class:`HermeticityError` at exit on undeclared global drift; a
    body exception propagates unmasked (traps disarmed, no diff).
    """
    monitor = HermeticitySanitizer(
        allowed=allowed, stack_depth=stack_depth, trap_time=trap_time,
        trap_random=trap_random, trap_environ=trap_environ)
    if watch_prefix:
        monitor.watch_package(watch_prefix)
    monitor.install()
    try:
        yield monitor
    finally:
        monitor.uninstall()
    monitor.finish()

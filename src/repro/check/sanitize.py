"""Runtime sanitizer for DES runs: ``with sanitize(env): ...``.

Three dynamic checks the static rules cannot make:

* **event-time monotonicity** — every event popped from the calendar must
  carry a timestamp no earlier than the clock or any previously popped
  event.  Catches clock tampering and negative-delay scheduling at the
  exact offending event, before the engine's own (later, vaguer) guard.
* **resource leaks** — every granted :class:`~repro.des.resources.Resource`
  request must be released by the time the sanitized block ends.  A
  handle held at exit is a leak: in a longer run that server slot is gone
  forever and throughput quietly degrades.
* **cross-stream RNG sharing** — one :class:`~repro.des.random_streams.
  RandomStream` drawn by more than one process entangles the two
  components' variate sequences: reordering unrelated events changes
  both.  Reported as warnings by default (``on_shared_stream="error"``
  upgrades), since serialized sharing can be deliberate.

Overhead is zero when not sanitizing: the hooks in the engine and the
streams are no-ops until installed.

Usage::

    from repro.check import sanitize

    env = Environment()
    streams = StreamFactory(seed)
    ... build the model ...
    with sanitize(env, streams) as monitor:
        env.run()
    assert not monitor.warnings
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..des.engine import Environment
    from ..des.random_streams import RandomStream, StreamFactory

__all__ = ["sanitize", "Sanitizer", "SanitizerError", "MonotonicityError",
           "ResourceLeakError", "SharedStreamError"]


class SanitizerError(AssertionError):
    """Base class: a sanitized run violated a determinism invariant."""


class MonotonicityError(SanitizerError):
    """An event was processed at a time earlier than the clock."""


class ResourceLeakError(SanitizerError):
    """Resource requests were still held when the sanitized block ended."""


class SharedStreamError(SanitizerError):
    """One random stream was drawn by more than one process."""


class Sanitizer:
    """The installed monitor set; created by :func:`sanitize`."""

    def __init__(self, env: "Environment",
                 streams: "Optional[StreamFactory]" = None,
                 check_monotonicity: bool = True,
                 check_leaks: bool = True,
                 on_shared_stream: str = "warn"):
        if on_shared_stream not in ("warn", "error", "ignore"):
            raise ValueError(
                f"on_shared_stream must be warn/error/ignore, "
                f"got {on_shared_stream!r}")
        self.env = env
        self.streams = streams
        self.check_monotonicity = check_monotonicity
        self.check_leaks = check_leaks
        self.on_shared_stream = on_shared_stream
        #: Human-readable warnings collected during the run.
        self.warnings: list[str] = []
        self._last_when = env.now
        self._events_seen = 0
        #: request id -> (resource, request) for grants not yet released.
        self._held: dict[int, tuple] = {}
        self._acquires = 0
        self._releases = 0
        #: stream name -> processes that drew from it (strong refs: ids
        #: must stay unique for the lifetime of the sanitizer).
        self._drawers: dict[str, list] = {}
        self._shared_reported: set[str] = set()
        self._installed = False

    # -- lifecycle ----------------------------------------------------------

    def install(self) -> None:
        """Attach to the environment (and streams, if given)."""
        if self._installed:  # pragma: no cover - defensive
            return
        if self.check_monotonicity:
            self.env.add_step_monitor(self._on_step)
        if self.check_leaks:
            self.env.add_resource_monitor(self._on_resource)
        if self.streams is not None and self.on_shared_stream != "ignore":
            self.streams.attach_observer(self._on_draw)
        self._installed = True

    def uninstall(self) -> None:
        """Detach every hook (leaves collected state readable)."""
        if not self._installed:  # pragma: no cover - defensive
            return
        self.env.remove_step_monitor(self._on_step)
        self.env.remove_resource_monitor(self._on_resource)
        if self.streams is not None:
            self.streams.detach_observer()
        self._installed = False

    def finish(self) -> None:
        """End-of-block verdict: raise on leaked resources."""
        if self.check_leaks and self._held:
            lines = []
            for resource, request in self._held.values():
                lines.append(f"  {resource!r} held by {request!r}")
            raise ResourceLeakError(
                f"{len(self._held)} resource request(s) acquired but never "
                "released:\n" + "\n".join(sorted(lines)))

    # -- hook callbacks -----------------------------------------------------

    def _on_step(self, when: float, event) -> None:
        self._events_seen += 1
        if when < self.env.now or when < self._last_when:
            raise MonotonicityError(
                f"event {event!r} processed at t={when:.9f} after the "
                f"clock reached t={max(self.env.now, self._last_when):.9f}")
        self._last_when = when

    def _on_resource(self, action: str, resource, request) -> None:
        if action == "acquire":
            self._acquires += 1
            self._held[id(request)] = (resource, request)
        elif action == "release":
            self._releases += 1
            self._held.pop(id(request), None)

    def _on_draw(self, stream: "RandomStream") -> None:
        process = self.env.active_process
        if process is None:
            # Setup-time draws (model construction) have no owner.
            return
        name = stream.name or repr(stream)
        owners = self._drawers.setdefault(name, [])
        if not any(owner is process for owner in owners):
            owners.append(process)
        if len(owners) > 1 and name not in self._shared_reported:
            self._shared_reported.add(name)
            message = (f"stream {name!r} drawn by {len(owners)} distinct "
                       f"processes (latest: {process!r}); their variate "
                       "sequences are now interleaving-dependent")
            if self.on_shared_stream == "error":
                raise SharedStreamError(message)
            self.warnings.append(message)

    # -- introspection ------------------------------------------------------

    @property
    def events_processed(self) -> int:
        """Events popped while the sanitizer was installed."""
        return self._events_seen

    @property
    def held_requests(self) -> int:
        """Currently outstanding (granted, unreleased) requests."""
        return len(self._held)

    def shared_streams(self) -> dict[str, int]:
        """Stream name -> number of distinct drawing processes (>1 only)."""
        return {name: len(owners) for name, owners in self._drawers.items()
                if len(owners) > 1}


@contextmanager
def sanitize(env: "Environment",
             streams: "Optional[StreamFactory]" = None,
             check_monotonicity: bool = True,
             check_leaks: bool = True,
             on_shared_stream: str = "warn"):
    """Context manager running a DES block under the sanitizer.

    Raises :class:`MonotonicityError` / :class:`SharedStreamError` at the
    offending event, and :class:`ResourceLeakError` at block exit if any
    granted resource request was never released.  If the body itself
    raises, that exception propagates unmasked (no leak check).
    """
    monitor = Sanitizer(env, streams,
                        check_monotonicity=check_monotonicity,
                        check_leaks=check_leaks,
                        on_shared_stream=on_shared_stream)
    monitor.install()
    try:
        yield monitor
    finally:
        monitor.uninstall()
    monitor.finish()

"""Effect-and-purity analysis: ``repro check --effects``.

``sim/cache.py`` stakes the whole sweep pipeline on one sentence: *every
run is a pure function of (SimConfig, code version)*.  The determinism
lints check straight-line hazards (a literal ``time.time()`` call, a bare
``random`` import), but nothing verified the claim *whole-program*: a
wall-clock read three calls below ``SwiftSimModel.run`` poisons every
cached result just as surely as one in ``run`` itself, and a module
global mutated by a pool worker survives worker reuse and leaks into the
next task's run.

This module closes that gap with a call-graph effect analysis:

1. **module-resolved call graph** — every ``def`` in the audited tree
   becomes a node; calls are resolved through imports (including package
   ``__init__`` re-exports), ``self`` methods, locally constructed
   instances (``v = ClassName(...)``), annotated parameters, attribute
   types recorded from ``__init__`` bodies, nested functions, and — for
   package-unique method names outside :data:`GENERIC_METHOD_NAMES` — a
   last-resort unique-name match.  Unresolvable dynamic calls are
   dropped (documented best-effort, like every pass in this package).
2. **per-function effect signatures** — direct effects (ambient time /
   randomness / environment / filesystem / process state, module-global
   reads and writes) are inferred per function, then propagated
   bottom-up through the condensation of the call graph: Tarjan SCCs,
   reverse topological order, every member of an SCC sharing the union
   summary.  The fixpoint is therefore one linear pass.
3. **three contracts** checked over reachability from declared (or
   marker-discovered) entry points:

   * **cache-soundness** — everything reachable from the cached entry
     points (:data:`CACHED_ENTRY_POINTS`, i.e. the function
     :class:`~repro.sim.cache.ResultCache` stores results of) must
     depend only on keyed inputs: no ambient reads
     (``effect-ambient-read``), no randomness outside the sanctioned
     ``des/random_streams.py`` root (``effect-unseeded-random``), no
     reads of module globals that some function mutates
     (``effect-unkeyed-input`` — mutable state is invisible to the
     cache key; immutable module constants are covered by the code
     digest and pass freely).
   * **worker-hermeticity** — functions shipped to ``multiprocessing``
     pools (discovered syntactically from ``pool.map(...)``-style
     dispatch sites, plus ``repro: worker-entry`` markers) must not
     transitively write module globals that survive worker reuse
     (``effect-global-write``).  The sanctioned exceptions live in
     :data:`ALLOWED_GLOBAL_WRITES` — declared, not hardcoded: the
     ``sim.cache._code_version_cache`` per-process memo is idempotent
     (every process computes the same digest) and therefore safe.
   * **bench-determinism** — benchmark/figure entry points
     (:data:`BENCH_ENTRY_MODULES` public functions, plus ``repro:
     bench-entry`` markers) must route every stochastic draw through
     seeded streams (``effect-unseeded-random``).

Entry points can also be declared in source: a function whose docstring
contains ``repro: cached-entry``, ``repro: worker-entry`` or ``repro:
bench-entry`` joins the corresponding root set (fixtures and future
subsystems opt in without editing this file).

``# repro: allow[effects]`` (or a specific rule id) on the flagged line
or the line above suppresses a finding; the acceptance bar for the
shipped tree is zero suppressions.

The runtime companion — snapshot/diff of registered module globals and
ambient-read traps around cached runs — is
:class:`repro.check.sanitize.HermeticitySanitizer`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Sequence

from .findings import Finding, Severity
from .lint import RULE_GROUPS, Rule, _suppressed_rules, iter_python_files

__all__ = [
    "EFFECT_RULES",
    "ALLOWED_GLOBAL_WRITES",
    "CACHED_ENTRY_POINTS",
    "BENCH_ENTRY_MODULES",
    "GENERIC_METHOD_NAMES",
    "RANDOMNESS_ROOT_SUFFIXES",
    "EffectStats",
    "analyze_effects",
    "effect_rule_registry",
]

#: ``# repro: allow[effects]`` covers every ``effect-*`` rule.
EFFECT_RULE_GROUP = "effects"

#: Functions whose results :class:`~repro.sim.cache.ResultCache` stores:
#: the roots of the cache-soundness contract.  ``_run_config`` is the
#: literal cached unit of work; the model's constructor and ``run`` are
#: listed explicitly so the contract holds even when the serial
#: ``sweep.load_sweep`` path (which bypasses ``_run_config``) is cached.
CACHED_ENTRY_POINTS = (
    "repro.sim.parallel._run_config",
    "repro.sim.model.SwiftSimModel.__init__",
    "repro.sim.model.SwiftSimModel.run",
)

#: Modules whose public (non-underscore) top-level functions are
#: benchmark/figure entry points for the bench-determinism contract.
BENCH_ENTRY_MODULES = (
    "repro.sim.figures",
    "repro.sim.sweep",
)

#: Module globals a worker may write: fully qualified name -> why the
#: write is sound under worker reuse.  This is the *declared* exception
#: list the issue demands — an undeclared write is a finding even if it
#: looks like a memo.
ALLOWED_GLOBAL_WRITES = {
    "repro.sim.cache._code_version_cache":
        "per-process memo; every process recomputes the identical digest, "
        "so reuse cannot change any result",
}

#: Modules allowed to contain raw randomness: the seeded-stream root.
RANDOMNESS_ROOT_SUFFIXES = ("des/random_streams.py",)

#: Method names too generic for unique-name call resolution: they shadow
#: builtin container/file methods, so an attribute call like ``d.get(k)``
#: on an untyped receiver must stay unresolved rather than binding to
#: the one package class that happens to define ``get``.
GENERIC_METHOD_NAMES = frozenset({
    "add", "append", "apply", "clear", "close", "copy", "count", "decode",
    "encode", "extend", "format", "get", "index", "insert", "items", "join",
    "keys", "map", "open", "pop", "popleft", "put", "read", "recv",
    "release", "remove", "replace", "request", "reset", "run", "send",
    "sort", "split", "start", "stop", "strip", "update", "values", "wait",
    "write",
})

#: Docstring markers that declare a function as a contract entry point.
_ENTRY_MARKERS = {
    "repro: cached-entry": "cached",
    "repro: worker-entry": "worker",
    "repro: bench-entry": "bench",
}

# -- ambient-effect tables ----------------------------------------------------

_TIME_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.clock",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

_RANDOM_CALLS = frozenset({
    "random.random", "random.randint", "random.randrange", "random.uniform",
    "random.choice", "random.choices", "random.shuffle", "random.sample",
    "random.expovariate", "random.gauss", "random.normalvariate",
    "random.betavariate", "random.gammavariate", "random.paretovariate",
    "random.vonmisesvariate", "random.weibullvariate", "random.triangular",
    "random.lognormvariate", "random.getrandbits", "random.randbytes",
    "random.seed", "os.urandom", "secrets.token_bytes", "secrets.token_hex",
    "secrets.randbelow", "secrets.choice", "uuid.uuid1", "uuid.uuid4",
})

_ENV_CALLS = frozenset({
    "os.getenv", "os.environ.get", "os.environb.get", "os.putenv",
})

#: Attribute chains whose bare *read* is an ambient-environment access.
_ENV_ATTRIBUTES = frozenset({"os.environ", "os.environb"})

_PROCESS_CALLS = frozenset({
    "os.getpid", "os.getppid", "os.cpu_count", "os.uname", "os.getcwd",
    "multiprocessing.cpu_count", "platform.node", "socket.gethostname",
})

#: Attribute chains whose read leaks process identity/configuration.
_PROCESS_ATTRIBUTES = frozenset({"sys.argv"})

_FS_CALLS = frozenset({
    "open", "io.open", "os.replace", "os.remove", "os.rename", "os.listdir",
    "os.scandir", "os.makedirs", "os.stat", "os.path.exists",
    "os.path.getsize", "os.path.getmtime", "shutil.rmtree", "shutil.copy",
    "shutil.copyfile", "shutil.move", "tempfile.mkdtemp", "tempfile.mkstemp",
    "tempfile.NamedTemporaryFile", "tempfile.TemporaryDirectory",
})

#: Method names that touch the real filesystem on any plausible receiver
#: (``Path`` objects travel untyped through this tree, so these resolve
#: by name; they are specific enough not to collide with model code).
_FS_METHODS = frozenset({
    "read_text", "read_bytes", "write_text", "write_bytes", "rglob",
    "glob", "iterdir", "mkdir", "rmdir", "unlink", "touch", "hardlink_to",
    "symlink_to", "samefile",
})

#: Receiver method calls that mutate the receiver in place (used for
#: module-global mutation detection).
_MUTATOR_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend", "insert",
    "pop", "popitem", "popleft", "remove", "setdefault", "sort", "update",
})

#: Effect kinds -> human noun used in messages.
_AMBIENT_NOUNS = {
    "time": "wall-clock read",
    "random": "ambient randomness",
    "env": "environment read",
    "fs": "filesystem access",
    "process": "process-state read",
}


# -- program model ------------------------------------------------------------


@dataclass
class EffectSite:
    """One direct effect occurrence inside a function body."""

    kind: str       # time | random | env | fs | process
    detail: str     # e.g. "time.time()" or "os.environ[...]"
    line: int


@dataclass
class GlobalSite:
    """One module-global read or write inside a function body."""

    name: str       # fully qualified global, e.g. repro.sim.cache._memo
    detail: str     # how: "x[...] = ...", "next(x)", "x.append(...)"
    line: int


@dataclass
class FunctionInfo:
    """One analyzed function/method and its direct behaviour."""

    qualname: str
    module: str
    path: Path
    node: ast.AST
    class_name: Optional[str] = None
    effects: list[EffectSite] = field(default_factory=list)
    global_writes: list[GlobalSite] = field(default_factory=list)
    global_reads: list[GlobalSite] = field(default_factory=list)
    calls: set[str] = field(default_factory=set)
    entry_kinds: set[str] = field(default_factory=set)


@dataclass
class ClassInfo:
    """One analyzed class: methods, bases, inferred attribute types."""

    qualname: str
    module: str
    bases: list[str] = field(default_factory=list)
    methods: dict[str, str] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)
    body_lambda_effects: list[EffectSite] = field(default_factory=list)
    body_lambda_globals: list[GlobalSite] = field(default_factory=list)


@dataclass
class ModuleInfo:
    """One parsed module: symbol table and import environment."""

    name: str
    path: Path
    tree: ast.Module
    #: local top-level name -> fully qualified target (imports + defs).
    symbols: dict[str, str] = field(default_factory=dict)
    #: module-level assigned names (candidates for global state).
    module_globals: set[str] = field(default_factory=set)


@dataclass
class EffectStats:
    """Call-graph metrics reported next to the findings."""

    functions: int = 0
    modules: int = 0
    edges: int = 0
    sccs: int = 0
    cached_entries: tuple[str, ...] = ()
    worker_entries: tuple[str, ...] = ()
    bench_entries: tuple[str, ...] = ()

    def render_text(self) -> str:
        return (
            f"effects: {self.functions} function(s) across "
            f"{self.modules} module(s), {self.edges} call edge(s), "
            f"{self.sccs} SCC(s); entries: "
            f"{len(self.cached_entries)} cached, "
            f"{len(self.worker_entries)} worker, "
            f"{len(self.bench_entries)} bench")

    def to_dict(self) -> dict:
        return {
            "functions": self.functions,
            "modules": self.modules,
            "edges": self.edges,
            "sccs": self.sccs,
            "entries": {
                "cached": list(self.cached_entries),
                "worker": list(self.worker_entries),
                "bench": list(self.bench_entries),
            },
        }


# -- module loading -----------------------------------------------------------


def _module_name(path: Path) -> str:
    """Dotted module name for ``path`` (anchored at the ``repro`` package
    when the file lives inside one; bare stem otherwise — fixtures)."""
    parts = list(Path(path).resolve().parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for anchor in range(len(parts) - 1, -1, -1):
        if parts[anchor] == "repro":
            return ".".join(parts[anchor:])
    return parts[-1] if parts else str(path)


def _is_package_init(path: Path) -> bool:
    return Path(path).name == "__init__.py"


def _resolve_import_base(module: ModuleInfo, level: int) -> str:
    """The package a relative import of ``level`` resolves against."""
    parts = module.name.split(".")
    if not _is_package_init(module.path):
        parts = parts[:-1]
    if level > 1:
        parts = parts[: len(parts) - (level - 1)]
    return ".".join(parts)


class _Program:
    """The whole analyzed program: modules, classes, functions, aliases."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: re-export chains: imported qualname -> source qualname.
        self.aliases: dict[str, str] = {}
        #: method name -> class qualnames defining it (unique-name fallback).
        self.methods_by_name: dict[str, set[str]] = {}
        #: fully-qualified module globals written anywhere.
        self.mutated_globals: set[str] = set()

    def canonical(self, qualname: str) -> str:
        """Follow ``__init__`` re-export chains to the defining module."""
        seen = set()
        while qualname in self.aliases and qualname not in seen:
            seen.add(qualname)
            qualname = self.aliases[qualname]
        return qualname

    def lookup_callable(self, qualname: str) -> Optional[str]:
        """Resolve ``qualname`` to a known function (class -> __init__)."""
        target = self.canonical(qualname)
        if target in self.functions:
            return target
        if target in self.classes:
            init = self.classes[target].methods.get("__init__")
            return init
        return None


# -- pass 1: collect modules, classes, functions ------------------------------


def _collect_module(program: _Program, path: Path) -> None:
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError:
        return  # the default lint pass reports unparseable files
    module = ModuleInfo(name=_module_name(path), path=path, tree=tree)
    program.modules[module.name] = module

    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                module.symbols[local] = (alias.name if alias.asname
                                         else alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            base = (_resolve_import_base(module, node.level)
                    if node.level else "")
            origin = ".".join(p for p in (base, node.module or "") if p)
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                target = f"{origin}.{alias.name}" if origin else alias.name
                module.symbols[local] = target
                program.aliases[f"{module.name}.{local}"] = target
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{module.name}.{node.name}"
            module.symbols[node.name] = qualname
            program.functions[qualname] = FunctionInfo(
                qualname=qualname, module=module.name, path=path, node=node)
        elif isinstance(node, ast.ClassDef):
            _collect_class(program, module, path, node)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if isinstance(target, ast.Name):
                    module.module_globals.add(target.id)
                    module.symbols.setdefault(
                        target.id, f"{module.name}.{target.id}")


def _collect_class(program: _Program, module: ModuleInfo, path: Path,
                   node: ast.ClassDef) -> None:
    qualname = f"{module.name}.{node.name}"
    module.symbols[node.name] = qualname
    info = ClassInfo(qualname=qualname, module=module.name)
    program.classes[qualname] = info
    for base in node.bases:
        dotted = _dotted(base)
        if dotted is not None:
            resolved = module.symbols.get(dotted.split(".")[0])
            if resolved is not None and "." in dotted:
                dotted = resolved + dotted[dotted.index("."):]
            elif resolved is not None:
                dotted = resolved
            info.bases.append(dotted)
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            method_qualname = f"{qualname}.{item.name}"
            info.methods[item.name] = method_qualname
            program.functions[method_qualname] = FunctionInfo(
                qualname=method_qualname, module=module.name, path=path,
                node=item, class_name=qualname)
            program.methods_by_name.setdefault(item.name, set()).add(qualname)


def _dotted(node: ast.expr) -> Optional[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


# -- pass 2: per-function analysis --------------------------------------------


class _FunctionAnalyzer:
    """Extracts direct effects, global accesses and call edges from one
    function body (flow-insensitive; nested lambdas included, nested
    ``def``\\ s analyzed as their own nodes but resolvable by local name).
    """

    def __init__(self, program: _Program, module: ModuleInfo,
                 info: FunctionInfo):
        self.program = program
        self.module = module
        self.info = info
        self.locals: set[str] = set()
        #: local name -> class qualname (constructed/annotated receivers).
        self.var_types: dict[str, str] = {}
        #: local name -> nested function qualname.
        self.local_functions: dict[str, str] = {}
        #: function-scoped imports (`from .cache import config_key` inside
        #: a worker body is the lazy-import idiom this tree uses to break
        #: cycles); consulted before the module symbol table.
        self.func_symbols: dict[str, str] = {}

    # -- scope preparation --------------------------------------------------

    def prepare(self) -> None:
        node = self.info.node
        args = node.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs
                    + ([args.vararg] if args.vararg else [])
                    + ([args.kwarg] if args.kwarg else [])):
            self.locals.add(arg.arg)
            if arg.annotation is not None:
                annotated = self._resolve_annotation(arg.annotation)
                if annotated is not None:
                    self.var_types[arg.arg] = annotated
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    self._bind_target(target)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                self._bind_target(stmt.target)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._bind_target(stmt.target)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if item.optional_vars is not None:
                        self._bind_target(item.optional_vars)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and stmt is not node:
                self.locals.add(stmt.name)
            elif isinstance(stmt, comprehension_types):
                for gen in stmt.generators:
                    self._bind_target(gen.target)
            elif isinstance(stmt, ast.ExceptHandler) and stmt.name:
                self.locals.add(stmt.name)
            elif isinstance(stmt, ast.Global):
                # `global x` makes x *not* local: writes hit the module.
                for name in stmt.names:
                    self.locals.discard(name)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.func_symbols[local] = (
                        alias.name if alias.asname
                        else alias.name.split(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                base = (_resolve_import_base(self.module, stmt.level)
                        if stmt.level else "")
                origin = ".".join(
                    p for p in (base, stmt.module or "") if p)
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.func_symbols[local] = (
                        f"{origin}.{alias.name}" if origin else alias.name)

    def _bind_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.locals.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value)

    def _resolve_annotation(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            name = node.value
        else:
            name = _dotted(node)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        resolved = self.module.symbols.get(head, head)
        qualname = f"{resolved}.{rest}" if rest else resolved
        qualname = self.program.canonical(qualname)
        return qualname if qualname in self.program.classes else None

    # -- name resolution ----------------------------------------------------

    def qualify(self, node: ast.expr) -> Optional[str]:
        """Dotted origin of a Name/Attribute chain through the imports."""
        dotted = _dotted(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in self.locals and head not in self.local_functions \
                and head not in self.func_symbols:
            return None
        resolved = self.func_symbols.get(head)
        if resolved is None:
            resolved = self.module.symbols.get(head)
        if resolved is None:
            resolved = self.local_functions.get(head, head)
        return f"{resolved}.{rest}" if rest else resolved

    def _receiver_class(self, node: ast.expr) -> Optional[str]:
        """Class qualname of an attribute-call receiver, if inferable."""
        if isinstance(node, ast.Name):
            if node.id == "self" and self.info.class_name:
                return self.info.class_name
            return self.var_types.get(node.id)
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name) and \
                node.value.id == "self" and self.info.class_name:
            klass = self.program.classes.get(self.info.class_name)
            while klass is not None:
                if node.attr in klass.attr_types:
                    return klass.attr_types[node.attr]
                klass = self._parent(klass)
        if isinstance(node, ast.Call):
            return self._return_type(node)
        return None

    def _parent(self, klass: ClassInfo) -> Optional[ClassInfo]:
        for base in klass.bases:
            resolved = self.program.canonical(
                base if "." in base
                else self.module.symbols.get(base, base))
            parent = self.program.classes.get(resolved)
            if parent is not None:
                return parent
        return None

    def _return_type(self, call: ast.Call) -> Optional[str]:
        """Class qualname a call evaluates to (constructor or single-
        return-of-constructor function)."""
        qualname = self.qualify(call.func)
        if qualname is None:
            return None
        target = self.program.canonical(qualname)
        if target in self.program.classes:
            return target
        func = self.program.functions.get(target)
        if func is not None:
            for stmt in ast.walk(func.node):
                if isinstance(stmt, ast.Return) and \
                        isinstance(stmt.value, ast.Call):
                    dotted = _dotted(stmt.value.func)
                    if dotted is None:
                        continue
                    owner = self.program.modules.get(func.module)
                    if owner is None:
                        continue
                    head, _, rest = dotted.partition(".")
                    resolved = owner.symbols.get(head, head)
                    candidate = self.program.canonical(
                        f"{resolved}.{rest}" if rest else resolved)
                    if candidate in self.program.classes:
                        return candidate
        return None

    def _method_in_chain(self, class_qualname: str,
                         method: str) -> Optional[str]:
        klass = self.program.classes.get(class_qualname)
        seen = set()
        while klass is not None and klass.qualname not in seen:
            seen.add(klass.qualname)
            if method in klass.methods:
                return klass.methods[method]
            klass = self._parent(klass)
        return None

    # -- the walk -----------------------------------------------------------

    def analyze(self) -> None:
        self.prepare()
        self._record_var_types()
        body = getattr(self.info.node, "body", [])
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                        and node is not self.info.node:
                    # Nested defs are separate nodes; only note the local
                    # binding so calls to them resolve.
                    nested = f"{self.info.qualname}.<locals>.{node.name}"
                    if nested in self.program.functions:
                        self.local_functions[node.name] = nested
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                self._visit(node)

    def _record_var_types(self) -> None:
        for stmt in ast.walk(self.info.node):
            if isinstance(stmt, ast.Assign) and \
                    isinstance(stmt.value, ast.Call):
                klass = self._return_type(stmt.value)
                if klass is None:
                    continue
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.var_types[target.id] = klass
            elif isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                annotated = self._resolve_annotation(stmt.annotation)
                if annotated is not None:
                    self.var_types[stmt.target.id] = annotated

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            self._visit_call(node)
        elif isinstance(node, ast.Attribute) and \
                isinstance(node.ctx, ast.Load):
            dotted = self.qualify(node)
            if dotted in _ENV_ATTRIBUTES:
                self._effect("env", f"{dotted}", node)
            elif dotted in _PROCESS_ATTRIBUTES:
                self._effect("process", f"{dotted}", node)
            elif isinstance(node.value, ast.Name) and \
                    node.value.id == "self" and self.info.class_name:
                # A bare read of `self.<method>` is a method reference
                # that escapes — callback registration (state machines
                # append bound state methods to event callback lists) or
                # a bound-method cache (`self._bound_step = self._step`).
                # Assume the reference is eventually called.
                resolved = self._method_in_chain(self.info.class_name,
                                                 node.attr)
                if resolved is not None:
                    self.info.calls.add(resolved)
        elif isinstance(node, ast.Subscript):
            self._visit_subscript(node)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            self._visit_store(node)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            self._visit_name_load(node)

    def _visit_call(self, node: ast.Call) -> None:
        qualname = self.qualify(node.func)
        # next(module_global) advances shared iterator state (the
        # itertools.count id-counter pattern): both a read and a write.
        if isinstance(node.func, ast.Name) and node.func.id == "next" \
                and node.args:
            target = self._global_name(node.args[0])
            if target is not None:
                self._global_write(target, "next() advances the module-"
                                            "global iterator", node)
        if qualname is not None:
            if qualname in _TIME_CALLS:
                self._effect("time", f"{qualname}()", node)
            elif qualname in _RANDOM_CALLS:
                self._effect("random", f"{qualname}()", node)
            elif qualname in ("random.Random", "random.SystemRandom"):
                if qualname == "random.SystemRandom" or not (
                        node.args or node.keywords):
                    self._effect("random", f"{qualname}()", node)
            elif qualname in _ENV_CALLS:
                self._effect("env", f"{qualname}()", node)
            elif qualname in _FS_CALLS:
                self._effect("fs", f"{qualname}()", node)
            elif qualname in _PROCESS_CALLS:
                self._effect("process", f"{qualname}()", node)
        self._resolve_call_edge(node, qualname)
        # Mutator method on a module global: a global write.
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr in _MUTATOR_METHODS:
            target = self._global_name(node.func.value)
            if target is not None:
                self._global_write(
                    target, f".{node.func.attr}(...) mutates it in place",
                    node)

    def _resolve_call_edge(self, node: ast.Call,
                           qualname: Optional[str]) -> None:
        if qualname is not None:
            resolved = self.program.lookup_callable(qualname)
            if resolved is not None:
                self.info.calls.add(resolved)
                return
        if isinstance(node.func, ast.Attribute):
            method = node.func.attr
            if method in _FS_METHODS:
                self._effect("fs", f".{method}(...)", node)
                return
            receiver = self._receiver_class(node.func.value)
            if receiver is not None:
                resolved = self._method_in_chain(receiver, method)
                if resolved is not None:
                    self.info.calls.add(resolved)
                    return
            # Unique-name fallback for specific, package-unique methods.
            if method not in GENERIC_METHOD_NAMES:
                owners = self.program.methods_by_name.get(method, ())
                if len(owners) == 1:
                    klass = next(iter(owners))
                    self.info.calls.add(
                        self.program.classes[klass].methods[method])

    def _visit_subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            target = self._global_name(node.value)
            if target is not None:
                self._global_write(target, "subscript store", node)

    def _visit_store(self, node: ast.AST) -> None:
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        for target in targets:
            if isinstance(target, ast.Name) and \
                    target.id not in self.locals and \
                    target.id in self.module.module_globals:
                # Only reachable via a `global` declaration (prepare()
                # removed the name from locals).
                self._global_write(
                    f"{self.module.name}.{target.id}", "rebinding", node)
            elif isinstance(target, ast.Attribute):
                dotted = self.qualify(target)
                if dotted is None:
                    continue
                owner, _, attr = dotted.rpartition(".")
                if owner in self.program.modules and attr:
                    self._global_write(dotted, "attribute store", node)

    def _visit_name_load(self, node: ast.Name) -> None:
        if node.id in self.locals or node.id in self.local_functions:
            return
        if node.id in self.module.module_globals:
            self.info.global_reads.append(GlobalSite(
                name=f"{self.module.name}.{node.id}",
                detail=f"reads module global `{node.id}`",
                line=node.lineno))

    def _global_name(self, node: ast.expr) -> Optional[str]:
        """Fully qualified module-global named by ``node``, else None."""
        if isinstance(node, ast.Name):
            if node.id in self.locals:
                return None
            if node.id in self.module.module_globals:
                return f"{self.module.name}.{node.id}"
            resolved = self.func_symbols.get(
                node.id, self.module.symbols.get(node.id))
            if resolved is not None and "." in resolved:
                return resolved
            return None
        dotted = self.qualify(node)
        if dotted is None:
            return None
        owner, _, attr = dotted.rpartition(".")
        if owner in self.program.modules and attr:
            return dotted
        return None

    def _effect(self, kind: str, detail: str, node: ast.AST) -> None:
        self.info.effects.append(EffectSite(
            kind=kind, detail=detail, line=getattr(node, "lineno", 1)))

    def _global_write(self, name: str, how: str, node: ast.AST) -> None:
        site = GlobalSite(name=name, detail=how,
                          line=getattr(node, "lineno", 1))
        self.info.global_writes.append(site)
        self.program.mutated_globals.add(name)


comprehension_types = (ast.ListComp, ast.SetComp, ast.DictComp,
                       ast.GeneratorExp)


def _register_nested(program: _Program, module: ModuleInfo,
                     parent: FunctionInfo) -> None:
    """Create FunctionInfo nodes for functions nested inside ``parent``."""
    for stmt in ast.walk(parent.node):
        if stmt is parent.node or not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        qualname = f"{parent.qualname}.<locals>.{stmt.name}"
        if qualname not in program.functions:
            program.functions[qualname] = FunctionInfo(
                qualname=qualname, module=module.name, path=parent.path,
                node=stmt, class_name=parent.class_name)


def _analyze_class_bodies(program: _Program) -> None:
    """Attach effects inside class-scope lambdas (dataclass
    ``default_factory=lambda: ...`` idiom) to the class ``__init__`` —
    that is when they actually execute."""
    for module in program.modules.values():
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            info = program.classes[f"{module.name}.{node.name}"]
            carrier = _class_body_carrier(program, module, info, node)
            if carrier is None:
                continue
            analyzer = _FunctionAnalyzer(program, module, carrier)
            analyzer.prepare()
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Lambda):
                        for inner in ast.walk(sub):
                            analyzer._visit(inner)


def _class_body_carrier(program: _Program, module: ModuleInfo,
                        info: ClassInfo,
                        node: ast.ClassDef) -> Optional[FunctionInfo]:
    has_lambda = any(
        isinstance(sub, ast.Lambda)
        for stmt in node.body
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        for sub in ast.walk(stmt))
    if not has_lambda:
        return None
    init = info.methods.get("__init__")
    if init is None:
        qualname = f"{info.qualname}.__init__"
        info.methods["__init__"] = qualname
        synthetic = ast.parse("def __init__(self): pass").body[0]
        synthetic.lineno = node.lineno
        program.functions[qualname] = FunctionInfo(
            qualname=qualname, module=module.name, path=module.path,
            node=synthetic, class_name=info.qualname)
        init = qualname
    return program.functions[init]


def _record_attr_types(program: _Program) -> None:
    """Infer ``self.x`` attribute classes from ``__init__`` bodies."""
    for klass in program.classes.values():
        init = klass.methods.get("__init__")
        if init is None:
            continue
        info = program.functions[init]
        module = program.modules[info.module]
        analyzer = _FunctionAnalyzer(program, module, info)
        analyzer.prepare()
        analyzer._record_var_types()
        for stmt in ast.walk(info.node):
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                value_type: Optional[str] = None
                if isinstance(stmt.value, ast.Call):
                    value_type = analyzer._return_type(stmt.value)
                elif isinstance(stmt.value, ast.Name):
                    value_type = analyzer.var_types.get(stmt.value.id)
                if value_type is not None:
                    klass.attr_types.setdefault(target.attr, value_type)


# -- entry-point discovery ----------------------------------------------------


_POOL_DISPATCH_METHODS = frozenset({
    "map", "map_async", "imap", "imap_unordered", "starmap",
    "starmap_async", "apply", "apply_async", "submit",
})


def _discover_entries(program: _Program) -> dict[str, list[str]]:
    entries: dict[str, list[str]] = {"cached": [], "worker": [], "bench": []}

    def add(kind: str, qualname: str) -> None:
        resolved = program.lookup_callable(qualname)
        if resolved is not None and resolved not in entries[kind]:
            entries[kind].append(resolved)
            program.functions[resolved].entry_kinds.add(kind)

    for qualname in CACHED_ENTRY_POINTS:
        add("cached", qualname)
    for module_name in BENCH_ENTRY_MODULES:
        module = program.modules.get(module_name)
        if module is None:
            continue
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and not node.name.startswith("_"):
                add("bench", f"{module_name}.{node.name}")

    # Docstring markers.
    for info in program.functions.values():
        doc = ast.get_docstring(info.node) if isinstance(
            info.node, (ast.FunctionDef, ast.AsyncFunctionDef)) else None
        if not doc:
            continue
        for marker, kind in _ENTRY_MARKERS.items():
            if marker in doc:
                add(kind, info.qualname)

    # Syntactic pool-dispatch sites: `pool.map(worker, ...)` where the
    # receiver was bound from a `.Pool(...)` call (assignment or `with`).
    for info in program.functions.values():
        module = program.modules[info.module]
        pool_names: set[str] = set()
        for node in ast.walk(info.node):
            bound = None
            if isinstance(node, ast.Assign) and \
                    _is_pool_call(node.value):
                bound = node.targets
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if _is_pool_call(item.context_expr) and \
                            item.optional_vars is not None:
                        bound = [item.optional_vars]
            if bound:
                for target in bound:
                    if isinstance(target, ast.Name):
                        pool_names.add(target.id)
        if not pool_names:
            continue
        analyzer = _FunctionAnalyzer(program, module, info)
        analyzer.prepare()
        for node in ast.walk(info.node):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _POOL_DISPATCH_METHODS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in pool_names
                    and node.args):
                continue
            worker = analyzer.qualify(node.args[0])
            if worker is not None:
                add("worker", worker)
    return entries


def _is_pool_call(node: ast.expr) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("Pool", "ProcessPoolExecutor",
                                   "ThreadPoolExecutor"))


# -- summaries: Tarjan SCC + bottom-up fixpoint -------------------------------


def _strongly_connected(graph: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan's SCC algorithm, iterative, deterministic order."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = [0]

    for root in sorted(graph):
        if root in index:
            continue
        work: list[tuple[str, Iterator[str]]] = [
            (root, iter(sorted(graph.get(root, ()))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in graph:
                    continue
                if successor not in index:
                    index[successor] = lowlink[successor] = counter[0]
                    counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append(
                        (successor, iter(sorted(graph.get(successor, ())))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))
    return components


def compute_summaries(program: _Program) -> dict[str, frozenset[str]]:
    """Transitive effect-kind summary per function (SCC fixpoint)."""
    graph = {name: set(info.calls)
             for name, info in program.functions.items()}
    components = _strongly_connected(graph)
    membership = {name: i for i, component in enumerate(components)
                  for name in component}
    summaries: dict[str, frozenset[str]] = {}
    # Tarjan emits components in reverse topological order of the
    # condensation (callees before callers), so one pass suffices.
    for component in components:
        kinds: set[str] = set()
        for name in component:
            info = program.functions[name]
            kinds.update(site.kind for site in info.effects)
            if info.global_writes:
                kinds.add("global-write")
            if info.global_reads:
                kinds.add("global-read")
            for callee in info.calls:
                if callee in summaries:
                    kinds.update(summaries[callee])
                elif membership.get(callee) == membership.get(name):
                    pass  # same SCC: union is being built right here
        frozen = frozenset(kinds)
        for name in component:
            summaries[name] = frozen
    return summaries


# -- contract checking --------------------------------------------------------


def _reachable(program: _Program,
               roots: Sequence[str]) -> dict[str, Optional[str]]:
    """BFS over call edges; returns node -> parent (roots map to None)."""
    parents: dict[str, Optional[str]] = {}
    frontier: list[str] = []
    for root in roots:
        if root not in parents:
            parents[root] = None
            frontier.append(root)
    while frontier:
        node = frontier.pop(0)
        info = program.functions.get(node)
        if info is None:
            continue
        for callee in sorted(info.calls):
            if callee not in parents:
                parents[callee] = node
                frontier.append(callee)
    return parents


def _chain(parents: dict[str, Optional[str]], node: str) -> str:
    hops = [node]
    seen = {node}
    while parents.get(hops[-1]) is not None:
        parent = parents[hops[-1]]
        if parent in seen:  # pragma: no cover - defensive against cycles
            break
        hops.append(parent)
        seen.add(parent)
    display = [hop.replace("repro.", "", 1) for hop in reversed(hops)]
    return " -> ".join(display)


def _is_randomness_root(info: FunctionInfo) -> bool:
    posix = info.path.as_posix()
    return any(posix.endswith(suffix)
               for suffix in RANDOMNESS_ROOT_SUFFIXES)


def _contract_findings(program: _Program,
                       entries: dict[str, list[str]],
                       allowed_globals: dict[str, str]) -> list[Finding]:
    findings: list[Finding] = []
    emitted: set[tuple[str, str, int]] = set()

    def emit(rule_id: str, info: FunctionInfo, line: int,
             first_line: str, chain: str) -> None:
        key = (rule_id, str(info.path), line)
        if key in emitted:
            return
        emitted.add(key)
        findings.append(Finding(
            rule_id=rule_id, path=info.path, line=line,
            message=f"{first_line}\n  call chain: {chain}",
            severity=Severity.ERROR))

    # Worker hermeticity first, so a function that is both a cached and
    # a worker entry reports its global writes under the worker rule.
    parents = _reachable(program, entries["worker"])
    for name in sorted(parents):
        info = program.functions.get(name)
        if info is None:
            continue
        for site in info.global_writes:
            if site.name in allowed_globals:
                continue
            emit("effect-global-write", info, site.line,
                 f"writes module global `{site.name}` ({site.detail}) in "
                 "pool-dispatched code; the mutation survives worker reuse "
                 "and leaks into later tasks",
                 _chain(parents, name))

    parents = _reachable(program, entries["cached"])
    for name in sorted(parents):
        info = program.functions.get(name)
        if info is None:
            continue
        chain = _chain(parents, name)
        for site in info.effects:
            if site.kind == "random":
                if not _is_randomness_root(info):
                    emit("effect-unseeded-random", info, site.line,
                         f"`{site.detail}` draw outside des/random_streams "
                         "under a cached entry; route it through a seeded "
                         "StreamFactory stream", chain)
            else:
                emit("effect-ambient-read", info, site.line,
                     f"{_AMBIENT_NOUNS[site.kind]} `{site.detail}` under a "
                     "cached entry; a cached result must be a pure function "
                     "of (SimConfig, code version)", chain)
        # A write's own container load (`_totals[k] = v` loads `_totals`)
        # is part of the write, not an independent unkeyed read.
        write_sites = {(site.name, site.line)
                       for site in info.global_writes}
        for site in info.global_reads:
            if site.name not in program.mutated_globals:
                continue  # immutable constant: covered by the code digest
            if site.name in allowed_globals:
                continue
            if (site.name, site.line) in write_sites:
                continue
            emit("effect-unkeyed-input", info, site.line,
                 f"reads mutated module global `{site.name}` under a cached "
                 "entry; the value is invisible to the cache key", chain)
        for site in info.global_writes:
            if site.name in allowed_globals:
                continue
            emit("effect-global-write", info, site.line,
                 f"writes module global `{site.name}` ({site.detail}) under "
                 "a cached entry; repeated runs in one process would "
                 "diverge from the cached result", chain)

    parents = _reachable(program, entries["bench"])
    for name in sorted(parents):
        info = program.functions.get(name)
        if info is None:
            continue
        for site in info.effects:
            if site.kind != "random" or _is_randomness_root(info):
                continue
            emit("effect-unseeded-random", info, site.line,
                 f"`{site.detail}` draw outside des/random_streams under a "
                 "benchmark/figure entry; results would not replay",
                 _chain(parents, name))
    return findings


# -- suppression filtering ----------------------------------------------------


def _filter_suppressed(findings: list[Finding]) -> list[Finding]:
    sources: dict[Path, dict[int, set[str]]] = {}
    kept = []
    for finding in findings:
        allowed = sources.get(finding.path)
        if allowed is None:
            try:
                allowed = _suppressed_rules(
                    finding.path.read_text(encoding="utf-8"))
            except OSError:  # pragma: no cover - racing file removal
                allowed = {}
            sources[finding.path] = allowed
        granted = allowed.get(finding.line, ())
        if finding.rule_id in granted or "*" in granted:
            continue
        if any(group in granted and finding.rule_id.startswith(prefixes)
               for group, prefixes in RULE_GROUPS.items()):
            continue
        kept.append(finding)
    return kept


# -- public API ---------------------------------------------------------------


def analyze_effects(paths: Sequence[Path],
                    allowed_globals: Optional[dict[str, str]] = None,
                    ) -> tuple[list[Finding], EffectStats]:
    """Run the effect analysis over ``paths`` (files or directories).

    Returns the suppression-filtered findings plus call-graph statistics.
    ``allowed_globals`` overrides :data:`ALLOWED_GLOBAL_WRITES` (tests
    probe the contract with an empty allowlist).
    """
    if allowed_globals is None:
        allowed_globals = ALLOWED_GLOBAL_WRITES
    program = _Program()
    for root in paths:
        for path in iter_python_files(Path(root)):
            _collect_module(program, path)
    for module in program.modules.values():
        for info in list(program.functions.values()):
            if info.module == module.name:
                _register_nested(program, module, info)
    _record_attr_types(program)
    _analyze_class_bodies(program)
    for info in program.functions.values():
        module = program.modules.get(info.module)
        if module is None:  # pragma: no cover - defensive
            continue
        if isinstance(info.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _FunctionAnalyzer(program, module, info).analyze()
    entries = _discover_entries(program)
    findings = _contract_findings(program, entries, allowed_globals)
    findings = _filter_suppressed(findings)
    findings.sort(key=lambda f: (str(f.path), f.line, f.rule_id))

    graph_edges = sum(len(info.calls) for info in program.functions.values())
    components = _strongly_connected(
        {name: set(info.calls) for name, info in program.functions.items()})
    stats = EffectStats(
        functions=len(program.functions),
        modules=len(program.modules),
        edges=graph_edges,
        sccs=len(components),
        cached_entries=tuple(entries["cached"]),
        worker_entries=tuple(entries["worker"]),
        bench_entries=tuple(entries["bench"]),
    )
    return findings, stats


def build_program(paths: Sequence[Path]) -> _Program:
    """The resolved program model (tests inspect graph and summaries)."""
    program = _Program()
    for root in paths:
        for path in iter_python_files(Path(root)):
            _collect_module(program, path)
    for module in program.modules.values():
        for info in list(program.functions.values()):
            if info.module == module.name:
                _register_nested(program, module, info)
    _record_attr_types(program)
    _analyze_class_bodies(program)
    for info in program.functions.values():
        module = program.modules.get(info.module)
        if module is None:  # pragma: no cover - defensive
            continue
        if isinstance(info.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _FunctionAnalyzer(program, module, info).analyze()
    return program


# -- rule catalogue (for --list-rules / --rules selection) --------------------


class _EffectRule(Rule):
    """Descriptor-only: the effects pass is whole-program, not per-file."""

    def check(self, tree, path):  # pragma: no cover - never dispatched
        return iter(())


class AmbientReadRule(_EffectRule):
    rule_id = "effect-ambient-read"
    summary = ("wall-clock/env/filesystem/process state read reachable "
               "from a cached entry point")


class GlobalWriteRule(_EffectRule):
    rule_id = "effect-global-write"
    summary = ("module-global mutation reachable from pool-dispatched or "
               "cached code (undeclared memo)")


class UnkeyedInputRule(_EffectRule):
    rule_id = "effect-unkeyed-input"
    summary = ("read of mutated module-global state invisible to the "
               "cache key")


class UnseededRandomRule(_EffectRule):
    rule_id = "effect-unseeded-random"
    summary = ("stochastic draw outside des/random_streams reachable from "
               "a cached or benchmark entry point")


EFFECT_RULES = (AmbientReadRule, GlobalWriteRule, UnkeyedInputRule,
                UnseededRandomRule)


def effect_rule_registry() -> dict[str, type[Rule]]:
    """Rule id -> descriptor class, for --rules selection and the docs."""
    return {rule.rule_id: rule for rule in EFFECT_RULES}
